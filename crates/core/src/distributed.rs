//! The evaluator's distributed sweep path: shard the `(loop × config)`
//! grid across worker processes, then merge their published results
//! into corpus aggregates **bitwise-equal** to [`Evaluator::sweep`].
//!
//! The heavy lifting — manifests, the filesystem job queue with
//! lease-expiry requeue, worker supervision — lives in
//! [`widening_distrib`]; this module supplies what only the evaluator
//! can: the merge. Workers publish one [`UnitOutcome`] per unit into
//! the shared store's result tier; [`sweep_distributed`] reads them
//! back **in corpus order per design point** and folds them with the
//! exact scoring arithmetic of the in-process evaluator
//! (`score_eval` + left-to-right `fold_scores`), so the f64 association
//! order — and therefore every bit of every aggregate — matches a
//! single-process sweep over the same grid. Units whose result record
//! is missing (a worker's best-effort publish was swallowed by a dying
//! disk) are recompiled locally through the evaluator's own pipeline,
//! so the merge is total.
//!
//! Merged aggregates are installed into the evaluator's aggregate memo:
//! after a distributed sweep, `eval.scheduled(...)` for a swept point
//! is a pure cache hit.

use std::fmt;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use widening_distrib::{
    run_sweep, CoordinatorConfig, DistribError, Launcher, SpawnContext, SweepManifest, SweepRun,
    BATCH_PARTS,
};
use widening_pipeline::codec::ddg_fingerprint;
use widening_pipeline::exchange::{
    batch_result_key, decode_unit_batch, decode_unit_outcome, unit_result_key, BATCH_KIND,
    RESULT_KIND,
};
use widening_pipeline::{Exchange, FailureCause, PointSpec, UnitOutcome};

use crate::evaluate::{aggregate, score_eval, CorpusEval, Evaluator, LoopEval};

/// Tuning for a distributed sweep.
#[derive(Debug, Clone)]
pub struct DistributedOptions {
    /// Local workers the coordinator spawns up front.
    pub workers: usize,
    /// Autoscale ceiling: the coordinator grows the fleet toward this
    /// while the queue's remaining-priority-mass estimate exceeds the
    /// per-worker budget. Equal to `workers` (the default) means a
    /// static fleet.
    pub max_workers: usize,
    /// Threads per worker for intra-shard fan-out.
    pub worker_threads: usize,
    /// Shards per worker (finer = less work lost per killed worker).
    pub shards_per_worker: usize,
    /// Lease TTL before a silent worker's shard is requeued.
    pub lease_ttl: Duration,
    /// Whether workers publish per-shard batch result records (the
    /// default) instead of one file per unit.
    pub batch_results: bool,
    /// Fault-injection knob: the first spawned worker abandons its work
    /// after this many units (no completion marker, silent lease) — the
    /// CI chaos path. `None` in production.
    pub chaos_die_after_units: Option<u64>,
    /// Directory where spawned worker processes drop their binary span
    /// traces (`worker-<index>.trace.bin`), for the merged fleet
    /// timeline. `None` disables collection.
    pub trace_dir: Option<PathBuf>,
    /// Measured per-unit cost model (`--cost-model <file>`): steers the
    /// manifest's LPT unit ordering and the coordinator's autoscale
    /// mass estimate with calibrated priorities instead of the analytic
    /// `sweep_priority`. Ordering and scaling only — merged aggregates
    /// are bitwise-equal with or without it.
    pub cost_model: Option<Arc<widening_cost::CalibratedModel>>,
}

impl DistributedOptions {
    /// Defaults for `workers` local workers: one thread each, 4 shards
    /// per worker, 30 s lease TTL, batch records, no autoscaling.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        DistributedOptions {
            workers,
            max_workers: workers,
            worker_threads: 1,
            shards_per_worker: 4,
            lease_ttl: Duration::from_secs(30),
            batch_results: true,
            chaos_die_after_units: None,
            trace_dir: None,
            cost_model: None,
        }
    }
}

/// A merged distributed sweep.
#[derive(Debug)]
pub struct DistributedSweep {
    /// One aggregate per requested design point, in input order —
    /// bitwise-equal to what [`Evaluator::sweep_specs`] computes for
    /// the same grid.
    pub aggregates: Vec<Arc<CorpusEval>>,
    /// The coordinator-side run record (shard reports, fleet counters,
    /// requeues, respawns).
    pub run: SweepRun,
    /// Units merged by local recompute because their published result
    /// was missing or unreadable (0 on a healthy filesystem).
    pub fallback_units: usize,
}

/// Why a distributed sweep could not run.
#[derive(Debug)]
pub enum DistributedSweepError {
    /// The evaluator has no persistent cache directory — there is no
    /// shared medium for workers to exchange results through.
    NoCacheDir,
    /// The distributed runtime failed (queue I/O, worker spawn, fleet
    /// exhaustion).
    Distrib(DistribError),
}

impl fmt::Display for DistributedSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributedSweepError::NoCacheDir => write!(
                f,
                "distributed sweeps need a persistent store: rebuild the evaluator with \
                 a StoreConfig cache_dir (repro: pass --cache-dir)"
            ),
            DistributedSweepError::Distrib(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistributedSweepError {}

impl From<DistribError> for DistributedSweepError {
    fn from(e: DistribError) -> Self {
        DistributedSweepError::Distrib(e)
    }
}

/// A [`Launcher`]-compatible command builder that re-invokes the
/// current executable as `worker --queue … --cache-dir … --threads N`.
/// Correct for binaries with a `repro`-style worker subcommand; tests
/// and benches should prefer [`Launcher::InProcess`].
pub fn worker_command(exe: PathBuf) -> impl Fn(&SpawnContext) -> Command {
    move |sc: &SpawnContext| {
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--queue")
            .arg(&sc.queue_dir)
            .arg("--cache-dir")
            .arg(&sc.cache_dir)
            .arg("--threads")
            .arg(sc.threads.to_string())
            .arg("--lease-ttl-ms")
            .arg(sc.lease_ttl.as_millis().to_string())
            // The spawning coordinator supervises leases; see the
            // in-process launcher for the same choice.
            .arg("--no-requeue");
        if !sc.batch_results {
            cmd.arg("--per-unit-results");
        }
        if let Some(limit) = sc.die_after_units {
            cmd.arg("--die-after-units").arg(limit.to_string());
        }
        if let Some(path) = &sc.trace_file {
            cmd.arg("--trace-file").arg(path);
        }
        cmd
    }
}

/// Runs `specs` over the evaluator's corpus as a sharded multi-process
/// (or multi-thread, per `launcher`) sweep and merges the published
/// results. See the module docs for the bitwise-equality contract.
///
/// # Errors
///
/// [`DistributedSweepError::NoCacheDir`] without a persistent store;
/// [`DistributedSweepError::Distrib`] when the runtime fails.
pub fn sweep_distributed(
    eval: &Evaluator,
    specs: &[PointSpec],
    opts: &DistributedOptions,
    launcher: &Launcher<'_>,
) -> Result<DistributedSweep, DistributedSweepError> {
    let cache_dir = eval
        .pipeline()
        .store_config()
        .cache_dir
        .clone()
        .ok_or(DistributedSweepError::NoCacheDir)?;
    let loops = eval.loops();

    let mut cfg = CoordinatorConfig::new(&cache_dir, opts.workers);
    cfg.max_workers = opts.max_workers.max(opts.workers);
    cfg.worker_threads = opts.worker_threads.max(1);
    cfg.shards_per_worker = opts.shards_per_worker.max(1);
    cfg.lease_ttl = opts.lease_ttl;
    cfg.batch_results = opts.batch_results;
    cfg.chaos_die_after_units = opts.chaos_die_after_units;
    cfg.trace_dir = opts.trace_dir.clone();
    cfg.unit_cost = opts.cost_model.clone();
    let shard_count = cfg.shard_count(loops.len() * specs.len());
    let manifest = match &opts.cost_model {
        Some(model) => SweepManifest::partition_with(
            (*loops).clone(),
            specs.to_vec(),
            shard_count,
            |x, y, z| model.priority(x, y, z),
        ),
        None => SweepManifest::partition((*loops).clone(), specs.to_vec(), shard_count),
    };
    let run = run_sweep(&manifest, &cfg, launcher)?;

    let (aggregates, fallback_units) = merge_published(eval, specs, Some(&manifest));
    Ok(DistributedSweep {
        aggregates,
        run,
        fallback_units,
    })
}

/// Merges published unit results for `specs` into corpus aggregates
/// (recompiling any missing unit locally), installing each into the
/// evaluator's aggregate memo. Returns the aggregates in spec order
/// plus the local-fallback unit count.
///
/// With a `manifest`, the merge consumes **batch result records**
/// first: one exchange read per shard part replaces one per unit, and
/// any unit a batch does not cover — a requeued partial shard, a
/// pre-batch cache, a mixed old/new fleet — falls back to the per-unit
/// tier and finally to local recompute. Coverage tiers never change
/// *values* (every record of a unit holds identical bytes), so the
/// merged aggregates are bitwise-equal whichever tier serves each unit.
///
/// Exposed separately so fault-injection tests can drive a queue by
/// hand and still use the production merge.
#[must_use]
pub fn merge_published(
    eval: &Evaluator,
    specs: &[PointSpec],
    manifest: Option<&SweepManifest>,
) -> (Vec<Arc<CorpusEval>>, usize) {
    let loops = eval.loops();
    let exchange = eval
        .pipeline()
        .store_config()
        .cache_dir
        .as_deref()
        .and_then(Exchange::open);
    // Reuse the pipeline's fingerprint table where it exists (always,
    // for the persistent stores every distributed sweep runs over).
    let fingerprints: Vec<u128> = loops
        .iter()
        .enumerate()
        .map(|(li, l)| {
            eval.pipeline()
                .content_fingerprint(li)
                .unwrap_or_else(|| ddg_fingerprint(l.ddg()))
        })
        .collect();

    // The batch tier: unit id → outcome, loaded once per shard part.
    // Unit ids (and the key lists) are manifest-relative, so the tier
    // only applies when the evaluator's corpus IS the manifest's corpus
    // — an evaluator extended (or rebuilt) since the sweep falls back
    // to the per-unit tier, whose keys are per-loop content addresses
    // and immune to index drift. A spec absent from the manifest
    // likewise finds no batch coverage.
    let manifest = manifest.filter(|m| m.loops == **loops);
    let mut batched: std::collections::HashMap<u32, UnitOutcome> = std::collections::HashMap::new();
    if let (Some(man), Some(ex)) = (manifest, exchange.as_ref()) {
        for shard in 0..man.shards.len() {
            let keys = man.shard_unit_keys(shard, &fingerprints);
            // Part 0 is the owner's record; parts 1.. are thief records,
            // one per recursive-halving steal round (capped — see
            // `widening_distrib::BATCH_PARTS`).
            for part in 0..BATCH_PARTS {
                if let Some(bytes) = ex.get(BATCH_KIND, &batch_result_key(&keys, part)) {
                    batched.extend(decode_unit_batch(&bytes).unwrap_or_default());
                }
            }
        }
    }

    let mut aggregates = Vec::with_capacity(specs.len());
    let fallbacks = std::sync::atomic::AtomicUsize::new(0);
    for spec in specs {
        let spec_index = manifest.and_then(|m| m.specs.iter().position(|s| s == spec));
        // Fetch in parallel — tens of thousands of open/verify round
        // trips at paper scale, each paying network latency on a shared
        // filesystem — then fold strictly sequentially in corpus order
        // (the fold order, not the fetch order, is what the bitwise
        // contract constrains).
        let outcomes = widening_pipeline::pool::par_map(loops.len(), eval.threads(), |li| {
            let from_batch =
                spec_index.and_then(|si| batched.get(&((si * loops.len() + li) as u32)).copied());
            let published = from_batch.or_else(|| {
                exchange
                    .as_ref()
                    .and_then(|ex| ex.get(RESULT_KIND, &unit_result_key(fingerprints[li], spec)))
                    .and_then(|bytes| decode_unit_outcome(&bytes))
            });
            published.unwrap_or_else(|| {
                // Best-effort publishes can vanish; the merge stays
                // total by compiling the hole locally (warm in practice
                // — the stage artifacts usually made it to disk even
                // when the result record did not).
                fallbacks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                UnitOutcome::of(&eval.pipeline().compile(li, spec))
            })
        });
        let mut scores = Vec::with_capacity(loops.len());
        for (l, outcome) in loops.iter().zip(outcomes) {
            let le = loop_eval_of(outcome);
            if let LoopEval::Failed {
                cause: FailureCause::Rewrite,
            } = le
            {
                eprintln!(
                    "warning: spill rewrite failed on {} (distributed worker) — compiler \
                     defect, not register pressure",
                    l.name()
                );
            }
            scores.push(score_eval(l, spec.width, le));
        }
        let agg = eval.memoize(spec, Arc::new(aggregate(scores)));
        eval.pipeline().seal_point(spec);
        aggregates.push(agg);
    }
    (aggregates, fallbacks.into_inner())
}

/// The evaluator-side projection of a published unit result.
fn loop_eval_of(outcome: UnitOutcome) -> LoopEval {
    match outcome {
        UnitOutcome::Ok {
            ii,
            mii,
            registers,
            spill_ops,
        } => LoopEval::Ok {
            ii,
            mii,
            registers,
            spill_ops,
        },
        UnitOutcome::Failed { cause } => LoopEval::Failed { cause },
    }
}
