//! `repro` — regenerate any table or figure of *Widening Resources*
//! (MICRO 1998).
//!
//! ```text
//! repro [--quick[=N]] [--csv] [--seed S] [--threads N] [--simulate]
//!       [--exec interpret|lowered|differential] [--cache-dir DIR]
//!       [--cache-budget BYTES] [--extend N] [--shards N] [--trace FILE]
//!       <experiment>... | all | list
//! repro worker --queue DIR --cache-dir DIR [--threads N]
//!       [--lease-ttl-ms MS] [--no-requeue] [--trace-file FILE]
//! repro trace summarize FILE
//! repro perf record [--quick[=N]] [--reps R] [--out FILE]
//! repro perf compare BASELINE CANDIDATE
//! repro perf calibrate [--quick[=N]] [--from BENCH.json] [--out FILE]
//! repro cache stat --cache-dir DIR
//! repro cache gc --keep-generations N --cache-dir DIR
//! ```
//!
//! * `--quick[=N]` — run on an `N`-loop corpus (default 120) instead of
//!   the paper-scale 1180 loops; useful for smoke tests.
//! * `--csv` — emit CSV instead of aligned tables.
//! * `--seed S` — alternative corpus seed (sensitivity checks).
//! * `--threads N` — worker threads for corpus fan-out (default: one
//!   per core, capped at 16).
//! * `--simulate` — run the cycle-accurate simulator over the corpus
//!   (differential validation + transient analysis) in addition to any
//!   named experiments. With `--cache-dir`, validated per-loop
//!   summaries persist too, so a second `--simulate` run warm-starts
//!   from the disk tier.
//! * `--exec MODE` — execution backend for the simulation experiments:
//!   `interpret` (the cycle-level interpreter, default), `lowered`
//!   (flat `WideProgram` bytecode, lowered once per design point
//!   through the pipeline's memoized — and disk-persisted — lower
//!   stage), or `differential` (run **both** and fail on the first
//!   bitwise difference; the interpreter is the oracle).
//! * `--cache-dir DIR` — persist stage artifacts in a content-addressed
//!   on-disk store under `DIR`; a second run over the same corpus
//!   decodes every stage instead of recompiling it. Prints a final
//!   `cache:` summary line with the stage counters, and stamps a new
//!   store *generation* (see `repro cache`).
//! * `--cache-budget BYTES` — bound the in-memory schedule-stage tier
//!   (accepts `K`/`M`/`G` suffixes, e.g. `--cache-budget 64M`); folded
//!   design points are LRU-evicted past the budget.
//! * `--extend N` — route the **last `N` loops of the corpus** through
//!   the incremental ingestion path (`Evaluator::extend` →
//!   `Pipeline::extend`) instead of baking them in up front. The corpus
//!   contents — and therefore every analytic result — are identical
//!   with or without the flag; only the ingestion path differs.
//! * `--shards N` — run the `sweep` experiment through the distributed
//!   engine: the coordinator partitions the `(loop × config)` grid into
//!   priority-ordered shards and auto-spawns `N` local worker processes
//!   (`repro worker …`) over the shared `--cache-dir`. Merged
//!   aggregates are bitwise-equal to the in-process sweep; a killed
//!   worker's shard is requeued when its lease counter stalls.
//! * `--max-workers M` — raise the fleet's autoscale ceiling above
//!   `--shards N`: the coordinator spawns extra workers (up to `M`)
//!   while the queue's remaining-priority-mass estimate exceeds the
//!   per-worker budget, and the extras retire when the queue drains.
//! * `--chaos-exit-units N` — fault injection for smoke tests: the
//!   first spawned worker abandons everything after `N` units (silent
//!   lease, no completion marker), exercising the requeue path.
//! * `repro worker` — standalone worker mode: claim shards from
//!   `--queue`, publish batched results into `--cache-dir`
//!   (`--per-unit-results` for the legacy one-file-per-unit protocol),
//!   steal surplus tails when idle, exit when the queue completes.
//!   Point several of these (on one machine or on hosts sharing a
//!   filesystem) at one queue to scale a sweep out.
//! * `--trace FILE` — record spans (stage executions, sweep units,
//!   queue waits, store evictions; with `--shards` also worker
//!   lifecycle, steals, heartbeats and fleet events) and write one
//!   merged Chrome trace-event JSON timeline to `FILE` on exit — open
//!   it at <https://ui.perfetto.dev>. Distributed workers each write a
//!   binary trace next to their results; the coordinator merges them
//!   into the same file, one process track per worker.
//! * `repro trace summarize` — read a `--trace` JSON back and print
//!   per-stage latency percentiles (p50/p90/p99 from log₂-bucketed
//!   histograms), instant-event counts, per-shard busy time, and
//!   per-track span counts; dropped-event counts are surfaced loudly.
//! * `repro perf` — the perf ledger: `record` writes a versioned
//!   machine-readable `BENCH_<stamp>.json` (wall-time probes,
//!   per-stage percentiles, store counters, per-unit wall times),
//!   `compare` gates a candidate report against a baseline with
//!   noise-aware min-of-N thresholds (nonzero exit on regression), and
//!   `calibrate` fits measured unit latencies against the analytic
//!   `sweep_priority` mass, writing the calibration `--cost-model`
//!   loads back.
//! * `--cost-model FILE` — order sweep units (and distributed shard
//!   mass estimates) by measured latencies from a `perf calibrate`
//!   report instead of the analytic priority; aggregates stay
//!   bitwise-equal.
//! * `repro cache stat` — per-kind file/byte usage and the generation
//!   history of a cache directory.
//! * `repro cache gc` — prune artifacts untouched for the last
//!   `--keep-generations N` runs.

use std::process::ExitCode;

use widening::experiments::{self, Context};
use widening::Evaluator;
use widening_obs as obs;
use widening_pipeline::{maint, StoreConfig};
use widening_workload::corpus::{generate, CorpusSpec};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("worker") => return worker_main(&argv[1..]),
        Some("cache") => return cache_main(&argv[1..]),
        Some("trace") => return trace_main(&argv[1..]),
        Some("perf") => return widening::perf::perf_main(&argv[1..]),
        _ => {}
    }

    let mut quick: Option<usize> = None;
    let mut csv = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_budget: Option<usize> = None;
    let mut extend: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut max_workers: Option<usize> = None;
    let mut chaos_exit_units: Option<u64> = None;
    let mut trace: Option<String> = None;
    let mut cost_model: Option<String> = None;
    let mut exec: Option<widening::sim::Backend> = None;
    let mut names: Vec<String> = Vec::new();

    let mut args = argv.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--simulate" => {
                names.push("simulate".to_string());
                names.push("transients".to_string());
            }
            "--quick" => quick = Some(120),
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage("--seed needs an integer"),
            },
            "--threads" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage("--threads needs a positive integer"),
            },
            "--cache-dir" => match args.next() {
                Some(dir) if !dir.starts_with('-') => cache_dir = Some(dir),
                _ => return usage("--cache-dir needs a path"),
            },
            "--cache-budget" => match args.next().as_deref().and_then(parse_bytes) {
                Some(b) => cache_budget = Some(b),
                None => return usage("--cache-budget needs a byte count (K/M/G ok)"),
            },
            "--extend" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => extend = Some(n),
                None => return usage("--extend needs a loop count"),
            },
            "--shards" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => shards = Some(n),
                _ => return usage("--shards needs a positive worker count"),
            },
            "--max-workers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => max_workers = Some(n),
                _ => return usage("--max-workers needs a positive worker count"),
            },
            "--chaos-exit-units" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => chaos_exit_units = Some(n),
                _ => return usage("--chaos-exit-units needs a positive unit count"),
            },
            "--trace" => match args.next() {
                Some(f) if !f.starts_with('-') => trace = Some(f),
                _ => return usage("--trace needs an output file"),
            },
            "--exec" => match args.next().map(|s| s.parse()) {
                Some(Ok(b)) => exec = Some(b),
                Some(Err(why)) => return usage(&why),
                None => return usage("--exec needs a backend: interpret | lowered | differential"),
            },
            "--cost-model" => match args.next() {
                Some(f) if !f.starts_with('-') => cost_model = Some(f),
                _ => {
                    return usage(
                        "--cost-model needs a calibration file (see repro perf calibrate)",
                    )
                }
            },
            a if a.starts_with("--quick=") => match a["--quick=".len()..].parse() {
                Ok(n) => quick = Some(n),
                Err(_) => return usage("--quick=N needs an integer"),
            },
            a if a.starts_with("--cache-dir=") => {
                cache_dir = Some(a["--cache-dir=".len()..].to_string());
            }
            a if a.starts_with("--cache-budget=") => {
                match parse_bytes(&a["--cache-budget=".len()..]) {
                    Some(b) => cache_budget = Some(b),
                    None => return usage("--cache-budget=BYTES needs a byte count (K/M/G ok)"),
                }
            }
            a if a.starts_with("--extend=") => match a["--extend=".len()..].parse() {
                Ok(n) => extend = Some(n),
                Err(_) => return usage("--extend=N needs an integer"),
            },
            a if a.starts_with("--shards=") => match a["--shards=".len()..].parse() {
                Ok(n) if n >= 1 => shards = Some(n),
                _ => return usage("--shards=N needs a positive worker count"),
            },
            a if a.starts_with("--max-workers=") => match a["--max-workers=".len()..].parse() {
                Ok(n) if n >= 1 => max_workers = Some(n),
                _ => return usage("--max-workers=M needs a positive worker count"),
            },
            a if a.starts_with("--chaos-exit-units=") => {
                match a["--chaos-exit-units=".len()..].parse() {
                    Ok(n) if n >= 1 => chaos_exit_units = Some(n),
                    _ => return usage("--chaos-exit-units=N needs a positive unit count"),
                }
            }
            a if a.starts_with("--trace=") => trace = Some(a["--trace=".len()..].to_string()),
            a if a.starts_with("--exec=") => match a["--exec=".len()..].parse() {
                Ok(b) => exec = Some(b),
                Err(why) => return usage(&why),
            },
            a if a.starts_with("--cost-model=") => {
                cost_model = Some(a["--cost-model=".len()..].to_string());
            }
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(ToString::to_string)),
            a if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            a => names.push(a.to_string()),
        }
    }
    if names.is_empty() {
        return usage("no experiment given");
    }
    if shards.is_some() && cache_dir.is_none() {
        return usage("--shards needs --cache-dir (the workers' shared artifact exchange)");
    }
    if shards.is_some() && names.iter().any(|n| n != "sweep") {
        // Refuse rather than silently running the rest single-process.
        return usage("--shards only applies to the `sweep` experiment; drop the flag or the other experiment names");
    }
    if (max_workers.is_some() || chaos_exit_units.is_some()) && shards.is_none() {
        return usage("--max-workers/--chaos-exit-units only apply with --shards N");
    }
    // `--simulate all` would otherwise queue simulate/transients twice.
    let mut seen = std::collections::HashSet::new();
    names.retain(|n| seen.insert(n.clone()));

    // `--cost-model` swaps the analytic sweep_priority ordering for
    // measured unit latencies (`repro perf calibrate --out FILE`);
    // pure scheduling, so aggregates stay bitwise-equal either way.
    let unit_cost = match &cost_model {
        Some(path) => match widening::cost::CalibratedModel::load(std::path::Path::new(path)) {
            Ok(model) => {
                eprintln!("cost-model: {path} ({} calibrated point(s))", model.len());
                Some(std::sync::Arc::new(model))
            }
            Err(why) => {
                eprintln!("error: cannot load --cost-model {path}: {why}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let caching = cache_dir.is_some() || cache_budget.is_some();
    if let Some(dir) = &cache_dir {
        // One generation stamp per cache-consuming run (workers a
        // distributed sweep spawns belong to this run, not their own).
        let _ = maint::record_run(std::path::Path::new(dir));
    }
    // `--trace` installs the process-global span recorder up front so
    // corpus build, experiments and the merge all land on the timeline.
    let recorder = trace.as_ref().map(|_| {
        let r = obs::Recorder::new("repro");
        obs::install(&r);
        obs::set_thread_label("main");
        r
    });
    // Spawned workers of a traced distributed sweep drop binary traces
    // in a per-run directory under the shared cache; merged (and the
    // directory removed) after the run.
    let worker_trace_dir = match (&trace, &cache_dir, shards) {
        (Some(_), Some(dir), Some(_)) => {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default()
                .as_nanos();
            Some(
                std::path::Path::new(dir)
                    .join("traces")
                    .join(format!("run-{}-{nanos:x}", std::process::id())),
            )
        }
        _ => None,
    };
    let ctx = build_context(
        quick,
        seed,
        threads,
        cache_dir,
        cache_budget,
        extend,
        unit_cost.clone(),
    )
    .with_backend(exec.unwrap_or_default());
    eprintln!(
        "corpus: {} loops (seed {}), {} worker threads, {} exec backend",
        ctx.eval.loops().len(),
        seed.unwrap_or_else(|| CorpusSpec::default().seed),
        ctx.eval.threads(),
        ctx.backend,
    );
    // Stage work done outside this process (distributed sweep workers),
    // folded into the final `cache:` summary.
    let mut fleet_counts = widening_pipeline::StageCounts::zero();
    for name in &names {
        let reports = match (name.as_str(), shards) {
            ("sweep", Some(workers)) => {
                match experiments::sweep_distributed_reports(
                    &ctx,
                    workers,
                    max_workers,
                    chaos_exit_units,
                    worker_trace_dir.clone(),
                    unit_cost.clone(),
                ) {
                    Ok((reports, worker_counts)) => {
                        fleet_counts = fleet_counts.plus(&worker_counts);
                        Some(reports)
                    }
                    Err(why) => {
                        eprintln!("error: distributed sweep failed: {why}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => experiments::run(name, &ctx),
        };
        match reports {
            Some(reports) => {
                for r in reports {
                    if csv {
                        print!("{}", r.to_csv());
                    } else {
                        println!("{r}");
                    }
                }
            }
            None => return usage(&format!("unknown experiment {name:?}")),
        }
    }
    if caching {
        // Machine-greppable store summary (the warm-cache CI jobs assert
        // `live-runs=0` on the second run over a shared --cache-dir).
        // Distributed runs fold the worker fleet's counters in.
        let c = ctx.eval.pipeline().stage_counts().plus(&fleet_counts);
        println!(
            "cache: live-runs={} disk-hits={} memo-hits={} evictions={} resident-bytes={} \
             disk-errors={}",
            c.live_runs(),
            c.disk_hits(),
            c.hits() - c.disk_hits(),
            c.schedule_evictions,
            c.schedule_resident_bytes,
            ctx.eval.pipeline().disk_errors(),
        );
    }
    if let (Some(path), Some(rec)) = (&trace, &recorder) {
        obs::uninstall();
        let mut traces = vec![rec.snapshot()];
        if let Some(dir) = &worker_trace_dir {
            traces.extend(obs::read_trace_dir(dir));
            let _ = std::fs::remove_dir_all(dir);
        }
        let path = std::path::Path::new(path);
        if let Err(e) = obs::write_chrome_trace_file(path, &traces) {
            eprintln!("error: cannot write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: wrote {} ({} process track(s))",
            path.display(),
            traces.len()
        );
    }
    ExitCode::SUCCESS
}

/// `repro worker` — standalone distributed-sweep worker.
fn worker_main(args: &[String]) -> ExitCode {
    let mut queue: Option<String> = None;
    let mut cache: Option<String> = None;
    let mut threads: usize = 1;
    let mut lease_ttl_ms: u64 = 30_000;
    let mut requeue_foreign = true;
    let mut batch_results = true;
    let mut die_after_units: Option<u64> = None;
    let mut trace_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--queue" => queue = it.next().cloned(),
            "--cache-dir" => cache = it.next().cloned(),
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => return usage("worker --threads needs a positive integer"),
            },
            "--lease-ttl-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(ms) => lease_ttl_ms = ms,
                None => return usage("worker --lease-ttl-ms needs milliseconds"),
            },
            // Coordinator-spawned workers leave lease supervision to the
            // coordinator so its requeue counter stays exact; standalone
            // fleets keep the default self-healing behaviour.
            "--no-requeue" => requeue_foreign = false,
            // The legacy one-record-per-unit publishing protocol, for
            // mixed fleets and the publish-cost benchmark.
            "--per-unit-results" => batch_results = false,
            // Fault injection: die (silent lease, no completion marker)
            // after N units.
            "--die-after-units" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => die_after_units = Some(n),
                None => return usage("worker --die-after-units needs a unit count"),
            },
            // Span recording for the coordinator's merged fleet
            // timeline: the binary trace is written here on exit.
            "--trace-file" => trace_file = it.next().cloned(),
            a => return usage(&format!("unknown worker flag {a}")),
        }
    }
    let (Some(queue), Some(cache)) = (queue, cache) else {
        return usage("worker needs --queue DIR and --cache-dir DIR");
    };
    let mut cfg = widening::distrib::WorkerConfig::new(queue, cache);
    cfg.threads = threads;
    cfg.lease_ttl = std::time::Duration::from_millis(lease_ttl_ms.max(1));
    cfg.requeue_foreign = requeue_foreign;
    cfg.batch_results = batch_results;
    cfg.die_after_units = die_after_units;
    let recorder = trace_file.as_ref().map(|_| {
        let r = obs::Recorder::new(&format!("repro-worker-{}", std::process::id()));
        obs::install(&r);
        r
    });
    let result = widening::distrib::run_worker(&cfg);
    if let (Some(path), Some(rec)) = (&trace_file, &recorder) {
        obs::uninstall();
        if let Err(e) = obs::write_trace_file(std::path::Path::new(path), &rec.snapshot()) {
            eprintln!("warning: cannot write worker trace {path}: {e}");
        }
    }
    match result {
        Ok(summary) => {
            eprintln!(
                "worker: {} shard(s), {} unit(s), {} result hit(s), {} steal(s) \
                 ({} stolen unit(s)), {} live stage run(s)",
                summary.shards_completed,
                summary.units,
                summary.result_hits,
                summary.steals,
                summary.stolen_units,
                summary.counts.live_runs(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro trace summarize FILE` — latency tables from a merged Chrome
/// trace written by `--trace`: per-stage percentiles (log₂-bucket upper
/// bounds, so an at-most-2× overestimate), per-shard busy time, and
/// per-track span counts.
fn trace_main(args: &[String]) -> ExitCode {
    let (Some("summarize"), Some(path), None) =
        (args.first().map(String::as_str), args.get(1), args.get(2))
    else {
        return usage("trace needs a subcommand: summarize FILE");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match obs::json::parse(&text).and_then(|v| obs::analyze::parse_chrome(&v)) {
        Ok(doc) => doc,
        Err(why) => {
            eprintln!("error: {path} is not a valid merged trace: {why}");
            return ExitCode::FAILURE;
        }
    };
    // Ring overflow means every table below undercounts: say so first,
    // loudly, on stderr, so a truncated trace is never read as a quiet
    // one.
    let dropped = doc.total_dropped();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} span event(s) were DROPPED at record time (per-thread ring \
             overflow); every count and percentile below under-reports"
        );
        for (pid, n) in &doc.dropped_events {
            if *n > 0 {
                let name = doc.processes.get(pid).map_or("?", String::as_str);
                eprintln!("warning:   {name}: {n} dropped event(s)");
            }
        }
    }
    let us = |v: f64| format!("{v:.1}");
    let mut stages = widening::report::Report::new(format!("Trace — per-stage latency ({path})"))
        .with_columns([
            "span",
            "count",
            "p50 µs",
            "p90 µs",
            "p99 µs",
            "max µs",
            "total µs",
        ]);
    for s in obs::analyze::per_stage_stats(&doc.spans) {
        stages.push_row([
            s.name.clone(),
            s.count.to_string(),
            us(s.p50_us),
            us(s.p90_us),
            us(s.p99_us),
            us(s.max_us),
            us(s.total_us),
        ]);
    }
    stages.push_note(format!(
        "{} span(s), {} instant event(s), {} DROPPED event(s); percentiles are log₂-bucket \
         upper bounds",
        doc.spans.len(),
        doc.instants,
        dropped
    ));
    println!("{stages}");

    if !doc.instants_by_name.is_empty() {
        let mut r = widening::report::Report::new("Trace — instant events")
            .with_columns(["instant", "count"]);
        for (name, count) in &doc.instants_by_name {
            r.push_row([name.clone(), count.to_string()]);
        }
        r.push_note(
            "store evictions plus fleet lifecycle: steals, lease expiries, autoscale, respawns",
        );
        println!("{r}");
    }

    let shards = obs::analyze::per_shard_stats(&doc.spans);
    if !shards.is_empty() {
        let mut r = widening::report::Report::new("Trace — per-shard busy time")
            .with_columns(["shard", "runs", "steals", "units", "busy µs"]);
        for s in &shards {
            r.push_row([
                s.shard.to_string(),
                s.runs.to_string(),
                s.steals.to_string(),
                s.units.to_string(),
                us(s.busy_us),
            ]);
        }
        println!("{r}");
    }

    let mut tracks = widening::report::Report::new("Trace — per-track spans")
        .with_columns(["process", "track", "spans", "busy µs"]);
    for t in obs::analyze::per_track_stats(&doc) {
        tracks.push_row([t.process, t.track, t.spans.to_string(), us(t.busy_us)]);
    }
    println!("{tracks}");
    ExitCode::SUCCESS
}

/// `repro cache stat|gc` — store lifecycle over a cache directory.
fn cache_main(args: &[String]) -> ExitCode {
    let sub = args.first().map(String::as_str);
    let mut cache: Option<String> = None;
    let mut keep: Option<u64> = None;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => cache = it.next().cloned(),
            "--keep-generations" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => keep = Some(n),
                _ => return usage("cache gc --keep-generations needs a positive integer"),
            },
            a => return usage(&format!("unknown cache flag {a}")),
        }
    }
    let Some(cache) = cache else {
        return usage("cache commands need --cache-dir DIR");
    };
    let root = std::path::Path::new(&cache);
    match sub {
        Some("stat") => {
            let Some(stat) = maint::stat(root) else {
                eprintln!("error: no store under {cache}");
                return ExitCode::FAILURE;
            };
            let mut r = widening::report::Report::new(format!("Cache store — {cache}"))
                .with_columns(["kind", "files", "bytes"]);
            for k in &stat.kinds {
                r.push_row([k.kind.clone(), k.files.to_string(), k.bytes.to_string()]);
            }
            r.push_note(format!(
                "generation {} ({} run(s) recorded) · total {} file(s), {} byte(s)",
                stat.generation,
                stat.runs_recorded,
                stat.total_files(),
                stat.total_bytes()
            ));
            println!("{r}");
            ExitCode::SUCCESS
        }
        Some("gc") => {
            let Some(keep) = keep else {
                return usage("cache gc needs --keep-generations N");
            };
            let Some(outcome) = maint::gc(root, keep) else {
                eprintln!("error: no store under {cache}");
                return ExitCode::FAILURE;
            };
            println!(
                "cache-gc: examined={} pruned={} pruned-bytes={} cutoff-generation={}",
                outcome.examined, outcome.pruned, outcome.pruned_bytes, outcome.cutoff_generation
            );
            ExitCode::SUCCESS
        }
        _ => usage("cache needs a subcommand: stat | gc"),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_context(
    quick: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    cache_dir: Option<String>,
    cache_budget: Option<usize>,
    extend: Option<usize>,
    unit_cost: Option<std::sync::Arc<widening::cost::CalibratedModel>>,
) -> Context {
    let mut spec = CorpusSpec::default();
    if let Some(n) = quick {
        spec.loops = n;
    }
    if let Some(s) = seed {
        spec.seed = s;
    }
    // `--extend N` holds N loops back and feeds them through the
    // incremental ingestion path below.
    let held_back = extend.unwrap_or(0).min(spec.loops.saturating_sub(1));
    let full = generate(&spec);
    let (initial, appended) = full.split_at(full.len() - held_back.min(full.len()));
    let mut eval = Evaluator::new(initial.to_vec()).with_unit_cost(unit_cost);
    if let Some(n) = threads {
        eval = eval.with_threads(n);
    }
    if cache_dir.is_some() || cache_budget.is_some() {
        eval = eval.with_store(StoreConfig {
            cache_dir: cache_dir.map(Into::into),
            memory_budget: cache_budget,
        });
    }
    eval.extend(appended.to_vec());
    Context::over(eval)
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, unit) = match s.char_indices().find(|(_, c)| !c.is_ascii_digit()) {
        Some((i, _)) => s.split_at(i),
        None => (s, ""),
    };
    let n: usize = digits.parse().ok()?;
    let factor = match unit.to_ascii_uppercase().as_str() {
        "" | "B" => 1,
        "K" | "KB" => 1 << 10,
        "M" | "MB" => 1 << 20,
        "G" | "GB" => 1 << 30,
        _ => return None,
    };
    n.checked_mul(factor)
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: repro [--quick[=N]] [--csv] [--seed S] [--threads N] [--simulate] \
         [--exec interpret|lowered|differential] [--cache-dir DIR] \
         [--cache-budget BYTES] [--extend N] [--shards N] \
         [--max-workers M] [--chaos-exit-units N] [--trace FILE] \
         [--cost-model FILE] <experiment>... | all | list"
    );
    eprintln!(
        "       repro worker --queue DIR --cache-dir DIR [--threads N] [--lease-ttl-ms MS] \
         [--per-unit-results] [--die-after-units N] [--trace-file FILE]"
    );
    eprintln!("       repro trace summarize FILE");
    eprintln!("       repro perf record [--quick[=N]] [--reps R] [--threads N] [--out FILE]");
    eprintln!("       repro perf compare BASELINE CANDIDATE [--max-ratio R] [--abs-floor-ms MS]");
    eprintln!(
        "       repro perf calibrate [--quick[=N]] [--threads N] [--from BENCH.json] [--out FILE]"
    );
    eprintln!("       repro cache stat --cache-dir DIR");
    eprintln!("       repro cache gc --keep-generations N --cache-dir DIR");
    eprintln!("experiments: {}", experiments::ALL.join(" "));
    ExitCode::FAILURE
}
