//! `repro` — regenerate any table or figure of *Widening Resources*
//! (MICRO 1998).
//!
//! ```text
//! repro [--quick[=N]] [--csv] [--seed S] [--threads N] [--simulate]
//!       <experiment>... | all | list
//! ```
//!
//! * `--quick[=N]` — run on an `N`-loop corpus (default 120) instead of
//!   the paper-scale 1180 loops; useful for smoke tests.
//! * `--csv` — emit CSV instead of aligned tables.
//! * `--seed S` — alternative corpus seed (sensitivity checks).
//! * `--threads N` — worker threads for corpus fan-out (default: one
//!   per core, capped at 16).
//! * `--simulate` — run the cycle-accurate simulator over the corpus
//!   (differential validation + transient analysis) in addition to any
//!   named experiments.

use std::process::ExitCode;

use widening::experiments::{self, Context};
use widening::Evaluator;
use widening_workload::corpus::{generate, CorpusSpec};

fn main() -> ExitCode {
    let mut quick: Option<usize> = None;
    let mut csv = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--simulate" => {
                names.push("simulate".to_string());
                names.push("transients".to_string());
            }
            "--quick" => quick = Some(120),
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage("--seed needs an integer"),
            },
            "--threads" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage("--threads needs a positive integer"),
            },
            a if a.starts_with("--quick=") => match a["--quick=".len()..].parse() {
                Ok(n) => quick = Some(n),
                Err(_) => return usage("--quick=N needs an integer"),
            },
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(ToString::to_string)),
            a if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            a => names.push(a.to_string()),
        }
    }
    if names.is_empty() {
        return usage("no experiment given");
    }
    // `--simulate all` would otherwise queue simulate/transients twice.
    let mut seen = std::collections::HashSet::new();
    names.retain(|n| seen.insert(n.clone()));

    let ctx = build_context(quick, seed, threads);
    eprintln!(
        "corpus: {} loops (seed {}), {} worker threads",
        ctx.eval.loops().len(),
        seed.unwrap_or_else(|| CorpusSpec::default().seed),
        ctx.eval.threads()
    );
    for name in &names {
        match experiments::run(name, &ctx) {
            Some(reports) => {
                for r in reports {
                    if csv {
                        print!("{}", r.to_csv());
                    } else {
                        println!("{r}");
                    }
                }
            }
            None => return usage(&format!("unknown experiment {name:?}")),
        }
    }
    ExitCode::SUCCESS
}

fn build_context(quick: Option<usize>, seed: Option<u64>, threads: Option<usize>) -> Context {
    let mut spec = CorpusSpec::default();
    if let Some(n) = quick {
        spec.loops = n;
    }
    if let Some(s) = seed {
        spec.seed = s;
    }
    let mut eval = Evaluator::new(generate(&spec));
    if let Some(n) = threads {
        eval = eval.with_threads(n);
    }
    Context { eval }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: repro [--quick[=N]] [--csv] [--seed S] [--threads N] [--simulate] \
         <experiment>... | all | list"
    );
    eprintln!("experiments: {}", experiments::ALL.join(" "));
    ExitCode::FAILURE
}
