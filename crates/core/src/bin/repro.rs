//! `repro` — regenerate any table or figure of *Widening Resources*
//! (MICRO 1998).
//!
//! ```text
//! repro [--quick[=N]] [--csv] [--seed S] [--threads N] [--simulate]
//!       [--cache-dir DIR] [--cache-budget BYTES] [--extend N]
//!       <experiment>... | all | list
//! ```
//!
//! * `--quick[=N]` — run on an `N`-loop corpus (default 120) instead of
//!   the paper-scale 1180 loops; useful for smoke tests.
//! * `--csv` — emit CSV instead of aligned tables.
//! * `--seed S` — alternative corpus seed (sensitivity checks).
//! * `--threads N` — worker threads for corpus fan-out (default: one
//!   per core, capped at 16).
//! * `--simulate` — run the cycle-accurate simulator over the corpus
//!   (differential validation + transient analysis) in addition to any
//!   named experiments.
//! * `--cache-dir DIR` — persist stage artifacts in a content-addressed
//!   on-disk store under `DIR`; a second run over the same corpus
//!   decodes every stage instead of recompiling it. Prints a final
//!   `cache:` summary line with the stage counters.
//! * `--cache-budget BYTES` — bound the in-memory schedule-stage tier
//!   (accepts `K`/`M`/`G` suffixes, e.g. `--cache-budget 64M`); folded
//!   design points are LRU-evicted past the budget.
//! * `--extend N` — route the **last `N` loops of the corpus** through
//!   the incremental ingestion path (`Evaluator::extend` →
//!   `Pipeline::extend`) instead of baking them in up front. The corpus
//!   contents — and therefore every analytic result — are identical
//!   with or without the flag; only the ingestion path differs.

use std::process::ExitCode;

use widening::experiments::{self, Context};
use widening::Evaluator;
use widening_pipeline::StoreConfig;
use widening_workload::corpus::{generate, CorpusSpec};

fn main() -> ExitCode {
    let mut quick: Option<usize> = None;
    let mut csv = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_budget: Option<usize> = None;
    let mut extend: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--simulate" => {
                names.push("simulate".to_string());
                names.push("transients".to_string());
            }
            "--quick" => quick = Some(120),
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage("--seed needs an integer"),
            },
            "--threads" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage("--threads needs a positive integer"),
            },
            "--cache-dir" => match args.next() {
                Some(dir) if !dir.starts_with('-') => cache_dir = Some(dir),
                _ => return usage("--cache-dir needs a path"),
            },
            "--cache-budget" => match args.next().as_deref().and_then(parse_bytes) {
                Some(b) => cache_budget = Some(b),
                None => return usage("--cache-budget needs a byte count (K/M/G ok)"),
            },
            "--extend" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => extend = Some(n),
                None => return usage("--extend needs a loop count"),
            },
            a if a.starts_with("--quick=") => match a["--quick=".len()..].parse() {
                Ok(n) => quick = Some(n),
                Err(_) => return usage("--quick=N needs an integer"),
            },
            a if a.starts_with("--cache-dir=") => {
                cache_dir = Some(a["--cache-dir=".len()..].to_string());
            }
            a if a.starts_with("--cache-budget=") => {
                match parse_bytes(&a["--cache-budget=".len()..]) {
                    Some(b) => cache_budget = Some(b),
                    None => return usage("--cache-budget=BYTES needs a byte count (K/M/G ok)"),
                }
            }
            a if a.starts_with("--extend=") => match a["--extend=".len()..].parse() {
                Ok(n) => extend = Some(n),
                Err(_) => return usage("--extend=N needs an integer"),
            },
            "list" => {
                for n in experiments::ALL {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiments::ALL.iter().map(ToString::to_string)),
            a if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            a => names.push(a.to_string()),
        }
    }
    if names.is_empty() {
        return usage("no experiment given");
    }
    // `--simulate all` would otherwise queue simulate/transients twice.
    let mut seen = std::collections::HashSet::new();
    names.retain(|n| seen.insert(n.clone()));

    let caching = cache_dir.is_some() || cache_budget.is_some();
    let ctx = build_context(quick, seed, threads, cache_dir, cache_budget, extend);
    eprintln!(
        "corpus: {} loops (seed {}), {} worker threads",
        ctx.eval.loops().len(),
        seed.unwrap_or_else(|| CorpusSpec::default().seed),
        ctx.eval.threads()
    );
    for name in &names {
        match experiments::run(name, &ctx) {
            Some(reports) => {
                for r in reports {
                    if csv {
                        print!("{}", r.to_csv());
                    } else {
                        println!("{r}");
                    }
                }
            }
            None => return usage(&format!("unknown experiment {name:?}")),
        }
    }
    if caching {
        // Machine-greppable store summary (the warm-cache CI job asserts
        // `live-runs=0` on the second run over a shared --cache-dir).
        let c = ctx.eval.pipeline().stage_counts();
        println!(
            "cache: live-runs={} disk-hits={} memo-hits={} evictions={} resident-bytes={} \
             disk-errors={}",
            c.live_runs(),
            c.disk_hits(),
            c.hits() - c.disk_hits(),
            c.schedule_evictions,
            c.schedule_resident_bytes,
            ctx.eval.pipeline().disk_errors(),
        );
    }
    ExitCode::SUCCESS
}

fn build_context(
    quick: Option<usize>,
    seed: Option<u64>,
    threads: Option<usize>,
    cache_dir: Option<String>,
    cache_budget: Option<usize>,
    extend: Option<usize>,
) -> Context {
    let mut spec = CorpusSpec::default();
    if let Some(n) = quick {
        spec.loops = n;
    }
    if let Some(s) = seed {
        spec.seed = s;
    }
    // `--extend N` holds N loops back and feeds them through the
    // incremental ingestion path below.
    let held_back = extend.unwrap_or(0).min(spec.loops.saturating_sub(1));
    let full = generate(&spec);
    let (initial, appended) = full.split_at(full.len() - held_back.min(full.len()));
    let mut eval = Evaluator::new(initial.to_vec());
    if let Some(n) = threads {
        eval = eval.with_threads(n);
    }
    if cache_dir.is_some() || cache_budget.is_some() {
        eval = eval.with_store(StoreConfig {
            cache_dir: cache_dir.map(Into::into),
            memory_budget: cache_budget,
        });
    }
    eval.extend(appended.to_vec());
    Context { eval }
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, unit) = match s.char_indices().find(|(_, c)| !c.is_ascii_digit()) {
        Some((i, _)) => s.split_at(i),
        None => (s, ""),
    };
    let n: usize = digits.parse().ok()?;
    let factor = match unit.to_ascii_uppercase().as_str() {
        "" | "B" => 1,
        "K" | "KB" => 1 << 10,
        "M" | "MB" => 1 << 20,
        "G" | "GB" => 1 << 30,
        _ => return None,
    };
    n.checked_mul(factor)
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: repro [--quick[=N]] [--csv] [--seed S] [--threads N] [--simulate] \
         [--cache-dir DIR] [--cache-budget BYTES] [--extend N] \
         <experiment>... | all | list"
    );
    eprintln!("experiments: {}", experiments::ALL.join(" "));
    ExitCode::FAILURE
}
