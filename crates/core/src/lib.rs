//! **widening** — reproduction of *Widening Resources: A Cost-effective
//! Technique for Aggressive ILP Architectures* (López, Llosa, Valero,
//! Ayguadé — MICRO 1998).
//!
//! The paper asks: when scaling a VLIW core's issue bandwidth, should
//! you *replicate* resources (more buses/FPUs) or *widen* them (each
//! resource handles `Y` consecutive elements)? It answers with a
//! coupled ILP + area + cycle-time study over 1180 software-pipelined
//! loops, concluding that **moderate replication combined with moderate
//! widening** (e.g. `4w2`) wins once cost is taken into account.
//!
//! This crate is the facade over the full reproduction stack:
//!
//! * `widening-ir` — loop dependence graphs;
//! * `widening-machine` — `XwY(Z:n)` configurations and cycle models;
//! * `widening-transform` — the widening (unroll-and-pack) transform;
//! * `widening-sched` — HRMS-lineage modulo scheduling (+ IMS/ASAP);
//! * `widening-regalloc` — lifetimes, end-fit allocation, spill code;
//! * `widening-pipeline` — the staged widen → MII → schedule →
//!   allocate → spill chain over a two-tier artifact store (LRU-bounded
//!   memory + content-addressed disk persistence), with incremental
//!   corpora and the multi-config sweep engine (the single
//!   implementation of the compilation chain);
//! * `widening-distrib` — the distributed sweep engine: priority-
//!   ordered sharding of the `(loop × config)` grid, a filesystem job
//!   queue with lease-expiry requeue, and coordinator/worker processes
//!   exchanging artifacts through a shared cache directory (the merge
//!   path lives in [`distributed`]);
//! * `widening-cost` — register-cell/area/timing models, SIA roadmap;
//! * `widening-workload` — the Perfect-Club-surrogate corpus;
//! * `widening-lower` — the execution backend: lowers a compiled wide
//!   loop to flat `WideProgram` bytecode with a tight decode-free
//!   executor;
//! * `widening-sim` — cycle-accurate wide-datapath simulator
//!   (interpreter, lowered-bytecode and differential backends) with
//!   validation against a scalar reference;
//! * [`experiments`] — one runnable entry per paper table and figure,
//!   plus the simulation experiments (`simulate`, `transients`) and the
//!   shared-cache `sweep` demonstration;
//! * [`perf`] — the `repro perf record/compare/calibrate` ledger:
//!   machine-readable perf reports, the noise-aware regression gate,
//!   and cost-model calibration against measured unit latencies.
//!
//! # Quick start
//!
//! Evaluate a couple of design points on a small corpus:
//!
//! ```
//! use widening::prelude::*;
//!
//! let ctx = Context::quick(20);
//! // Peak ILP of 2w2 relative to 1w1 (Figure 2 accounting):
//! let base = ctx.eval.peak(1, 1, CycleModel::Cycles4).total_cycles;
//! let wide = ctx.eval.peak(2, 2, CycleModel::Cycles4).total_cycles;
//! assert!(base / wide > 1.0);
//!
//! // Full cost model of the paper's winning configuration:
//! let cost = CostModel::paper();
//! let cfg: Configuration = "4w2(128:2)".parse()?;
//! assert!(cost.relative_cycle_time(&cfg) > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
mod evaluate;
pub mod experiments;
pub mod perf;
pub mod report;
mod simulate;

pub use distributed::{sweep_distributed, DistributedOptions, DistributedSweep};
pub use evaluate::{CorpusEval, EvalOptions, Evaluator, LoopEval};
pub use simulate::{simulate_corpus, SimCorpusEval, SimLoopEval};

// Re-export the component crates under short names.
pub use widening_cost as cost;
pub use widening_distrib as distrib;
pub use widening_ir as ir;
pub use widening_lower as lower;
pub use widening_machine as machine;
pub use widening_pipeline as pipeline;
pub use widening_regalloc as regalloc;
pub use widening_sched as sched;
pub use widening_sim as sim;
pub use widening_transform as transform;
pub use widening_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::evaluate::{CorpusEval, EvalOptions, Evaluator, LoopEval};
    pub use crate::experiments::Context;
    pub use crate::report::Report;
    pub use widening_cost::{CostModel, Technology};
    pub use widening_ir::{Ddg, DdgBuilder, Loop, OpKind};
    pub use widening_machine::{Configuration, CycleModel};
    pub use widening_pipeline::{
        compile_ddg, CompileOptions, CompiledLoop, FailureCause, Pipeline, PipelineError,
        PointSpec, StageCounts, StoreConfig,
    };
    pub use widening_regalloc::{schedule_with_registers, SpillOptions};
    pub use widening_sched::{MiiBounds, ModuloScheduler, Schedule, Strategy};
    pub use widening_sim::{simulate_loop, Backend, SimReport};
    pub use widening_transform::widen;
    pub use widening_workload::{corpus, kernels};
}
