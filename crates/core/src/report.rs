//! Plain-text report rendering: aligned ASCII tables and CSV.

use std::fmt;

/// A rendered experiment result: a titled table plus free-form notes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Human-readable experiment title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table body; each row has `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Commentary printed after the table (observations, paper-vs-model
    /// comparisons).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Sets the column headers.
    #[must_use]
    pub fn with_columns<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as CSV (no notes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        if !self.columns.is_empty() {
            let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
            for row in &self.rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
                let mut first = true;
                for (w, cell) in widths.iter().zip(cells) {
                    if !first {
                        write!(f, "  ")?;
                    }
                    first = false;
                    write!(f, "{cell:>w$}", w = w)?;
                }
                writeln!(f)
            };
            line(f, &self.columns)?;
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            line(f, &rule)?;
            for row in &self.rows {
                line(f, row)?;
            }
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (the paper's table precision).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an area in millions of λ², the paper's unit.
#[must_use]
pub fn mega(x: f64) -> String {
    format!("{:.0}", x / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t").with_columns(["a", "bb"]);
        r.push_row(["1", "2"]);
        r.push_row(["333", "4"]);
        r.push_note("hello");
        r
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("== t =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows, note.
        assert_eq!(lines.len(), 6);
        assert!(lines[2].contains("---"));
        assert!(lines[5].starts_with("note: hello"));
        // Right-aligned: the `1` lines up under `a`'s column width 3.
        assert_eq!(lines[3], "  1   2");
    }

    #[test]
    fn csv_roundtrip_and_escaping() {
        let mut r = Report::new("t").with_columns(["x", "y"]);
        r.push_row(["a,b", "q\"q"]);
        let csv = r.to_csv();
        assert_eq!(csv, "x,y\n\"a,b\",\"q\"\"q\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut r = Report::new("t").with_columns(["a"]);
        r.push_row(["1", "2"]);
    }

    #[test]
    fn number_formatters() {
        assert_eq!(f2(1.005), "1.00"); // banker-adjacent rounding is fine
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(mega(598.0e6), "598");
    }
}
