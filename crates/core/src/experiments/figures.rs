//! Reproductions of Figures 2, 3, 4, 6 and 7.

use widening_cost::{AreaModel, CostModel, Technology, TimingModel, IMPLEMENTABLE_BUDGET};
use widening_machine::{Configuration, CycleModel, InstructionEncoding};

use super::Context;
use crate::report::{f2, f3, mega, Report};

/// The `XwY` pairs at a given factor, replication-heavy first.
fn pairs_at_factor(factor: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut x = factor;
    while x >= 1 {
        out.push((x, factor / x));
        x /= 2;
    }
    out
}

/// Figure 2: peak speed-up (perfect scheduling, infinite registers) for
/// every `XwY` combination at factors ×1 … ×128, relative to `1w1`.
#[must_use]
pub fn fig2(ctx: &Context) -> Report {
    let mut r = Report::new("Figure 2 — peak speed-up (infinite registers)")
        .with_columns(["factor", "config", "speed-up"]);
    // One point list drives both the batch compile and the rows: every
    // design point goes through the shared stage caches (each loop is
    // widened once per distinct Y across the whole figure) and the rows
    // consume the sweep's input-ordered aggregates.
    let mut points: Vec<(u32, (u32, u32))> = vec![(1, (1, 1))];
    let mut factor = 2u32;
    while factor <= 128 {
        points.extend(pairs_at_factor(factor).into_iter().map(|p| (factor, p)));
        factor *= 2;
    }
    let pairs: Vec<(u32, u32)> = points.iter().map(|&(_, p)| p).collect();
    let results = ctx.eval.sweep_peak(&pairs, CycleModel::Cycles4);
    let base = results[0].total_cycles;
    let mut saturation: Vec<(String, f64)> = Vec::new();
    for (&(factor, (x, y)), e) in points.iter().zip(&results) {
        let speedup = base / e.total_cycles;
        r.push_row([format!("x{factor}"), format!("{x}w{y}"), f2(speedup)]);
        if factor == 128 {
            saturation.push((format!("{x}w{y}"), speedup));
        }
    }
    if let Some((_, s)) = saturation.first() {
        r.push_note(format!(
            "replication endpoint 128w1: {:.2}x (paper: ~11x)",
            s
        ));
    }
    if let Some((_, s)) = saturation.last() {
        r.push_note(format!(
            "widening endpoint 1w128: {:.2}x (paper: ~4.5-5x)",
            s
        ));
    }
    r
}

/// The nine configurations of Figure 3, paper order.
pub const FIG3_CONFIGS: [(u32, u32); 9] = [
    (2, 1),
    (1, 2),
    (4, 1),
    (2, 2),
    (1, 4),
    (8, 1),
    (4, 2),
    (2, 4),
    (1, 8),
];

/// Figure 3: speed-up with spill code against 32/64/128/256-register
/// files, baseline `1w1` with a 256-RF, 4-cycle latency model.
#[must_use]
pub fn fig3(ctx: &Context) -> Report {
    let mut r = Report::new("Figure 3 — speed-up with spill code (baseline 1w1, 256-RF)")
        .with_columns(["config", "RF=32", "RF=64", "RF=128", "RF=256"]);
    // All 36 design points (plus the baseline) as one shared-cache
    // batch — each loop is widened once per distinct Y for the whole
    // figure — and the rows consume the sweep's input-ordered
    // aggregates, so the point list exists exactly once.
    const ZS: [u32; 4] = [32, 64, 128, 256];
    let mut cfgs = vec![Configuration::monolithic(1, 1, 256).expect("valid")];
    for (x, y) in FIG3_CONFIGS {
        for z in ZS {
            cfgs.push(Configuration::monolithic(x, y, z).expect("valid"));
        }
    }
    let results = ctx
        .eval
        .sweep(&cfgs, CycleModel::Cycles4, &Default::default());
    let base = results[0].total_cycles;
    let mut per_point = results[1..].iter();
    for (x, y) in FIG3_CONFIGS {
        let mut row = vec![format!("{x}w{y}")];
        for _ in ZS {
            let e = per_point.next().expect("one aggregate per design point");
            if e.is_complete() {
                row.push(f2(base / e.total_cycles));
            } else {
                // The paper omits the bar entirely (8w1 at 32-RF).
                row.push(format!("- ({} fail)", e.failed));
            }
        }
        r.push_row(row);
    }
    r.push_note("paper: 4w2 = 2.25 / 3.28 / 4.39 / 4.76; 8w1(32-RF) unschedulable");
    r.push_note("wide RF capacity lets 4w2 beat 8w1 at 64- and 128-RF");
    r
}

/// Figure 4: area (RF + FPUs) of every configuration up to ×16, with the
/// 10–20% die bands of each technology generation.
#[must_use]
pub fn fig4() -> Report {
    let area = AreaModel::new();
    let mut r = Report::new("Figure 4 — area cost (RF + FPUs), millions of lambda^2")
        .with_columns(["config", "RF=32", "RF=64", "RF=128", "RF=256"]);
    let mut factor = 1u32;
    while factor <= 16 {
        for (x, y) in pairs_at_factor(factor) {
            let mut row = vec![format!("{x}w{y}")];
            for z in [32u32, 64, 128, 256] {
                let cfg = Configuration::monolithic(x, y, z).expect("valid");
                row.push(mega(area.total_area(&cfg)));
            }
            r.push_row(row);
        }
        factor *= 2;
    }
    for t in &Technology::ALL {
        r.push_note(format!(
            "{t}: 10-20% band = {:.0}-{:.0} x10^6 lambda^2",
            0.10 * t.lambda2_per_chip() / 1e6,
            IMPLEMENTABLE_BUDGET * t.lambda2_per_chip() / 1e6
        ));
    }
    r
}

/// Figure 6: RF partitioning of `8w1` (64-RF) — area up, access time
/// down, both relative to the monolithic file.
#[must_use]
pub fn fig6() -> Report {
    let area = AreaModel::new();
    let timing = TimingModel::calibrated();
    let mut r = Report::new("Figure 6 — 8w1(64-RF) with 1, 2, 4, 8 RF partitions").with_columns([
        "partitions",
        "area (rel)",
        "access time (rel)",
    ]);
    let mono = Configuration::new(8, 1, 64, 1).expect("valid");
    let a0 = area.rf_area(&mono);
    let t0 = timing.relative_access_time(&mono);
    for n in [1u32, 2, 4, 8] {
        let cfg = Configuration::new(8, 1, 64, n).expect("valid");
        r.push_row([
            n.to_string(),
            f3(area.rf_area(&cfg) / a0),
            f3(timing.relative_access_time(&cfg) / t0),
        ]);
    }
    r.push_note("paper: area grows (to ~2x), access time falls (to ~0.55x) at 8 blocks");
    r
}

/// Figure 7: relative code size of equal-peak configurations — code
/// bits needed to encode **one original iteration** (`II · word bits /
/// Y`), each group normalised to its pure-replication member. A wide
/// instruction word commands `Y` iterations' worth of work, which is
/// exactly the paper's code-size advantage of widening.
#[must_use]
pub fn fig7(ctx: &Context) -> Report {
    let enc = InstructionEncoding::new();
    let mut r = Report::new("Figure 7 — relative code size at equal peak performance")
        .with_columns(["factor", "config", "words", "word bits", "rel. code size"]);
    // One point list feeds the batch and the rows (input-ordered).
    let points: Vec<(u32, Configuration)> = [2u32, 4, 8]
        .iter()
        .flat_map(|&f| {
            pairs_at_factor(f)
                .into_iter()
                .map(move |(x, y)| (f, (x, y)))
        })
        .map(|(f, (x, y))| (f, Configuration::monolithic(x, y, 256).expect("valid")))
        .collect();
    let cfgs: Vec<Configuration> = points.iter().map(|&(_, cfg)| cfg).collect();
    let results = ctx
        .eval
        .sweep(&cfgs, CycleModel::Cycles4, &Default::default());
    let mut per_point = points.iter().zip(&results).peekable();
    for factor in [2u32, 4, 8] {
        let mut baseline_bits: Option<f64> = None;
        while let Some(&(&(f, cfg), e)) = per_point.peek() {
            if f != factor {
                break;
            }
            per_point.next();
            let (x, y) = (cfg.replication(), cfg.widening());
            let bits = e.total_static_words * enc.word_bits(&cfg) as f64 / f64::from(y);
            let base = *baseline_bits.get_or_insert(bits);
            r.push_row([
                format!("x{factor}"),
                format!("{x}w{y}"),
                format!("{:.0}", e.total_static_words),
                enc.word_bits(&cfg).to_string(),
                f3(bits / base),
            ]);
        }
    }
    r.push_note("paper bars: 1.0 / 0.5 / 0.25 / 0.125 per halving of replication");
    r.push_note("measured ratios sit slightly above the ideal because widening is less versatile (needs more kernel instructions), as §4.3 acknowledges");
    r
}

/// Shared helper for Figures 8/9: speed-up of `cfg` relative to the
/// `1w1(32:1)` anchor, accounting spill, latency adaptation and cycle
/// time; `None` if any loop fails to schedule.
pub(super) fn cost_aware_speedup(
    ctx: &Context,
    cost: &CostModel,
    cfg: &Configuration,
) -> Option<f64> {
    let base = ctx.eval.baseline_32().total_cycles; // Tc = 1.0 by definition
    let tc = cost.relative_cycle_time(cfg);
    let model = CycleModel::for_relative_cycle_time(tc);
    let e = ctx.eval.scheduled(cfg, model, &Default::default());
    e.is_complete().then(|| base / (e.total_cycles * tc))
}

/// Batch companion to [`cost_aware_speedup`]: compiles the `1w1(32:1)`
/// anchor and every design point (each under its own adapted cycle
/// model) as one shared-cache sweep, so the per-config reads that
/// follow are pure cache hits.
pub(super) fn prewarm_cost_aware(ctx: &Context, cost: &CostModel, cfgs: &[Configuration]) {
    let mut points: Vec<(Configuration, CycleModel)> = vec![(
        Configuration::monolithic(1, 1, 32).expect("valid"),
        CycleModel::Cycles4,
    )];
    points.extend(cfgs.iter().map(|cfg| (*cfg, cost.cycle_model(cfg))));
    let _ = ctx.eval.sweep_points(&points, &Default::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::quick(30)
    }

    #[test]
    fn fig2_replication_dominates_widening() {
        let r = fig2(&ctx());
        let lookup = |cfg: &str| -> f64 {
            r.rows
                .iter()
                .find(|row| row[1] == cfg)
                .unwrap_or_else(|| panic!("{cfg} missing"))[2]
                .parse()
                .unwrap()
        };
        assert_eq!(lookup("1w1"), 1.0);
        // Monotone groups: more hardware never slower (peak mode).
        assert!(lookup("2w1") >= lookup("1w2") - 1e-9);
        assert!(lookup("8w1") >= lookup("1w8") - 1e-9);
        assert!(lookup("128w1") >= lookup("1w128") - 1e-9);
        // Widening saturates: 1w128 barely above 1w32.
        assert!(lookup("1w128") < lookup("1w32") * 1.35);
    }

    #[test]
    fn fig3_has_nine_rows_and_rf_monotonicity() {
        let r = fig3(&ctx());
        assert_eq!(r.rows.len(), 9);
        for row in &r.rows {
            let vals: Vec<Option<f64>> = row[1..].iter().map(|c| c.parse().ok()).collect();
            // Where present, more registers never hurt.
            let present: Vec<f64> = vals.iter().flatten().copied().collect();
            for pair in present.windows(2) {
                assert!(
                    pair[1] >= pair[0] - 0.02,
                    "{row:?}: speed-up should grow with RF"
                );
            }
        }
    }

    #[test]
    fn fig4_orders_families_by_replication() {
        let r = fig4();
        let area = |cfg: &str, col: usize| -> f64 {
            r.rows.iter().find(|row| row[0] == cfg).unwrap()[col]
                .parse()
                .unwrap()
        };
        for col in 1..=4 {
            assert!(area("8w1", col) > area("4w2", col));
            assert!(area("4w2", col) > area("2w4", col));
            assert!(area("2w4", col) > area("1w8", col));
        }
    }

    #[test]
    fn fig6_shape() {
        let r = fig6();
        assert_eq!(r.rows.len(), 4);
        let t8: f64 = r.rows[3][2].parse().unwrap();
        let a8: f64 = r.rows[3][1].parse().unwrap();
        assert!(t8 < 0.8, "access time should fall: {t8}");
        assert!(a8 > 1.0, "area should rise: {a8}");
    }

    #[test]
    fn fig7_widening_shrinks_code() {
        let r = fig7(&ctx());
        for factor in ["x2", "x4", "x8"] {
            let group: Vec<f64> = r
                .rows
                .iter()
                .filter(|row| row[0] == factor)
                .map(|row| row[4].parse().unwrap())
                .collect();
            assert!(group.len() >= 2);
            assert_eq!(group[0], 1.0);
            // Per-iteration code shrinks monotonically with widening and
            // the full-width member approaches the paper's 1/Y ideal.
            for pair in group.windows(2) {
                assert!(pair[1] < pair[0], "{factor}: {group:?}");
            }
            assert!(group.last().unwrap() < &0.75, "{factor}: {group:?}");
        }
    }
}
