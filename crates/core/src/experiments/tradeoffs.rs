//! Figures 8 and 9: performance/cost trade-offs under technology limits.

use widening_cost::{CostModel, Technology};
use widening_machine::Configuration;

use super::figures::{cost_aware_speedup, prewarm_cost_aware};
use super::Context;
use crate::report::{f2, mega, Report};

/// Builds one Figure-8 panel from a list of configurations.
fn fig8_panel(ctx: &Context, title: &str, configs: &[&str], paper_note: &str) -> Report {
    let cost = CostModel::paper();
    let mut r = Report::new(title).with_columns([
        "config",
        "speed-up",
        "area (x10^6 l^2)",
        "cycle time",
        "latency model",
    ]);
    let parsed: Vec<Configuration> = configs
        .iter()
        .map(|s| s.parse().expect("valid config literal"))
        .collect();
    prewarm_cost_aware(ctx, &cost, &parsed);
    for (s, &cfg) in configs.iter().zip(&parsed) {
        let p = cost.design_point(&cfg);
        match cost_aware_speedup(ctx, &cost, &cfg) {
            Some(speedup) => r.push_row([
                s.to_string(),
                f2(speedup),
                mega(p.area),
                f2(p.relative_cycle_time),
                p.cycle_model.to_string(),
            ]),
            None => r.push_row([
                s.to_string(),
                "-".into(),
                mega(p.area),
                f2(p.relative_cycle_time),
                p.cycle_model.to_string(),
            ]),
        }
    }
    r.push_note(paper_note);
    r
}

/// Figure 8a: the effect of register-file size on `1w1`.
#[must_use]
pub fn fig8a(ctx: &Context) -> Report {
    fig8_panel(
        ctx,
        "Figure 8a — 1w1 vs register-file size",
        &["1w1(32:1)", "1w1(64:1)", "1w1(128:1)", "1w1(256:1)"],
        "paper: 64-RF is the sweet spot; larger files lose on cycle time",
    )
}

/// Figure 8b: pure replication at a 128-RF, best partitioning.
#[must_use]
pub fn fig8b(ctx: &Context) -> Report {
    fig8_panel(
        ctx,
        "Figure 8b — pure replication (128-RF, partitioned)",
        &["1w1(128:1)", "2w1(128:2)", "4w1(128:4)", "8w1(128:8)"],
        "paper: small replication helps; 8w1 loses to its own cycle time",
    )
}

/// Figure 8c: pure widening at a 128-RF.
#[must_use]
pub fn fig8c(ctx: &Context) -> Report {
    fig8_panel(
        ctx,
        "Figure 8c — pure widening (128-RF)",
        &["1w1(128:1)", "1w2(128:1)", "1w4(128:1)", "1w8(128:1)"],
        "paper: widening is cheap but saturates (non-compactable operations)",
    )
}

/// Figure 8d: the equal-peak ×8 family.
#[must_use]
pub fn fig8d(ctx: &Context) -> Report {
    fig8_panel(
        ctx,
        "Figure 8d — four ways to build peak x8 (128-RF)",
        &["8w1(128:8)", "4w2(128:4)", "2w4(128:2)", "1w8(128:1)"],
        "paper: the mixed designs 4w2/2w4 win the performance/area frontier",
    )
}

/// Figure 9: for each technology generation, the five implementable
/// configurations with the best cost-aware speed-up.
#[must_use]
pub fn fig9(ctx: &Context) -> Report {
    let cost = CostModel::paper();
    let mut r = Report::new("Figure 9 — top five configurations per technology").with_columns([
        "technology",
        "rank",
        "config",
        "speed-up",
        "die %",
    ]);
    // One shared-cache batch over every implementable configuration of
    // every generation (the lists overlap heavily across technologies).
    let all_cfgs: Vec<Configuration> = Technology::ALL
        .iter()
        .flat_map(|t| cost.implementable_configurations(t, 16))
        .map(|p| p.config)
        .collect();
    prewarm_cost_aware(ctx, &cost, &all_cfgs);
    for tech in &Technology::ALL {
        let mut scored: Vec<(f64, Configuration)> = Vec::new();
        for p in cost.implementable_configurations(tech, 16) {
            if let Some(s) = cost_aware_speedup(ctx, &cost, &p.config) {
                scored.push((s, p.config));
            }
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite speedups"));
        for (rank, (s, cfg)) in scored.iter().take(5).enumerate() {
            r.push_row([
                tech.to_string(),
                (rank + 1).to_string(),
                cfg.to_string(),
                f2(*s),
                format!("{:.1}", cost.die_fraction(cfg, tech) * 100.0),
            ]);
        }
    }
    r.push_note("paper: winners combine small replication with small widening (e.g. 4w2/2w4)");
    r.push_note("most-aggressive implementable configs never make the top five");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::quick(25)
    }

    #[test]
    fn fig8a_prefers_medium_files() {
        let r = fig8a(&ctx());
        let s: Vec<f64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        assert_eq!(s.len(), 4);
        // 256-RF pays 1.34x cycle time for no cycle win: strictly worse
        // than 64-RF.
        assert!(s[1] > s[3], "64-RF {} should beat 256-RF {}", s[1], s[3]);
        // Baseline anchor: 32-RF = 1.0 by construction.
        assert!((s[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig8_panels_have_four_rows() {
        for f in [fig8b, fig8c, fig8d] {
            let r = f(&ctx());
            assert_eq!(r.rows.len(), 4);
        }
    }

    #[test]
    fn fig9_ranks_five_per_technology() {
        let r = fig9(&ctx());
        for tech in &Technology::ALL {
            let rows: Vec<_> = r
                .rows
                .iter()
                .filter(|row| row[0] == tech.to_string())
                .collect();
            assert_eq!(rows.len(), 5, "{tech}");
            // Ranks are sorted by speed-up descending.
            let speeds: Vec<f64> = rows.iter().map(|row| row[3].parse().unwrap()).collect();
            for pair in speeds.windows(2) {
                assert!(pair[0] >= pair[1]);
            }
            // Die budget respected.
            for row in rows {
                let frac: f64 = row[4].parse().unwrap();
                assert!(frac <= 20.0 + 1e-6, "{row:?}");
            }
        }
    }
}
