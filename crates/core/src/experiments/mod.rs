//! One runnable experiment per table and figure of the paper.
//!
//! Every experiment takes a [`Context`] (corpus + cost models) and
//! returns a [`crate::report::Report`] whose rows regenerate the
//! corresponding paper artefact. See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured results.

mod ablation;
mod figures;
mod sweeps;
mod tables;
mod tradeoffs;
mod transients;

pub use ablation::{ablate_latency, ablate_sched, ablate_spill};
pub use figures::{fig2, fig3, fig4, fig6, fig7};
pub(crate) use sweeps::sweep_grid_specs;
pub use sweeps::{shard_table, stage_counter_table, sweep, sweep_distributed_reports};
pub use tables::{table1, table2, table3, table4, table5, table6};
pub use tradeoffs::{fig8a, fig8b, fig8c, fig8d, fig9};
pub use transients::{simulate, transients};

use crate::evaluate::Evaluator;
use crate::report::Report;
use widening_sim::Backend;
use widening_workload::corpus::{self, CorpusSpec};

/// Shared experiment state: the corpus evaluator (which owns the cost
/// models and the result cache) and the execution backend the
/// simulation experiments run on.
#[derive(Debug, Clone)]
pub struct Context {
    /// The corpus evaluator.
    pub eval: Evaluator,
    /// Execution backend for the simulation experiments (`repro
    /// --exec`): the cycle-level interpreter (default), the lowered
    /// bytecode, or both in lock-step.
    pub backend: Backend,
}

impl Context {
    /// The paper-scale context: the full 1180-loop surrogate corpus.
    #[must_use]
    pub fn paper() -> Self {
        Context::over(Evaluator::new(corpus::perfect_club_surrogate()))
    }

    /// A reduced context for tests, benches and `repro --quick`: same
    /// corpus mix, fewer loops.
    #[must_use]
    pub fn quick(loops: usize) -> Self {
        Context::over(Evaluator::new(corpus::generate(&CorpusSpec::small(
            loops, 1998,
        ))))
    }

    /// A context over an existing evaluator, on the default
    /// (interpreter) backend.
    #[must_use]
    pub fn over(eval: Evaluator) -> Self {
        Context {
            eval,
            backend: Backend::default(),
        }
    }

    /// Selects the execution backend for the simulation experiments.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// All experiment names, in paper order.
pub const ALL: [&str; 20] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d",
    "fig9",
    "ablate",
    "simulate",
    "transients",
    "sweep",
];

/// Runs the experiment with the given name; `None` for an unknown name.
/// `"ablate"` runs all three ablation studies and concatenates them.
#[must_use]
pub fn run(name: &str, ctx: &Context) -> Option<Vec<Report>> {
    let one = |r: Report| Some(vec![r]);
    match name {
        "table1" => one(table1()),
        "table2" => one(table2()),
        "table3" => one(table3()),
        "table4" => one(table4()),
        "table5" => one(table5()),
        "table6" => one(table6()),
        "fig2" => one(fig2(ctx)),
        "fig3" => one(fig3(ctx)),
        "fig4" => one(fig4()),
        "fig6" => one(fig6()),
        "fig7" => one(fig7(ctx)),
        "fig8a" => one(fig8a(ctx)),
        "fig8b" => one(fig8b(ctx)),
        "fig8c" => one(fig8c(ctx)),
        "fig8d" => one(fig8d(ctx)),
        "fig9" => one(fig9(ctx)),
        "ablate" => Some(vec![
            ablate_sched(ctx),
            ablate_spill(ctx),
            ablate_latency(ctx),
        ]),
        "simulate" => one(simulate(ctx)),
        "transients" => one(transients(ctx)),
        "sweep" => Some(vec![
            sweep(ctx),
            stage_counter_table(&ctx.eval.pipeline().stage_counts()),
        ]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_names() {
        let ctx = Context::quick(6);
        for name in ALL {
            // Static tables must run; dynamic ones are exercised in
            // their own modules with quick contexts. Here we just check
            // the registry resolves every name for the cheap subset.
            if name.starts_with("table") || name == "fig4" || name == "fig6" {
                assert!(run(name, &ctx).is_some(), "{name} missing");
            }
        }
        assert!(run("nonsense", &ctx).is_none());
    }
}
