//! The multi-configuration sweep demonstration (`repro sweep`): the
//! issue's canonical `1w1 / 2w2 / 4w2` design points over two
//! register-file sizes, evaluated as one batch of `(loop × config)`
//! work units with shared stage caches — and the stage counters that
//! prove the reuse. `repro sweep --shards N` runs the same grid
//! through the distributed engine (N local worker processes over the
//! shared cache directory) and reports per-shard progress alongside
//! the fleet-summed stage counters; its aggregates are bitwise-equal
//! to the in-process batch.

use std::sync::Arc;

use widening_distrib::{Launcher, SweepRun};
use widening_machine::{Configuration, CycleModel};
use widening_pipeline::{PointSpec, StageCounts};

use super::Context;
use crate::distributed::{sweep_distributed, worker_command, DistributedOptions};
use crate::evaluate::CorpusEval;
use crate::report::{f2, Report};

/// The sweep's design points, `XwY` by register-file size.
const SWEEP_CONFIGS: [&str; 6] = [
    "1w1(64:1)",
    "2w2(64:1)",
    "4w2(64:1)",
    "1w1(128:1)",
    "2w2(128:1)",
    "4w2(128:1)",
];

/// The sweep grid as full design points (what the distributed path
/// ships to workers in its manifest).
pub(crate) fn sweep_grid_specs() -> Vec<PointSpec> {
    SWEEP_CONFIGS
        .iter()
        .map(|s| {
            PointSpec::scheduled(
                &s.parse().expect("static configuration"),
                CycleModel::Cycles4,
                crate::EvalOptions::default(),
            )
        })
        .collect()
}

/// The sweep result table: one row per grid configuration. Shared by
/// the in-process and distributed paths, so bitwise-equal aggregates
/// render byte-identical rows.
fn sweep_table(title: &str, results: &[Arc<CorpusEval>]) -> Report {
    let mut r = Report::new(title).with_columns([
        "config",
        "speed-up vs 1w1(64)",
        "at-MII rate",
        "failed",
        "spill ops",
    ]);
    let base = results[0].total_cycles;
    for (spec, e) in SWEEP_CONFIGS.iter().zip(results) {
        r.push_row([
            (*spec).to_string(),
            if e.is_complete() {
                f2(base / e.total_cycles)
            } else {
                format!("- ({} fail)", e.failed)
            },
            f2(e.mii_rate()),
            e.failed.to_string(),
            e.spill_ops.to_string(),
        ]);
    }
    r
}

/// Batch-evaluates the sweep grid and reports speed-ups plus the
/// pipeline's stage-execution counters.
///
/// # Panics
///
/// Panics if the batch fails to share widening work across design
/// points with equal `Y` — the sweep engine's core contract.
#[must_use]
pub fn sweep(ctx: &Context) -> Report {
    let cfgs: Vec<Configuration> = SWEEP_CONFIGS
        .iter()
        .map(|s| s.parse().expect("static configuration"))
        .collect();
    let n = ctx.eval.loops().len() as u64;
    let before = ctx.eval.pipeline().stage_counts();
    let results = ctx
        .eval
        .sweep(&cfgs, CycleModel::Cycles4, &Default::default());
    let after = ctx.eval.pipeline().stage_counts();

    let mut r = sweep_table(
        "Sweep — shared-cache batch over 1w1/2w2/4w2 × {64, 128}-RF",
        &results,
    );

    let widen_delta = after.widen_runs - before.widen_runs;
    let sched_delta = after.schedule_runs - before.schedule_runs;
    // Six design points, two distinct widths: stage sharing must hold.
    assert!(
        widen_delta <= 2 * n,
        "sweep re-widened loops: {widen_delta} runs for {n} loops x 2 widths"
    );
    r.push_note(format!(
        "stage executions this sweep: widen {widen_delta} (≤ {} = loops × distinct Y), \
         schedule {sched_delta} of {} requested units",
        2 * n,
        6 * n
    ));
    r.push_note(format!(
        "cumulative stage-cache hits: {} (runs {} / requests {})",
        after.hits(),
        after.live_runs(),
        after.widen_requests
            + after.mii_requests
            + after.base_schedule_requests
            + after.schedule_requests
    ));
    r
}

/// Runs the sweep grid through the distributed engine: `workers` local
/// worker processes (the current executable's `worker` subcommand) over
/// the evaluator's shared cache directory, merged bitwise-equal to the
/// in-process batch. `max_workers` (≥ `workers`) raises the autoscale
/// ceiling — the coordinator grows the fleet while the queue's
/// remaining-mass estimate warrants it; `chaos_die_after_units` makes
/// the first worker abandon its shard mid-flight (the CI fault-
/// injection knob); `trace_dir` makes every spawned worker drop its
/// binary span trace there for the merged fleet timeline; `cost_model`
/// replaces the analytic `sweep_priority` mass with measured unit
/// latencies for shard ordering and autoscale estimates (aggregates
/// stay bitwise-equal either way). Returns the reports (sweep table,
/// per-shard progress, fleet-summed stage counters) plus the fleet's
/// summed counters so the caller can fold them into its own `cache:`
/// summary.
///
/// # Errors
///
/// A human-readable message when the evaluator has no cache directory,
/// the worker executable cannot be resolved, or the fleet fails.
pub fn sweep_distributed_reports(
    ctx: &Context,
    workers: usize,
    max_workers: Option<usize>,
    chaos_die_after_units: Option<u64>,
    trace_dir: Option<std::path::PathBuf>,
    cost_model: Option<Arc<widening_cost::CalibratedModel>>,
) -> Result<(Vec<Report>, StageCounts), String> {
    let specs = sweep_grid_specs();
    let mut opts = DistributedOptions::new(workers);
    opts.max_workers = max_workers.unwrap_or(opts.workers).max(opts.workers);
    opts.chaos_die_after_units = chaos_die_after_units;
    opts.trace_dir = trace_dir;
    opts.cost_model = cost_model;
    // Split the local thread budget across the baseline fleet.
    opts.worker_threads = (ctx.eval.threads() / opts.workers).max(1);
    let exe = std::env::current_exe().map_err(|e| format!("cannot resolve worker binary: {e}"))?;
    let launch = worker_command(exe);
    let result = sweep_distributed(&ctx.eval, &specs, &opts, &Launcher::Spawn(&launch))
        .map_err(|e| e.to_string())?;

    let mut table = sweep_table(
        "Sweep — distributed shards over 1w1/2w2/4w2 × {64, 128}-RF",
        &result.aggregates,
    );
    table.push_note(format!(
        "merged from {} workers (ceiling {}) × {} shard(s); bitwise-equal to the in-process batch",
        opts.workers,
        opts.max_workers,
        result.run.shard_reports.len(),
    ));
    if result.fallback_units > 0 {
        table.push_note(format!(
            "{} unit(s) merged by local recompute (result records missing)",
            result.fallback_units
        ));
    }
    let shards = shard_table(&result.run);
    let total = result
        .run
        .worker_counts
        .plus(&ctx.eval.pipeline().stage_counts());
    let mut counters = stage_counter_table(&total);
    counters.push_note(format!(
        "fleet-summed: {} worker shard report(s) + the coordinator's own pipeline",
        result.run.shard_reports.iter().flatten().count()
    ));
    Ok((vec![table, shards, counters], result.run.worker_counts))
}

/// Per-shard progress of a distributed sweep: the counters each worker
/// reported through its shard completion marker, folded into the same
/// shape as the stage-counter table.
#[must_use]
pub fn shard_table(run: &SweepRun) -> Report {
    let mut r = Report::new("Distributed sweep — per-shard progress").with_columns([
        "shard",
        "units",
        "result hits",
        "stolen",
        "live runs",
        "disk hits",
        "schedule runs",
    ]);
    for (i, report) in run.shard_reports.iter().enumerate() {
        match report {
            Some(s) => r.push_row([
                i.to_string(),
                s.units.to_string(),
                s.result_hits.to_string(),
                s.stolen.to_string(),
                s.counts.live_runs().to_string(),
                s.counts.disk_hits().to_string(),
                s.counts.schedule_runs.to_string(),
            ]),
            None => r.push_row([
                i.to_string(),
                "?".into(),
                "?".into(),
                "?".into(),
                "?".into(),
                "?".into(),
                "?".into(),
            ]),
        }
    }
    r.push_note(format!(
        "units {} · result hits {} · stolen {} · lease requeues {} · worker respawns {} · \
         autoscale spawns {} · early retirements {}",
        run.units,
        run.result_hits,
        run.stolen_units,
        run.requeues,
        run.respawns,
        run.scale_ups,
        run.scale_downs
    ));
    r
}

/// The pipeline's cumulative stage counters as a table: one row per
/// stage, with the two-tier store's observability columns (disk hits,
/// evictions, resident bytes). Printed by `repro sweep` after the sweep
/// table so cache behaviour — including a warm start's all-disk replay —
/// is visible per run.
#[must_use]
pub fn stage_counter_table(c: &StageCounts) -> Report {
    let mut r = Report::new("Stage stores — cumulative two-tier counters").with_columns([
        "stage",
        "runs",
        "requests",
        "disk hits",
        "evictions",
        "resident bytes",
    ]);
    let row = |name: &str, runs: u64, requests: u64, disk: u64, evict: u64, bytes: u64| {
        [
            name.to_string(),
            runs.to_string(),
            requests.to_string(),
            disk.to_string(),
            evict.to_string(),
            bytes.to_string(),
        ]
    };
    r.push_row(row(
        "widen",
        c.widen_runs,
        c.widen_requests,
        c.widen_disk_hits,
        0,
        0,
    ));
    r.push_row(row(
        "mii",
        c.mii_runs,
        c.mii_requests,
        c.mii_disk_hits,
        0,
        0,
    ));
    r.push_row(row(
        "base-schedule",
        c.base_schedule_runs,
        c.base_schedule_requests,
        c.base_schedule_disk_hits,
        0,
        0,
    ));
    r.push_row(row(
        "schedule",
        c.schedule_runs,
        c.schedule_requests,
        c.schedule_disk_hits,
        c.schedule_evictions,
        c.schedule_resident_bytes,
    ));
    r.push_row(row(
        "lower",
        c.lower_runs,
        c.lower_requests,
        c.lower_disk_hits,
        0,
        0,
    ));
    r.push_note(format!(
        "live runs {} · disk hits {} · memo+disk hits {}",
        c.live_runs(),
        c.disk_hits(),
        c.hits()
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_report_shape_and_sharing() {
        let ctx = Context::quick(10);
        let r = sweep(&ctx);
        assert_eq!(r.rows.len(), 6);
        // The 1w1(64) anchor is 1.00 by construction.
        let anchor: f64 = r.rows[0][1].parse().unwrap();
        assert!((anchor - 1.0).abs() < 1e-9);
        // More registers never hurt: 128-RF rows at least match their
        // 64-RF siblings (within rounding).
        for i in 0..3 {
            let small: f64 = r.rows[i][1].parse().unwrap_or(0.0);
            let big: f64 = r.rows[i + 3][1].parse().unwrap_or(f64::MAX);
            assert!(
                big >= small - 0.02,
                "{:?} vs {:?}",
                r.rows[i],
                r.rows[i + 3]
            );
        }
    }
}
