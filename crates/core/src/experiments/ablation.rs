//! Ablation studies for the design choices DESIGN.md calls out: the
//! scheduler ordering, the spill policy, and the latency-adaptation rule
//! of §5.2.

use widening_cost::CostModel;
use widening_machine::{Configuration, CycleModel};
use widening_pipeline::PointSpec;
use widening_regalloc::{SpillOptions, SpillPolicy};
use widening_sched::Strategy;

use super::figures::cost_aware_speedup;
use super::Context;
use crate::evaluate::EvalOptions;
use crate::report::{f2, f3, Report};

/// Scheduler ablation: HRMS-lineage ordering vs IMS vs naive ASAP, on a
/// mid-range machine — evaluated as **one** mixed-strategy batch
/// ([`crate::Evaluator::sweep_specs`]): all three strategies' work units
/// share a single dynamic worker queue, and the widening and MII stages
/// (strategy-independent) are computed once, not once per strategy.
#[must_use]
pub fn ablate_sched(ctx: &Context) -> Report {
    let mut r = Report::new("Ablation — scheduler ordering strategy (4w1, 64-RF)").with_columns([
        "strategy",
        "cycles (rel)",
        "II=MII rate",
        "spill ops",
        "failures",
    ]);
    let cfg = Configuration::monolithic(4, 1, 64).expect("valid");
    let specs: Vec<PointSpec> = Strategy::ALL
        .iter()
        .map(|&strategy| {
            let opts = EvalOptions {
                strategy,
                ..Default::default()
            };
            PointSpec::scheduled(&cfg, CycleModel::Cycles4, opts)
        })
        .collect();
    let evals = ctx.eval.sweep_specs(&specs);
    let base = evals[0].total_cycles;
    for (strat, e) in Strategy::ALL.iter().zip(&evals) {
        r.push_row([
            strat.label().to_string(),
            f3(e.total_cycles / base),
            f3(e.mii_rate()),
            e.spill_ops.to_string(),
            e.failed.to_string(),
        ]);
    }
    r.push_note("HRMS-lineage ordering is the reference (1.000)");
    r.push_note("all strategies evaluated in one mixed-opts worker-queue pass");
    r
}

/// Spill-policy ablation: the two pure policies against the adaptive
/// default on the pressure-critical Figure 3 configurations.
#[must_use]
pub fn ablate_spill(ctx: &Context) -> Report {
    let mut r = Report::new("Ablation — spill policy under register pressure").with_columns([
        "config",
        "RF",
        "spill-first",
        "increase-II",
        "adaptive",
        "spill ops",
    ]);
    let base = ctx.eval.baseline_256().total_cycles;
    let with_policy = |policy| EvalOptions {
        spill: SpillOptions {
            policy,
            ..Default::default()
        },
        ..Default::default()
    };
    const POINTS: [(u32, u32, u32); 4] = [(4, 1, 32), (4, 2, 32), (4, 2, 64), (8, 1, 64)];
    // One mixed-opts batch for all three policies × four machines: every
    // `(loop × config)` unit rides a single worker queue, and the
    // policies reuse each other's widened DDGs, MII bounds and base
    // schedules.
    let cfgs: Vec<Configuration> = POINTS
        .iter()
        .map(|&(x, y, z)| Configuration::monolithic(x, y, z).expect("valid"))
        .collect();
    const POLICIES: [SpillPolicy; 3] = [
        SpillPolicy::SpillFirst,
        SpillPolicy::IncreaseIiOnly,
        SpillPolicy::Adaptive,
    ];
    let specs: Vec<PointSpec> = POLICIES
        .iter()
        .flat_map(|&policy| {
            let opts = with_policy(policy);
            cfgs.iter()
                .map(move |cfg| PointSpec::scheduled(cfg, CycleModel::Cycles4, opts))
        })
        .collect();
    let evals = ctx.eval.sweep_specs(&specs);
    let per_policy = |i: usize| evals[i * POINTS.len()..(i + 1) * POINTS.len()].to_vec();
    let (spill, incr, adaptive) = (per_policy(0), per_policy(1), per_policy(2));
    for (i, (x, y, z)) in POINTS.into_iter().enumerate() {
        let cell = |e: &crate::evaluate::CorpusEval| {
            if e.is_complete() {
                f2(base / e.total_cycles)
            } else {
                format!("- ({} fail)", e.failed)
            }
        };
        r.push_row([
            format!("{x}w{y}"),
            z.to_string(),
            cell(&spill[i]),
            cell(&incr[i]),
            cell(&adaptive[i]),
            adaptive[i].spill_ops.to_string(),
        ]);
    }
    r.push_note("speed-up vs 1w1(256-RF)");
    r.push_note(
        "on memory-bound machines increasing the II can beat spilling (spill \
         traffic competes for the buses that set the II); the adaptive default \
         takes the better of the two per loop",
    );
    r
}

/// Latency-adaptation ablation: §5.2's cycle-model rule vs naively
/// keeping the 4-cycle model at every cycle time.
#[must_use]
pub fn ablate_latency(ctx: &Context) -> Report {
    let cost = CostModel::paper();
    let mut r = Report::new("Ablation — FPU latency adaptation (Table 6 rule vs fixed 4-cycle)")
        .with_columns([
            "config",
            "Tc",
            "adapted model",
            "speed-up adapted",
            "speed-up fixed",
        ]);
    let base = ctx.eval.baseline_32().total_cycles;
    for s in ["2w1(64:1)", "4w2(128:2)", "8w1(128:8)", "2w4(128:1)"] {
        let cfg: Configuration = s.parse().expect("valid");
        let tc = cost.relative_cycle_time(&cfg);
        let adapted = cost_aware_speedup(ctx, &cost, &cfg);
        let fixed = {
            let e = ctx
                .eval
                .scheduled(&cfg, CycleModel::Cycles4, &Default::default());
            e.is_complete().then(|| base / (e.total_cycles * tc))
        };
        let show = |v: Option<f64>| v.map_or("-".to_string(), f2);
        r.push_row([
            s.to_string(),
            f2(tc),
            cost.cycle_model(&cfg).to_string(),
            show(adapted),
            show(fixed),
        ]);
    }
    r.push_note("shorter latency models recover performance lost to slow clocks");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::quick(20)
    }

    #[test]
    fn sched_ablation_ranks_hrms_first_or_close() {
        let r = ablate_sched(&ctx());
        assert_eq!(r.rows.len(), 3);
        let hrms: f64 = r.rows[0][1].parse().unwrap();
        assert_eq!(hrms, 1.0);
        let hrms_rate: f64 = r.rows[0][2].parse().unwrap();
        let hrms_spills: u64 = r.rows[0][3].parse().unwrap();
        // HRMS achieves MII on a majority of loops. (Under register
        // pressure the adaptive spill policy deliberately schedules some
        // loops above the final graph's MII, so the rate is well below
        // the ~0.95+ seen with unconstrained registers.)
        assert!(hrms_rate > 0.5, "MII rate {hrms_rate}");
        for row in &r.rows[1..] {
            // … the baselines may trade a few percent of cycles either
            // way, but only by spilling much harder or missing MII more
            // often — HRMS must dominate on at least one quality axis
            // per baseline while staying within 7% on cycles.
            let rel: f64 = row[1].parse().unwrap();
            let rate: f64 = row[2].parse().unwrap();
            let spills: u64 = row[3].parse().unwrap();
            assert!(rel > 0.93, "{row:?}");
            assert!(
                rate <= hrms_rate + 1e-9 || spills >= hrms_spills,
                "a baseline beat HRMS on every axis: {row:?}"
            );
        }
    }

    #[test]
    fn spill_ablation_runs_all_configs() {
        let r = ablate_spill(&ctx());
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn latency_ablation_adapted_not_worse() {
        let r = ablate_latency(&ctx());
        for row in &r.rows {
            if let (Ok(a), Ok(f)) = (row[3].parse::<f64>(), row[4].parse::<f64>()) {
                assert!(
                    a >= f - 0.02,
                    "adapted latency should not lose to fixed: {row:?}"
                );
            }
        }
    }
}
