//! Reproductions of the paper's Tables 1–6.

use widening_cost::{CostModel, Technology, ACCESS_TIMES, CELLS, IMPLEMENTABLE_BUDGET};
use widening_ir::OpKind;
use widening_machine::{Configuration, CycleModel, PortCounts};

use crate::report::{f2, mega, Report};

/// Table 1: the SIA'94 roadmap, recomputed from λ and die size.
#[must_use]
pub fn table1() -> Report {
    let mut r = Report::new("Table 1 — SIA predictions (1994)").with_columns([
        "year",
        "lambda (um)",
        "size (mm^2)",
        "lambda^2/chip (x10^6)",
        "lambda^2/mm^2 (x10^6)",
    ]);
    for t in &Technology::ALL {
        r.push_row([
            t.year.to_string(),
            format!("{:.2}", t.lambda_um),
            format!("{:.0}", t.chip_mm2),
            format!("{:.0}", t.lambda2_per_chip() / 1e6),
            format!("{:.2}", t.lambda2_per_mm2() / 1e6),
        ]);
    }
    r.push_note("paper row 3: 4800 11111 25443 52000 126530 (paper truncates the last entry; the product is 126530.6)");
    r
}

/// Table 2: multiported register-cell dimensions (published vs model).
#[must_use]
pub fn table2() -> Report {
    let model = CostModel::paper();
    let cell = model.area_model().cell();
    let mut r = Report::new("Table 2 — multiported register cells").with_columns([
        "ports",
        "W x H (lambda)",
        "area (lambda^2)",
        "relative",
        "paper rel.",
    ]);
    let base = CELLS[0].area();
    let paper_rel = [1.0, 1.28, 6.4, 22.35, 71.21];
    for (c, pr) in CELLS.iter().zip(paper_rel) {
        let g = cell.geometry(PortCounts {
            reads: c.reads,
            writes: c.writes,
        });
        r.push_row([
            format!("{}R,{}W", c.reads, c.writes),
            format!("{:.0}x{:.0}", g.width, g.height),
            format!("{:.0}", g.area()),
            f2(g.area() / base),
            f2(pr),
        ]);
    }
    r.push_note("published cells are snapped exactly; see cell model docs");
    r
}

/// Table 3: RF area of the ×4 family at 64 registers.
#[must_use]
pub fn table3() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new("Table 3 — RF area for equal-peak configurations (64-RF)")
        .with_columns([
            "config",
            "ports",
            "cell area",
            "bits/reg",
            "RF area (x10^6 l^2)",
            "paper",
        ]);
    let paper = [598.0, 375.0, 215.0];
    for (s, p) in ["4w1(64:1)", "2w2(64:1)", "1w4(64:1)"].iter().zip(paper) {
        let cfg: Configuration = s.parse().expect("valid");
        let ports = cfg.ports();
        let cell = model.area_model().cell().area(ports);
        r.push_row([
            cfg.xwy_label(),
            ports.to_string(),
            format!("{cell:.0}"),
            cfg.register_bits().to_string(),
            mega(model.area_model().rf_area(&cfg)),
            format!("{p:.0}"),
        ]);
    }
    r
}

/// Table 4: relative RF access time, model vs published, with fit error.
#[must_use]
pub fn table4() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new("Table 4 — relative register-file access time")
        .with_columns(["config", "RF", "paper", "model", "err %"]);
    for a in &ACCESS_TIMES {
        let cfg = Configuration::monolithic(a.buses, a.width, a.registers).expect("valid");
        let t = model.relative_cycle_time(&cfg);
        r.push_row([
            cfg.xwy_label(),
            a.registers.to_string(),
            f2(a.relative_time),
            f2(t),
            format!("{:+.1}", (t - a.relative_time) / a.relative_time * 100.0),
        ]);
    }
    let (max, mean) = model.timing_model().fit_error();
    r.push_note(format!(
        "calibrated CACTI-lite fit: worst {:.2}%, mean {:.2}% over 60 points",
        max * 100.0,
        mean * 100.0
    ));
    r
}

/// Table 5: implementable configurations per technology generation.
#[must_use]
pub fn table5() -> Report {
    let model = CostModel::paper();
    let mut r = Report::new(format!(
        "Table 5 — implementable configurations ({}% die budget)",
        (IMPLEMENTABLE_BUDGET * 100.0) as u32
    ))
    .with_columns(["config", "RF", "partitions", "first technology", "die %"]);
    for cfg in CostModel::design_space(16) {
        let first = Technology::ALL
            .iter()
            .find(|t| model.is_implementable(&cfg, t));
        let (label, frac) = match first {
            Some(t) => (
                format!("{:.2} um ({})", t.lambda_um, t.year),
                format!("{:.1}", model.die_fraction(&cfg, t) * 100.0),
            ),
            None => ("none (beyond 0.07 um)".to_string(), "-".to_string()),
        };
        r.push_row([
            cfg.xwy_label(),
            cfg.registers().to_string(),
            cfg.partitions().to_string(),
            label,
            frac,
        ]);
    }
    r.push_note("paper anchors: 4w1 first at 0.18, 8w1 at 0.13, 16w1 at 0.07 (32-RF)");
    r
}

/// Table 6: the four cycle models.
#[must_use]
pub fn table6() -> Report {
    let mut r = Report::new("Table 6 — cycles per operation under each cycle model")
        .with_columns(["model", "store", "+,*,load", "div", "sqrt"]);
    for m in [
        CycleModel::Cycles4,
        CycleModel::Cycles3,
        CycleModel::Cycles2,
        CycleModel::Cycles1,
    ] {
        r.push_row([
            m.to_string(),
            m.latency(OpKind::Store).to_string(),
            m.latency(OpKind::FAdd).to_string(),
            m.latency(OpKind::FDiv).to_string(),
            m.latency(OpKind::FSqrt).to_string(),
        ]);
    }
    r.push_note("div and sqrt are not pipelined; all other operations are fully pipelined");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_exact() {
        let r = table1();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.rows[0][3], "4800");
        assert_eq!(r.rows[4][3], "126531"); // 204.08e6 x 620 mm^2 rounds up; the paper truncated
    }

    #[test]
    fn table2_relative_column_matches_paper() {
        let r = table2();
        for row in &r.rows {
            let got: f64 = row[3].parse().unwrap();
            let paper: f64 = row[4].parse().unwrap();
            assert!((got - paper).abs() <= 0.01 * paper.max(1.0), "{row:?}");
        }
    }

    #[test]
    fn table3_matches_paper_exactly() {
        let r = table3();
        let areas: Vec<&str> = r.rows.iter().map(|row| row[4].as_str()).collect();
        assert_eq!(areas, vec!["598", "375", "215"]);
    }

    #[test]
    fn table4_within_six_percent() {
        let r = table4();
        assert_eq!(r.rows.len(), 60);
        for row in &r.rows {
            let err: f64 = row[4].parse().unwrap();
            assert!(err.abs() < 6.0, "{row:?}");
        }
    }

    #[test]
    fn table5_has_rows_and_16w1_note() {
        let r = table5();
        assert!(r.rows.len() > 100);
        // 16w1 with 256 registers monolithic: beyond every generation
        // (paper symbol "5").
        let row = r
            .rows
            .iter()
            .find(|row| row[0] == "16w1" && row[1] == "256" && row[2] == "1")
            .unwrap();
        assert!(row[3].contains("none"), "{row:?}");
    }

    #[test]
    fn table6_matches_constants() {
        let r = table6();
        assert_eq!(r.rows[0], vec!["4-cycle model", "1", "4", "19", "27"]);
        assert_eq!(r.rows[3], vec!["1-cycle model", "1", "1", "5", "7"]);
    }
}
