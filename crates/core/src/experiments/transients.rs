//! Simulation experiments: differential validation of the pipeline and
//! the transient (fill/drain) cost the paper's steady-state accounting
//! omits.
//!
//! The paper charges a loop `II · ⌈trip/Y⌉` cycles (§3/§5): the software
//! pipeline is assumed to be in steady state for its whole run. A real
//! execution pays an extra `max_t + 1 − II` cycles to fill and drain the
//! pipeline — irrelevant for vector-length trips, dominant for short
//! ones. These experiments run the cycle-accurate simulator to measure
//! exactly that, and to certify that every simulated loop's final state
//! matches the scalar reference bitwise.

use widening_machine::{Configuration, CycleModel};

use crate::evaluate::EvalOptions;
use crate::report::{f2, Report};
use crate::simulate::simulate_corpus;

use super::Context;

/// Design points the simulation experiments sweep: the baseline, the
/// pure-widening and pure-replication ×4 points, and the paper's winner.
const SIM_CONFIGS: [&str; 4] = ["1w1(128:1)", "1w4(128:1)", "4w1(128:1)", "4w2(128:1)"];

/// Corpus-scale differential validation: simulates every loop on each
/// design point and reports validation status plus dynamic-vs-analytic
/// cycle totals (`repro --simulate`).
#[must_use]
pub fn simulate(ctx: &Context) -> Report {
    let mut r = Report::new("Simulation — differential validation (dynamic vs analytic cycles)")
        .with_columns([
            "config",
            "loops",
            "validated",
            "divergent",
            "failed",
            "dyn/analytic",
            "masked lanes",
            "fwd reads",
        ]);
    for spec in SIM_CONFIGS {
        let cfg: Configuration = spec.parse().expect("static configuration");
        let sim = simulate_corpus(
            &ctx.eval,
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
            None,
            ctx.backend,
        );
        r.push_row([
            spec.to_string(),
            sim.per_loop.len().to_string(),
            sim.validated.to_string(),
            sim.divergent.to_string(),
            sim.failed.to_string(),
            f2(sim.transient_ratio()),
            sim.masked_lanes.to_string(),
            sim.cross_block_reads.to_string(),
        ]);
        assert!(
            sim.all_validated(),
            "{spec}: {} loops diverged from the scalar reference",
            sim.divergent
        );
    }
    r.push_note(
        "every simulated loop's final memory and value checksums match the scalar \
         reference bitwise",
    );
    r.push_note(format!("execution backend: {}", ctx.backend));
    r.push_note(
        "dyn/analytic > 1: fill/drain transient the II·⌈trip/Y⌉ accounting omits; \
         failed = register pressure, as in the analytic pipeline",
    );
    r
}

/// Where the steady-state accounting diverges for short loops: the same
/// schedules simulated at forced trip counts.
#[must_use]
pub fn transients(ctx: &Context) -> Report {
    let trips: [u64; 4] = [2, 8, 32, 256];
    let mut r = Report::new("Transient overhead vs trip count (simulated / analytic cycles)")
        .with_columns(["config", "trip 2", "trip 8", "trip 32", "trip 256"]);
    for spec in SIM_CONFIGS {
        let cfg: Configuration = spec.parse().expect("static configuration");
        let mut row = vec![spec.to_string()];
        for trip in trips {
            let sim = simulate_corpus(
                &ctx.eval,
                &cfg,
                CycleModel::Cycles4,
                &EvalOptions::default(),
                Some(trip),
                ctx.backend,
            );
            row.push(f2(sim.transient_ratio()));
        }
        r.push_row(row);
    }
    r.push_note(
        "ratios fall toward 1.0 as trips grow: the pipeline ramp amortises; wider/deeper \
         machines (more stages) pay more at short trips",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_report_is_well_formed() {
        // Differential keeps the lowered backend honest on every run of
        // this experiment's quick corpus.
        let ctx = Context::quick(8).with_backend(widening_sim::Backend::Differential);
        let r = simulate(&ctx);
        assert_eq!(r.rows.len(), SIM_CONFIGS.len());
        for row in &r.rows {
            // validated + divergent + failed == loops.
            let total: usize = row[2].parse::<usize>().unwrap()
                + row[3].parse::<usize>().unwrap()
                + row[4].parse::<usize>().unwrap();
            assert_eq!(total, 8);
            assert_eq!(row[3], "0", "no divergences allowed");
        }
    }

    #[test]
    fn transient_ratio_decays_with_trip_count() {
        let ctx = Context::quick(6);
        let r = transients(&ctx);
        for row in &r.rows {
            let short: f64 = row[1].parse().unwrap();
            let long: f64 = row[4].parse().unwrap();
            assert!(
                short >= long - 1e-9,
                "{}: transient share should shrink with trip count ({short} vs {long})",
                row[0]
            );
            assert!(
                long < 1.5,
                "{}: long trips must approach the analytic model",
                row[0]
            );
        }
    }
}
