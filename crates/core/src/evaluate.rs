//! Corpus evaluation on the staged compilation pipeline.
//!
//! All of the paper's performance numbers are corpus aggregates of
//! `cycles(loop) = II · ⌈trip / Y⌉ · weight`. Two evaluation modes
//! exist:
//!
//! * **peak** (§3.1, Figure 2): perfect scheduling and an infinite
//!   register file — `II = MII` by definition, the pipeline stops after
//!   its MII stage;
//! * **scheduled** (§3.2 onward): the full HRMS + wands-only allocation
//!   + spill pipeline against a finite register file.
//!
//! The widen → MII → schedule → allocate → spill chain itself lives in
//! [`widening_pipeline`]; this module only aggregates its per-loop
//! artifacts. Memoization is two-level: the pipeline's two-tier
//! artifact store caches every stage per `(loop, key)` — so design
//! points share widened DDGs and MII bounds, and with a
//! [`StoreConfig`] ([`Evaluator::with_store`]) artifacts persist to
//! disk and/or live under an in-memory byte budget — and the evaluator
//! keeps a thin corpus-aggregate memo on top so repeated queries return
//! the identical `Arc`. Once a point's aggregate is folded the
//! evaluator *seals* its schedule-stage entries, releasing them for LRU
//! eviction. Multi-configuration sweeps should use [`Evaluator::sweep`]
//! (or [`Evaluator::sweep_specs`] for per-point compile options), which
//! compiles all `(loop × config)` work units on one dynamic worker
//! queue; [`Evaluator::extend`] grows the corpus incrementally, folding
//! only the new units into memoized aggregates.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use widening_cost::CostModel;
use widening_ir::Loop;
use widening_machine::{Configuration, CycleModel};
use widening_obs as obs;
use widening_pipeline::{pool, CompiledLoop, FailureCause, Pipeline, PointSpec, StoreConfig};

pub use widening_pipeline::CompileOptions as EvalOptions;

/// Outcome for a single loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopEval {
    /// The loop was scheduled (or bounded, in peak mode).
    Ok {
        /// Achieved (or bounding) initiation interval.
        ii: u32,
        /// The lower bound for reference.
        mii: u32,
        /// Registers used by the allocation (0 in peak mode).
        registers: u32,
        /// Spill operations inserted (stores + reloads).
        spill_ops: u32,
    },
    /// The pipeline could not compile the loop; the cause says why
    /// (register pressure is the paper's `8w1(32-RF)` case, a rewrite
    /// cause is always a compiler bug — reported, never a panic).
    Failed {
        /// Structured failure classification from the pipeline.
        cause: FailureCause,
    },
}

/// Aggregated corpus results for one (configuration, cycle-model) pair.
#[derive(Debug, Clone)]
pub struct CorpusEval {
    /// Per-loop outcomes, parallel to the corpus.
    pub per_loop: Vec<LoopEval>,
    /// `Σ weight · II · ⌈trip / Y⌉` over successful loops.
    pub total_cycles: f64,
    /// `Σ weight · II` (kernel-word accounting).
    pub total_kernel_words: f64,
    /// `Σ II` unweighted — static kernel code size in instruction words
    /// (Figure 7).
    pub total_static_words: f64,
    /// Loops whose pressure was unresolvable.
    pub failed: usize,
    /// Failures whose cause was a spill-rewrite defect — always a
    /// compiler bug, never an expected analytic outcome. Counted
    /// separately (and reported loudly during aggregation) so a rewrite
    /// regression cannot masquerade as ordinary register pressure.
    pub rewrite_failures: usize,
    /// Loops scheduled exactly at their MII.
    pub at_mii: usize,
    /// Total spill operations inserted.
    pub spill_ops: u64,
}

impl CorpusEval {
    /// Whether every loop scheduled within the register budget.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failed == 0
    }

    /// Fraction of loops achieving `II = MII`.
    #[must_use]
    pub fn mii_rate(&self) -> f64 {
        self.at_mii as f64 / self.per_loop.len() as f64
    }
}

/// Aggregate-memo key: a whole design point.
type EvalKey = PointSpec;

/// Corpus evaluator with two-level memoisation; cheap to clone (shared
/// pipeline and caches).
#[derive(Debug, Clone)]
pub struct Evaluator {
    pipeline: Arc<Pipeline>,
    cost: Arc<CostModel>,
    aggregates: Arc<Mutex<HashMap<EvalKey, Arc<CorpusEval>>>>,
    /// Serializes [`Evaluator::extend`] calls: concurrent extensions
    /// would interleave their incremental folds and scramble per-loop
    /// order. Held only by `extend`; queries never take it.
    extending: Arc<Mutex<()>>,
    threads: usize,
    /// Measured per-unit cost model (`--cost-model`): replaces the
    /// analytic `sweep_priority` for the in-process sweep's LPT unit
    /// order. Pure scheduling — aggregates stay bitwise-equal.
    unit_cost: Option<Arc<widening_cost::CalibratedModel>>,
}

impl Evaluator {
    /// Creates an evaluator over `loops` with the paper's cost models
    /// and the default worker count.
    #[must_use]
    pub fn new(loops: Vec<Loop>) -> Self {
        Evaluator {
            pipeline: Arc::new(Pipeline::new(loops)),
            cost: Arc::new(CostModel::paper()),
            aggregates: Arc::new(Mutex::new(HashMap::new())),
            extending: Arc::new(Mutex::new(())),
            threads: pool::default_threads(),
            unit_cost: None,
        }
    }

    /// Installs a measured cost model for sweep unit ordering (see
    /// [`Evaluator::sweep_specs`]); `None` restores the analytic
    /// surrogate.
    #[must_use]
    pub fn with_unit_cost(mut self, model: Option<Arc<widening_cost::CalibratedModel>>) -> Self {
        self.unit_cost = model;
        self
    }

    /// The installed measured cost model, if any.
    #[must_use]
    pub fn unit_cost(&self) -> Option<&Arc<widening_cost::CalibratedModel>> {
        self.unit_cost.as_ref()
    }

    /// Sets the worker-thread count used for corpus fan-out (evaluation,
    /// simulation and sweeps). Clamped to at least 1.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Rebuilds the pipeline with an explicit artifact-store
    /// configuration (disk persistence and/or an in-memory byte budget).
    /// Call before the first evaluation: the stage stores and the
    /// aggregate memo start empty.
    #[must_use]
    pub fn with_store(mut self, config: StoreConfig) -> Self {
        let loops = self.pipeline.loops();
        self.pipeline = Arc::new(Pipeline::with_config(loops, config));
        self.aggregates = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// Appends `more` loops to the corpus through the pipeline's
    /// incremental ingestion path, then brings every already-memoized
    /// corpus aggregate up to date by compiling and folding **only the
    /// new `(loop × design point)` units** — existing stage entries are
    /// untouched and replay from the store. Aggregates returned before
    /// the extension keep describing the old corpus (they are immutable
    /// snapshots); re-query to observe the grown one.
    pub fn extend(&self, more: Vec<Loop>) {
        let _one_extension_at_a_time = self.extending.lock().expect("extend lock");
        let range = self.pipeline.extend(more);
        if range.is_empty() {
            return;
        }
        let loops = self.loops();
        let specs: Vec<PointSpec> = {
            let memo = self.aggregates.lock().expect("aggregate lock");
            memo.keys().copied().collect()
        };
        let added = range.len();
        // Spec-major over the new units only, on the shared worker pool.
        let flat = pool::par_map(specs.len() * added, self.threads, |unit| {
            let spec = &specs[unit / added];
            let li = range.start + unit % added;
            score_loop(&loops[li], spec.width, &self.pipeline.compile(li, spec))
        });
        let mut flat = flat.into_iter();
        for spec in &specs {
            let scores: Vec<_> = flat.by_ref().take(added).collect();
            let mut memo = self.aggregates.lock().expect("aggregate lock");
            if let Some(agg) = memo.get_mut(spec) {
                let mut grown = (**agg).clone();
                fold_scores(&mut grown, scores);
                *agg = Arc::new(grown);
            }
            drop(memo);
            self.pipeline.seal_point(spec);
        }
    }

    /// A snapshot of the corpus being evaluated (loop indices are
    /// stable; [`Evaluator::extend`] only appends).
    #[must_use]
    pub fn loops(&self) -> Arc<Vec<Loop>> {
        self.pipeline.loops()
    }

    /// The shared cost model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The staged compilation pipeline (shared stage caches).
    #[must_use]
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Worker threads the evaluator fans corpus work out to (shared by
    /// the analytic and simulation pipelines).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Peak evaluation (§3.1): perfect scheduling, infinite registers —
    /// `II = MII` per widened loop.
    #[must_use]
    pub fn peak(&self, replication: u32, width: u32, model: CycleModel) -> Arc<CorpusEval> {
        self.evaluate(&PointSpec::peak(replication, width, model))
    }

    /// Full scheduled evaluation against `cfg.registers()` registers
    /// under the given cycle model.
    #[must_use]
    pub fn scheduled(
        &self,
        cfg: &Configuration,
        model: CycleModel,
        opts: &EvalOptions,
    ) -> Arc<CorpusEval> {
        self.evaluate(&PointSpec::scheduled(cfg, model, *opts))
    }

    /// The §3 baseline: `1w1` with a 256-register file, 4-cycle model.
    #[must_use]
    pub fn baseline_256(&self) -> Arc<CorpusEval> {
        let cfg = Configuration::monolithic(1, 1, 256).expect("valid");
        self.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default())
    }

    /// The §5 baseline: `1w1(32:1)` at unit cycle time, 4-cycle model.
    #[must_use]
    pub fn baseline_32(&self) -> Arc<CorpusEval> {
        let cfg = Configuration::monolithic(1, 1, 32).expect("valid");
        self.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default())
    }

    /// Evaluates many design points as one batch: all `(loop × config)`
    /// work units are compiled on one dynamic worker queue with shared
    /// stage caches (a `1w2/2w2/4w2` sweep widens each loop once).
    /// Returns one aggregate per configuration, in input order.
    #[must_use]
    pub fn sweep(
        &self,
        cfgs: &[Configuration],
        model: CycleModel,
        opts: &EvalOptions,
    ) -> Vec<Arc<CorpusEval>> {
        let points: Vec<(Configuration, CycleModel)> =
            cfgs.iter().map(|cfg| (*cfg, model)).collect();
        self.sweep_points(&points, opts)
    }

    /// [`Evaluator::sweep`] with a cycle model per configuration (the
    /// Figure 8/9 shape, where each design point's clock sets its
    /// latency model).
    #[must_use]
    pub fn sweep_points(
        &self,
        points: &[(Configuration, CycleModel)],
        opts: &EvalOptions,
    ) -> Vec<Arc<CorpusEval>> {
        let specs: Vec<PointSpec> = points
            .iter()
            .map(|(cfg, model)| PointSpec::scheduled(cfg, *model, *opts))
            .collect();
        self.sweep_specs(&specs)
    }

    /// Peak-mode batch: one aggregate per `(replication, width)` pair.
    #[must_use]
    pub fn sweep_peak(&self, pairs: &[(u32, u32)], model: CycleModel) -> Vec<Arc<CorpusEval>> {
        let specs: Vec<PointSpec> = pairs
            .iter()
            .map(|&(x, y)| PointSpec::peak(x, y, model))
            .collect();
        self.sweep_specs(&specs)
    }

    /// The fully general batch entry point: one aggregate per
    /// [`PointSpec`], in input order, with **per-point compile options**
    /// — a mixed-strategy or mixed-spill-policy sweep (the scheduler
    /// ablation's HRMS/IMS/ASAP pass) runs as one worker-queue batch,
    /// sharing the widening and MII stages across strategies.
    ///
    /// Units are handed to the dynamic queue **heaviest design point
    /// first** ([`widening_cost::sweep_priority`] — the same LPT
    /// ordering distributed shards use), so a lone worker is never left
    /// grinding `8w1(32:1)` while the rest idle at the tail. Execution
    /// order is pure scheduling: aggregates are folded in corpus order
    /// per point and stay bitwise-identical to any other order.
    #[must_use]
    pub fn sweep_specs(&self, specs: &[PointSpec]) -> Vec<Arc<CorpusEval>> {
        // Only compile points whose aggregate is not already memoized
        // (each distinct point once); the batch warms the stage caches
        // in parallel, then each aggregate is folded in deterministic
        // corpus order.
        let missing: Vec<PointSpec> = {
            let memo = self.aggregates.lock().expect("aggregate lock");
            let mut seen = std::collections::HashSet::new();
            specs
                .iter()
                .filter(|s| !memo.contains_key(*s) && seen.insert(**s))
                .copied()
                .collect()
        };
        let order = match &self.unit_cost {
            Some(model) => priority_unit_order_with(&missing, self.loops().len(), |x, y, z| {
                model.priority(x, y, z)
            }),
            None => priority_unit_order(&missing, self.loops().len()),
        };
        let compiled = self
            .pipeline
            .sweep_ordered(&missing, self.threads, Some(&order));
        for (spec, artifacts) in missing.iter().zip(compiled) {
            let evaluated: Vec<(LoopEval, f64, f64, f64)> = artifacts
                .iter()
                .zip(self.loops().iter())
                .map(|(outcome, l)| score_loop(l, spec.width, outcome))
                .collect();
            let agg = Arc::new(aggregate(evaluated));
            self.memoize(spec, agg);
            // The aggregate is folded: the point's schedule-stage
            // entries may now be evicted under memory pressure.
            self.pipeline.seal_point(spec);
        }
        specs.iter().map(|s| self.evaluate(s)).collect()
    }

    /// One design point: aggregate memo, else compile the corpus in
    /// parallel through the stage caches.
    fn evaluate(&self, spec: &PointSpec) -> Arc<CorpusEval> {
        if let Some(hit) = self.aggregates.lock().expect("aggregate lock").get(spec) {
            return Arc::clone(hit);
        }
        let loops = self.loops();
        let results = pool::par_map(loops.len(), self.threads, |li| {
            let _unit_span = obs::span(
                obs::SpanKind::SweepUnit,
                li as u64,
                obs::pack_point(spec.replication, spec.width, spec.registers),
            );
            score_loop(&loops[li], spec.width, &self.pipeline.compile(li, spec))
        });
        let value = Arc::new(aggregate(results));
        let value = self.memoize(spec, value);
        self.pipeline.seal_point(spec);
        value
    }

    /// Memoizes `agg` for `spec` — unless the corpus grew while it was
    /// being computed ([`Evaluator::extend`] racing this query), in
    /// which case the partial aggregate is returned to this caller as a
    /// snapshot but NOT cached: caching it would permanently
    /// under-report the grown corpus, since `extend`'s incremental
    /// refold only covers specs that were memoized when it scanned. The
    /// length check and the insert share the memo lock, and `extend`
    /// grows the corpus *before* scanning, so every interleaving either
    /// refolds the entry or rejects it here.
    pub(crate) fn memoize(&self, spec: &PointSpec, agg: Arc<CorpusEval>) -> Arc<CorpusEval> {
        let mut memo = self.aggregates.lock().expect("aggregate lock");
        if agg.per_loop.len() == self.loops().len() {
            memo.entry(*spec).or_insert(agg).clone()
        } else {
            agg
        }
    }
}

/// The execution order for a flat `(point × corpus)` unit grid:
/// heaviest design point first by [`widening_cost::sweep_priority`]
/// (pressure- and width-heavy points lead), ties keeping point input
/// order, corpus order within a point — the in-process mirror of the
/// distributed manifest's priority-ordered shards.
pub(crate) fn priority_unit_order(specs: &[PointSpec], loops: usize) -> Vec<u32> {
    priority_unit_order_with(specs, loops, widening_cost::sweep_priority)
}

/// [`priority_unit_order`] under a caller-supplied priority function —
/// the in-process hook a measured `CalibratedModel` plugs into.
pub(crate) fn priority_unit_order_with(
    specs: &[PointSpec],
    loops: usize,
    priority: impl Fn(u32, u32, Option<u32>) -> u64,
) -> Vec<u32> {
    let mut point_order: Vec<usize> = (0..specs.len()).collect();
    point_order.sort_by_key(|&pi| {
        let s = &specs[pi];
        std::cmp::Reverse(priority(s.replication, s.width, s.registers))
    });
    let mut order = Vec::with_capacity(specs.len() * loops);
    for pi in point_order {
        for li in 0..loops {
            order.push((pi * loops + li) as u32);
        }
    }
    order
}

/// Scores one compiled loop: the outcome plus its weighted cycle and
/// kernel-word contributions.
fn score_loop(
    l: &Loop,
    width: u32,
    outcome: &Result<CompiledLoop, widening_pipeline::PipelineError>,
) -> (LoopEval, f64, f64, f64) {
    let compiled = match outcome {
        Ok(c) => c,
        Err(e) => {
            if e.cause() == FailureCause::Rewrite {
                // The seed panicked here; report loudly — with the loop
                // name and the full graph-error detail the panic used to
                // carry — so the rest of the corpus still evaluates but
                // a rewrite bug can never pass as register pressure.
                eprintln!(
                    "warning: spill rewrite failed on {}: {e} — compiler defect, \
                     not register pressure",
                    l.name()
                );
            }
            return (LoopEval::Failed { cause: e.cause() }, 0.0, 0.0, 0.0);
        }
    };
    score_eval(
        l,
        width,
        LoopEval::Ok {
            ii: compiled.ii(),
            mii: compiled.mii(),
            registers: compiled.registers_used(),
            spill_ops: compiled.spill_ops(),
        },
    )
}

/// Scores a per-loop outcome: the exact arithmetic of the analytic
/// model, shared by the in-process path ([`score_loop`]) and the
/// distributed merge (which reconstructs `LoopEval`s from published
/// unit results). Keeping the two on one function is what makes a
/// merged distributed sweep **bitwise-equal** to a single-process one.
pub(crate) fn score_eval(l: &Loop, width: u32, le: LoopEval) -> (LoopEval, f64, f64, f64) {
    match le {
        LoopEval::Ok { ii, .. } => {
            let block_iterations = l.trip_count().div_ceil(u64::from(width));
            let cycles = l.weight() * f64::from(ii) * block_iterations as f64;
            let words = l.weight() * f64::from(ii);
            (le, cycles, words, f64::from(ii))
        }
        LoopEval::Failed { .. } => (le, 0.0, 0.0, 0.0),
    }
}

/// Folds per-loop scores into a fresh [`CorpusEval`], in corpus order.
pub(crate) fn aggregate(results: Vec<(LoopEval, f64, f64, f64)>) -> CorpusEval {
    let mut eval = CorpusEval {
        per_loop: Vec::with_capacity(results.len()),
        total_cycles: 0.0,
        total_kernel_words: 0.0,
        total_static_words: 0.0,
        failed: 0,
        rewrite_failures: 0,
        at_mii: 0,
        spill_ops: 0,
    };
    fold_scores(&mut eval, results);
    eval
}

/// Folds additional per-loop scores into an existing aggregate — the
/// incremental half of [`Evaluator::extend`]. Left-to-right folding
/// keeps the f64 association identical to a full recompute over the
/// grown corpus, so incremental and from-scratch aggregates are bitwise
/// equal.
fn fold_scores(eval: &mut CorpusEval, results: Vec<(LoopEval, f64, f64, f64)>) {
    for (le, cycles, words, static_words) in results {
        match le {
            LoopEval::Ok {
                ii, mii, spill_ops, ..
            } => {
                eval.total_cycles += cycles;
                eval.total_kernel_words += words;
                eval.total_static_words += static_words;
                if ii == mii {
                    eval.at_mii += 1;
                }
                eval.spill_ops += u64::from(spill_ops);
            }
            LoopEval::Failed { cause } => {
                eval.failed += 1;
                // score_loop already warned with the loop name and full
                // error; the aggregate keeps the count queryable.
                if cause == FailureCause::Rewrite {
                    eval.rewrite_failures += 1;
                }
            }
        }
        eval.per_loop.push(le);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_workload::{corpus, kernels};

    fn small_eval() -> Evaluator {
        Evaluator::new(corpus::generate(&corpus::CorpusSpec::small(40, 9)))
    }

    #[test]
    fn peak_speedup_grows_with_replication() {
        let ev = small_eval();
        let base = ev.peak(1, 1, CycleModel::Cycles4).total_cycles;
        let x2 = ev.peak(2, 1, CycleModel::Cycles4).total_cycles;
        let x4 = ev.peak(4, 1, CycleModel::Cycles4).total_cycles;
        assert!(x2 < base);
        assert!(x4 < x2);
        let s4 = base / x4;
        assert!(s4 > 1.5 && s4 < 4.0, "speed-up {s4}");
    }

    #[test]
    fn peak_widening_does_not_meaningfully_beat_replication() {
        // §3.1: widening is less versatile; at equal factor its peak
        // performance cannot exceed replication's — except for ceiling
        // effects (a 3-access loop on 2 buses pays ⌈3/2⌉ = 2 per
        // iteration, while one wide bus pays 3 per 2 iterations = 1.5),
        // which can hand widening a few percent on small loops.
        let ev = small_eval();
        for factor in [2u32, 4, 8] {
            let repl = ev.peak(factor, 1, CycleModel::Cycles4).total_cycles;
            let wide = ev.peak(1, factor, CycleModel::Cycles4).total_cycles;
            assert!(
                wide >= repl * 0.95,
                "×{factor}: widening {wide} beats replication {repl} beyond ceiling effects"
            );
        }
    }

    #[test]
    fn scheduled_matches_peak_with_huge_file() {
        // With 256 registers and the small corpus, most loops schedule
        // at MII, so scheduled cycles ≈ peak cycles.
        let ev = small_eval();
        let cfg = Configuration::monolithic(2, 1, 256).unwrap();
        let sched = ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default());
        let peak = ev.peak(2, 1, CycleModel::Cycles4);
        assert!(sched.is_complete());
        assert!(sched.total_cycles >= peak.total_cycles);
        let ratio = sched.total_cycles / peak.total_cycles;
        assert!(ratio < 1.15, "scheduled/peak = {ratio}");
        assert!(sched.mii_rate() > 0.85, "MII rate {}", sched.mii_rate());
    }

    #[test]
    fn small_file_costs_cycles() {
        let ev = small_eval();
        let big = ev.scheduled(
            &Configuration::monolithic(4, 1, 256).unwrap(),
            CycleModel::Cycles4,
            &EvalOptions::default(),
        );
        let small = ev.scheduled(
            &Configuration::monolithic(4, 1, 32).unwrap(),
            CycleModel::Cycles4,
            &EvalOptions::default(),
        );
        // Smaller file: spill code and/or II growth (or outright
        // failures).
        assert!(
            small.total_cycles >= big.total_cycles || small.failed > 0,
            "32-RF should not be faster than 256-RF"
        );
        assert!(small.spill_ops >= big.spill_ops);
    }

    #[test]
    fn cache_returns_same_result() {
        let ev = small_eval();
        let a = ev.peak(2, 2, CycleModel::Cycles4);
        let b = ev.peak(2, 2, CycleModel::Cycles4);
        assert!(Arc::ptr_eq(&a, &b), "second call should hit the cache");
    }

    #[test]
    fn kernels_evaluate_cleanly() {
        let ev = Evaluator::new(kernels::all());
        let cfg = Configuration::monolithic(2, 2, 64).unwrap();
        let r = ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default());
        assert!(r.is_complete());
        assert_eq!(r.per_loop.len(), 12);
    }

    #[test]
    fn baselines_are_consistent() {
        let ev = small_eval();
        let b256 = ev.baseline_256();
        let b32 = ev.baseline_32();
        assert!(b256.is_complete());
        assert!(b32.total_cycles >= b256.total_cycles);
    }

    #[test]
    fn sweep_matches_single_point_evaluation() {
        let loops = corpus::generate(&corpus::CorpusSpec::small(25, 3));
        let cfgs: Vec<Configuration> = ["1w1(64:1)", "2w2(64:1)", "4w2(64:1)"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();

        let swept = Evaluator::new(loops.clone());
        let batch = swept.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());

        let single = Evaluator::new(loops);
        for (cfg, got) in cfgs.iter().zip(&batch) {
            let want = single.scheduled(cfg, CycleModel::Cycles4, &EvalOptions::default());
            assert_eq!(got.total_cycles.to_bits(), want.total_cycles.to_bits());
            assert_eq!(got.failed, want.failed);
            assert_eq!(got.at_mii, want.at_mii);
            assert_eq!(got.spill_ops, want.spill_ops);
        }
        // The batch shares widening across the Y = 2 points.
        let counts = swept.pipeline().stage_counts();
        assert_eq!(counts.widen_runs, 2 * 25);
        // Sweep results are memoized: re-reading is pure cache.
        let again = swept.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
        for (a, b) in batch.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn sweep_order_is_priority_major_and_result_preserving() {
        // The in-process queue mirrors the distributed shards: the
        // pressure-starved 8w1(32) point's units lead, the cheap
        // 1w1(256) trail — and reordering execution changes nothing
        // about the aggregates, bit for bit.
        let specs: Vec<PointSpec> = ["1w1(256:1)", "8w1(32:1)", "4w2(64:1)"]
            .iter()
            .map(|s| {
                PointSpec::scheduled(
                    &s.parse().unwrap(),
                    CycleModel::Cycles4,
                    EvalOptions::default(),
                )
            })
            .collect();
        let n = 7;
        let order = priority_unit_order(&specs, n);
        assert_eq!(order.len(), specs.len() * n);
        // A permutation…
        let mut seen = vec![false; order.len()];
        for &u in &order {
            assert!(!std::mem::replace(&mut seen[u as usize], true));
        }
        // …leading with the heaviest point's corpus column, in corpus
        // order, then the next-heaviest.
        let expect_first: Vec<u32> = (0..n as u32).map(|li| n as u32 + li).collect();
        assert_eq!(&order[..n], &expect_first[..], "8w1(32) leads");
        assert_eq!(order[n] as usize / n, 2, "4w2(64) second");
        assert_eq!(order[2 * n] as usize / n, 0, "1w1(256) last");

        let loops = corpus::generate(&corpus::CorpusSpec::small(n, 5));
        let batch = Evaluator::new(loops.clone())
            .with_threads(4)
            .sweep_specs(&specs);
        let single = Evaluator::new(loops);
        for (spec, got) in specs.iter().zip(&batch) {
            let want = single.sweep_specs(std::slice::from_ref(spec));
            assert_eq!(got.total_cycles.to_bits(), want[0].total_cycles.to_bits());
            assert_eq!(got.per_loop, want[0].per_loop);
        }
    }

    #[test]
    fn calibrated_order_keeps_aggregates_bitwise_equal() {
        // A measured cost model may invert the analytic LPT order
        // entirely; the sweep's aggregates must not move by a single
        // bit. Calibrate from synthetic unit samples that price the
        // analytically-cheapest point as the most expensive.
        let specs: Vec<PointSpec> = ["1w1(256:1)", "8w1(32:1)", "4w2(64:1)"]
            .iter()
            .map(|s| {
                PointSpec::scheduled(
                    &s.parse().unwrap(),
                    CycleModel::Cycles4,
                    EvalOptions::default(),
                )
            })
            .collect();
        let samples: Vec<widening_obs::report::UnitSample> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| widening_obs::report::UnitSample {
                loop_index: 0,
                replication: s.replication,
                width: s.width,
                registers: s.registers,
                // Reverse of the analytic order: 1w1(256) "slowest".
                wall_ns: 1_000_000 * (specs.len() - i) as u64,
            })
            .collect();
        let model = Arc::new(widening_cost::CalibratedModel::from_report(
            &widening_cost::calibrate(&samples),
        ));
        let n = 7;
        let order = priority_unit_order_with(&specs, n, |x, y, z| model.priority(x, y, z));
        let analytic = priority_unit_order(&specs, n);
        assert_ne!(order, analytic, "the model really changed the order");
        assert_eq!(order[0] as usize / n, 0, "1w1(256) now leads");

        let loops = corpus::generate(&corpus::CorpusSpec::small(n, 5));
        let calibrated = Evaluator::new(loops.clone())
            .with_threads(4)
            .with_unit_cost(Some(model))
            .sweep_specs(&specs);
        let default = Evaluator::new(loops).with_threads(4).sweep_specs(&specs);
        for (got, want) in calibrated.iter().zip(&default) {
            assert_eq!(got.total_cycles.to_bits(), want.total_cycles.to_bits());
            assert_eq!(got.per_loop, want.per_loop);
            assert_eq!(got.spill_ops, want.spill_ops);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let loops = corpus::generate(&corpus::CorpusSpec::small(18, 21));
        let cfg = Configuration::monolithic(4, 2, 64).unwrap();
        let a = Evaluator::new(loops.clone()).with_threads(1).scheduled(
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
        );
        let b = Evaluator::new(loops).with_threads(7).scheduled(
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
        );
        assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
        assert_eq!(a.per_loop, b.per_loop);
    }

    #[test]
    fn failures_carry_structured_causes() {
        // The paper's unresolvable-pressure case: 8w1 on a 32-RF. Any
        // failed loop must say why instead of panicking the corpus run.
        let ev = small_eval();
        let cfg = Configuration::monolithic(8, 1, 32).unwrap();
        let r = ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default());
        for le in &r.per_loop {
            if let LoopEval::Failed { cause } = le {
                assert!(
                    matches!(cause, FailureCause::Pressure { .. }),
                    "unexpected cause {cause}"
                );
            }
        }
        assert!(r.failed > 0, "8w1(32-RF) should fail some loops");
    }
}
