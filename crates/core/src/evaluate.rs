//! The evaluation pipeline: widen → schedule → allocate → spill →
//! aggregate, with caching and a thread pool.
//!
//! All of the paper's performance numbers are corpus aggregates of
//! `cycles(loop) = II · ⌈trip / Y⌉ · weight`. Two evaluation modes
//! exist:
//!
//! * **peak** (§3.1, Figure 2): perfect scheduling and an infinite
//!   register file — `II = MII` by definition, no scheduler run;
//! * **scheduled** (§3.2 onward): the full HRMS + wands-only allocation
//!   + spill pipeline against a finite register file.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use widening_cost::CostModel;
use widening_ir::Loop;
use widening_machine::{Configuration, CycleModel};
use widening_regalloc::{schedule_with_registers, RegallocError, SpillOptions};
use widening_sched::{MiiBounds, SchedulerOptions, Strategy};
use widening_transform::widen;

/// How a corpus evaluation should be run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Scheduler strategy (HRMS unless ablating).
    pub strategy: Strategy,
    /// Spill engine options.
    pub spill: SpillOptions,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            strategy: Strategy::Hrms,
            spill: SpillOptions::default(),
        }
    }
}

/// Outcome for a single loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopEval {
    /// The loop was scheduled (or bounded, in peak mode).
    Ok {
        /// Achieved (or bounding) initiation interval.
        ii: u32,
        /// The lower bound for reference.
        mii: u32,
        /// Registers used by the allocation (0 in peak mode).
        registers: u32,
        /// Spill operations inserted (stores + reloads).
        spill_ops: u32,
    },
    /// Register pressure could not be resolved (the paper's `8w1(32-RF)`
    /// case).
    Failed,
}

/// Aggregated corpus results for one (configuration, cycle-model) pair.
#[derive(Debug, Clone)]
pub struct CorpusEval {
    /// Per-loop outcomes, parallel to the corpus.
    pub per_loop: Vec<LoopEval>,
    /// `Σ weight · II · ⌈trip / Y⌉` over successful loops.
    pub total_cycles: f64,
    /// `Σ weight · II` (kernel-word accounting).
    pub total_kernel_words: f64,
    /// `Σ II` unweighted — static kernel code size in instruction words
    /// (Figure 7).
    pub total_static_words: f64,
    /// Loops whose pressure was unresolvable.
    pub failed: usize,
    /// Loops scheduled exactly at their MII.
    pub at_mii: usize,
    /// Total spill operations inserted.
    pub spill_ops: u64,
}

impl CorpusEval {
    /// Whether every loop scheduled within the register budget.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failed == 0
    }

    /// Fraction of loops achieving `II = MII`.
    #[must_use]
    pub fn mii_rate(&self) -> f64 {
        self.at_mii as f64 / self.per_loop.len() as f64
    }
}

/// Cache key: everything that changes a corpus evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EvalKey {
    replication: u32,
    width: u32,
    /// `None` = infinite register file (peak mode).
    registers: Option<u32>,
    model: CycleModel,
    strategy: Strategy,
    spill_policy: widening_regalloc::SpillPolicy,
}

/// Corpus evaluator with memoisation; cheap to clone (shared cache).
#[derive(Debug, Clone)]
pub struct Evaluator {
    loops: Arc<Vec<Loop>>,
    cost: Arc<CostModel>,
    cache: Arc<Mutex<HashMap<EvalKey, Arc<CorpusEval>>>>,
    threads: usize,
}

impl Evaluator {
    /// Creates an evaluator over `loops` with the paper's cost models.
    #[must_use]
    pub fn new(loops: Vec<Loop>) -> Self {
        let threads = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(16);
        Evaluator {
            loops: Arc::new(loops),
            cost: Arc::new(CostModel::paper()),
            cache: Arc::new(Mutex::new(HashMap::new())),
            threads,
        }
    }

    /// The corpus being evaluated.
    #[must_use]
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The shared cost model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Worker threads the evaluator fans corpus work out to (shared by
    /// the analytic and simulation pipelines).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Peak evaluation (§3.1): perfect scheduling, infinite registers —
    /// `II = MII` per widened loop.
    #[must_use]
    pub fn peak(&self, replication: u32, width: u32, model: CycleModel) -> Arc<CorpusEval> {
        let key = EvalKey {
            replication,
            width,
            registers: None,
            model,
            strategy: Strategy::Hrms,
            spill_policy: widening_regalloc::SpillPolicy::SpillFirst,
        };
        self.cached(key, || {
            self.run(replication, width, None, model, &EvalOptions::default())
        })
    }

    /// Full scheduled evaluation against `cfg.registers()` registers
    /// under the given cycle model.
    #[must_use]
    pub fn scheduled(
        &self,
        cfg: &Configuration,
        model: CycleModel,
        opts: &EvalOptions,
    ) -> Arc<CorpusEval> {
        let key = EvalKey {
            replication: cfg.replication(),
            width: cfg.widening(),
            registers: Some(cfg.registers()),
            model,
            strategy: opts.strategy,
            spill_policy: opts.spill.policy,
        };
        self.cached(key, || {
            self.run(
                cfg.replication(),
                cfg.widening(),
                Some(cfg.registers()),
                model,
                opts,
            )
        })
    }

    /// The §3 baseline: `1w1` with a 256-register file, 4-cycle model.
    #[must_use]
    pub fn baseline_256(&self) -> Arc<CorpusEval> {
        let cfg = Configuration::monolithic(1, 1, 256).expect("valid");
        self.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default())
    }

    /// The §5 baseline: `1w1(32:1)` at unit cycle time, 4-cycle model.
    #[must_use]
    pub fn baseline_32(&self) -> Arc<CorpusEval> {
        let cfg = Configuration::monolithic(1, 1, 32).expect("valid");
        self.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default())
    }

    fn cached(&self, key: EvalKey, f: impl FnOnce() -> CorpusEval) -> Arc<CorpusEval> {
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            return Arc::clone(hit);
        }
        let value = Arc::new(f());
        self.cache
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert(value)
            .clone()
    }

    /// Evaluates every loop on `threads` workers.
    fn run(
        &self,
        replication: u32,
        width: u32,
        registers: Option<u32>,
        model: CycleModel,
        opts: &EvalOptions,
    ) -> CorpusEval {
        let n = self.loops.len();
        let results: Vec<(LoopEval, f64, f64, f64)> = {
            let mut out = vec![(LoopEval::Failed, 0.0, 0.0, 0.0); n];
            let chunk = n.div_ceil(self.threads.max(1));
            std::thread::scope(|scope| {
                for (slot, loops) in out.chunks_mut(chunk).zip(self.loops.chunks(chunk)) {
                    scope.spawn(move || {
                        for (s, l) in slot.iter_mut().zip(loops) {
                            *s = evaluate_loop(l, replication, width, registers, model, opts);
                        }
                    });
                }
            });
            out
        };
        let mut eval = CorpusEval {
            per_loop: Vec::with_capacity(n),
            total_cycles: 0.0,
            total_kernel_words: 0.0,
            total_static_words: 0.0,
            failed: 0,
            at_mii: 0,
            spill_ops: 0,
        };
        for (le, cycles, words, static_words) in results {
            match le {
                LoopEval::Ok {
                    ii, mii, spill_ops, ..
                } => {
                    eval.total_cycles += cycles;
                    eval.total_kernel_words += words;
                    eval.total_static_words += static_words;
                    if ii == mii {
                        eval.at_mii += 1;
                    }
                    eval.spill_ops += u64::from(spill_ops);
                }
                LoopEval::Failed => eval.failed += 1,
            }
            eval.per_loop.push(le);
        }
        eval
    }
}

/// Evaluates one loop; returns the outcome plus its weighted cycle and
/// kernel-word contributions.
fn evaluate_loop(
    l: &Loop,
    replication: u32,
    width: u32,
    registers: Option<u32>,
    model: CycleModel,
    opts: &EvalOptions,
) -> (LoopEval, f64, f64, f64) {
    let cfg_regs = registers.unwrap_or(256);
    let cfg = Configuration::monolithic(replication, width, cfg_regs)
        .expect("evaluator configurations are powers of two");
    let wide = widen(l.ddg(), width);
    let block_iterations = l.trip_count().div_ceil(u64::from(width));
    let weight = l.weight();

    let (ii, mii, regs, spills) = match registers {
        None => {
            // Peak mode: II = MII exactly.
            let bounds = MiiBounds::compute(wide.ddg(), &cfg, model);
            (bounds.mii(), bounds.mii(), 0, 0)
        }
        Some(_) => {
            let sched_opts = SchedulerOptions {
                strategy: opts.strategy,
                ..Default::default()
            };
            match schedule_with_registers(wide.ddg(), &cfg, model, &sched_opts, &opts.spill) {
                Ok(r) => {
                    // Judge the scheduler against the graph it actually
                    // scheduled (including spill code): `ii == mii` then
                    // measures ordering quality, not spill pressure.
                    let mii = MiiBounds::compute(&r.ddg, &cfg, model).mii();
                    (
                        r.schedule.ii(),
                        mii,
                        r.allocation.registers_used(),
                        r.spill_stores + r.spill_loads,
                    )
                }
                Err(RegallocError::Pressure { .. }) => {
                    return (LoopEval::Failed, 0.0, 0.0, 0.0);
                }
                Err(RegallocError::Schedule(_)) => {
                    // Only the naive ASAP baseline can starve itself out
                    // of a schedule; count it as a failure so the
                    // ablation surfaces the weakness.
                    return (LoopEval::Failed, 0.0, 0.0, 0.0);
                }
                Err(e) => {
                    // Graph rewriting must never fail; surface loudly.
                    panic!("spill rewrite failed on {}: {e}", l.name());
                }
            }
        }
    };
    let cycles = weight * f64::from(ii) * block_iterations as f64;
    let words = weight * f64::from(ii);
    (
        LoopEval::Ok {
            ii,
            mii,
            registers: regs,
            spill_ops: spills,
        },
        cycles,
        words,
        f64::from(ii),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_workload::{corpus, kernels};

    fn small_eval() -> Evaluator {
        Evaluator::new(corpus::generate(&corpus::CorpusSpec::small(40, 9)))
    }

    #[test]
    fn peak_speedup_grows_with_replication() {
        let ev = small_eval();
        let base = ev.peak(1, 1, CycleModel::Cycles4).total_cycles;
        let x2 = ev.peak(2, 1, CycleModel::Cycles4).total_cycles;
        let x4 = ev.peak(4, 1, CycleModel::Cycles4).total_cycles;
        assert!(x2 < base);
        assert!(x4 < x2);
        let s4 = base / x4;
        assert!(s4 > 1.5 && s4 < 4.0, "speed-up {s4}");
    }

    #[test]
    fn peak_widening_does_not_meaningfully_beat_replication() {
        // §3.1: widening is less versatile; at equal factor its peak
        // performance cannot exceed replication's — except for ceiling
        // effects (a 3-access loop on 2 buses pays ⌈3/2⌉ = 2 per
        // iteration, while one wide bus pays 3 per 2 iterations = 1.5),
        // which can hand widening a few percent on small loops.
        let ev = small_eval();
        for factor in [2u32, 4, 8] {
            let repl = ev.peak(factor, 1, CycleModel::Cycles4).total_cycles;
            let wide = ev.peak(1, factor, CycleModel::Cycles4).total_cycles;
            assert!(
                wide >= repl * 0.95,
                "×{factor}: widening {wide} beats replication {repl} beyond ceiling effects"
            );
        }
    }

    #[test]
    fn scheduled_matches_peak_with_huge_file() {
        // With 256 registers and the small corpus, most loops schedule
        // at MII, so scheduled cycles ≈ peak cycles.
        let ev = small_eval();
        let cfg = Configuration::monolithic(2, 1, 256).unwrap();
        let sched = ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default());
        let peak = ev.peak(2, 1, CycleModel::Cycles4);
        assert!(sched.is_complete());
        assert!(sched.total_cycles >= peak.total_cycles);
        let ratio = sched.total_cycles / peak.total_cycles;
        assert!(ratio < 1.15, "scheduled/peak = {ratio}");
        assert!(sched.mii_rate() > 0.85, "MII rate {}", sched.mii_rate());
    }

    #[test]
    fn small_file_costs_cycles() {
        let ev = small_eval();
        let big = ev.scheduled(
            &Configuration::monolithic(4, 1, 256).unwrap(),
            CycleModel::Cycles4,
            &EvalOptions::default(),
        );
        let small = ev.scheduled(
            &Configuration::monolithic(4, 1, 32).unwrap(),
            CycleModel::Cycles4,
            &EvalOptions::default(),
        );
        // Smaller file: spill code and/or II growth (or outright
        // failures).
        assert!(
            small.total_cycles >= big.total_cycles || small.failed > 0,
            "32-RF should not be faster than 256-RF"
        );
        assert!(small.spill_ops >= big.spill_ops);
    }

    #[test]
    fn cache_returns_same_result() {
        let ev = small_eval();
        let a = ev.peak(2, 2, CycleModel::Cycles4);
        let b = ev.peak(2, 2, CycleModel::Cycles4);
        assert!(Arc::ptr_eq(&a, &b), "second call should hit the cache");
    }

    #[test]
    fn kernels_evaluate_cleanly() {
        let ev = Evaluator::new(kernels::all());
        let cfg = Configuration::monolithic(2, 2, 64).unwrap();
        let r = ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default());
        assert!(r.is_complete());
        assert_eq!(r.per_loop.len(), 12);
    }

    #[test]
    fn baselines_are_consistent() {
        let ev = small_eval();
        let b256 = ev.baseline_256();
        let b32 = ev.baseline_32();
        assert!(b256.is_complete());
        assert!(b32.total_cycles >= b256.total_cycles);
    }
}
