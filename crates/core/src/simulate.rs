//! Corpus-scale simulation: every loop is widened, scheduled, executed
//! cycle-accurately and differentially validated against its scalar
//! reference, in parallel on the evaluator's worker pool.
//!
//! Where [`crate::Evaluator::scheduled`] *counts* `II · ⌈trip/Y⌉`
//! analytically, [`simulate_corpus`] *runs* the schedule and reports
//! both numbers side by side — so experiments can quantify the
//! fill/drain transient and assert functional correctness of the whole
//! widen → schedule → allocate → spill pipeline on real corpus loops.
//!
//! Compilation goes through the evaluator's shared [`widening_pipeline`]
//! stage caches: simulating a configuration that was already evaluated
//! analytically (or at another trip count) replays the memoized
//! schedule instead of recompiling it.
//!
//! With a persistent store ([`widening_pipeline::StoreConfig`]
//! `cache_dir`), validated per-loop simulation summaries are
//! additionally persisted in the store's exchange tier under the same
//! content-key scheme as compiled artifacts (graph fingerprint +
//! design point + trip count): a second `--simulate` run **warm-starts
//! from disk**, replaying every summary instead of re-executing the
//! simulator — the decode-table rebuild included. Only *validated*
//! runs persist; a divergence or hard failure (both always bugs) is
//! re-derived every run so it can never hide in a stale cache.

use std::sync::atomic::{AtomicUsize, Ordering};

use widening_machine::{Configuration, CycleModel};
use widening_pipeline::codec::{Reader, Writer};
use widening_pipeline::exchange::{sim_summary_key, SIM_SUMMARY_KIND};
use widening_pipeline::{pool, Exchange, PointSpec};
use widening_sim::{simulate_scheduled, simulate_with_program, Backend, SimStats};

use crate::evaluate::{EvalOptions, Evaluator};

/// Version of the persisted simulation-summary record.
const SIM_SUMMARY_VERSION: u32 = 1;

fn encode_sim_summary(ii: u32, stats: &SimStats) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(SIM_SUMMARY_VERSION);
    w.u32(ii);
    for v in [
        stats.cycles,
        stats.blocks,
        stats.steady_state_cycles,
        stats.issued_ops,
        stats.masked_lanes,
        stats.cross_block_reads,
        stats.spill_slot_accesses,
    ] {
        w.u64(v);
    }
    w.into_bytes()
}

fn decode_sim_summary(bytes: &[u8]) -> Option<(u32, SimStats)> {
    let mut r = Reader::new(bytes);
    if r.u32()? != SIM_SUMMARY_VERSION {
        return None;
    }
    let ii = r.u32()?;
    let stats = SimStats {
        cycles: r.u64()?,
        blocks: r.u64()?,
        steady_state_cycles: r.u64()?,
        issued_ops: r.u64()?,
        masked_lanes: r.u64()?,
        cross_block_reads: r.u64()?,
        spill_slot_accesses: r.u64()?,
    };
    r.exhausted().then_some((ii, stats))
}

/// Outcome of simulating one loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SimLoopEval {
    /// Executed and bitwise-identical to the scalar reference.
    Validated {
        /// Achieved initiation interval.
        ii: u32,
        /// Dynamic execution counters.
        stats: SimStats,
    },
    /// Executed but diverged from the reference (a pipeline bug).
    Divergent {
        /// Number of reported divergences.
        divergences: usize,
    },
    /// Could not be scheduled (register pressure) or hit a hard machine
    /// violation.
    Failed {
        /// Human-readable cause.
        why: String,
    },
}

/// Aggregated corpus simulation results for one configuration.
#[derive(Debug, Clone)]
pub struct SimCorpusEval {
    /// Per-loop outcomes, parallel to the corpus.
    pub per_loop: Vec<SimLoopEval>,
    /// Loops that executed and matched the reference bitwise.
    pub validated: usize,
    /// Loops that executed but diverged (always a bug somewhere).
    pub divergent: usize,
    /// Loops that failed to schedule or execute.
    pub failed: usize,
    /// `Σ weight · dynamic cycles` over validated loops.
    pub dynamic_cycles: f64,
    /// `Σ weight · II · ⌈trip/Y⌉` over the same loops — the analytic
    /// accounting for exactly the runs that were simulated.
    pub steady_cycles: f64,
    /// Total masked lanes (trips not divisible by `Y`).
    pub masked_lanes: u64,
    /// Total forwarding-served cross-block lane reads.
    pub cross_block_reads: u64,
    /// Loops replayed from persisted simulation summaries instead of
    /// being executed (0 without a persistent store).
    pub warm_hits: usize,
}

impl SimCorpusEval {
    /// Whether every simulated loop matched its reference.
    #[must_use]
    pub fn all_validated(&self) -> bool {
        self.divergent == 0
    }

    /// Dynamic over steady-state cycles: how much the paper's
    /// accounting underestimates real execution (1.0 = exact).
    #[must_use]
    pub fn transient_ratio(&self) -> f64 {
        if self.steady_cycles == 0.0 {
            1.0
        } else {
            self.dynamic_cycles / self.steady_cycles
        }
    }
}

/// Simulates the whole corpus on `cfg`, optionally forcing every loop to
/// `trip_override` iterations (used by the transients experiment to
/// sweep trip counts).
///
/// `backend` selects the execution engine: the cycle-level interpreter,
/// the lowered `WideProgram` bytecode, or both in lock-step
/// ([`Backend::Differential`], which errors on the first divergence).
/// Backends that execute bytecode materialize the program through the
/// pipeline's memoized (and disk-persisted) lower stage, so a transients
/// sweep lowers each design point **once** across all its trip
/// overrides, and a warm `--simulate` run decodes programs from disk
/// with zero live lower-stage runs.
#[must_use]
pub fn simulate_corpus(
    eval: &Evaluator,
    cfg: &Configuration,
    model: CycleModel,
    opts: &EvalOptions,
    trip_override: Option<u64>,
    backend: Backend,
) -> SimCorpusEval {
    let loops = eval.loops();
    let spec = PointSpec::scheduled(cfg, model, *opts);
    let pipeline = eval.pipeline();
    // The warm-start tier: present only with a persistent store.
    let exchange = pipeline
        .store_config()
        .cache_dir
        .as_deref()
        .and_then(Exchange::open);
    let warm = AtomicUsize::new(0);
    let out = pool::par_map(loops.len(), eval.threads(), |li| {
        let l = &loops[li];
        let trip = trip_override.unwrap_or_else(|| l.trip_count());
        let key = exchange
            .as_ref()
            .zip(pipeline.content_fingerprint(li))
            .map(|(_, fp)| {
                // The backend is part of the summary key: a persisted
                // interpreter run must never short-circuit a
                // differential run (the whole point of which is to
                // execute both engines).
                let mut key = sim_summary_key(fp, &spec, trip);
                key.extend_from_slice(backend.label().as_bytes());
                key
            });
        if let (Some(ex), Some(key)) = (&exchange, &key) {
            if let Some((ii, stats)) = ex
                .get(SIM_SUMMARY_KIND, key)
                .and_then(|b| decode_sim_summary(&b))
            {
                // A summary is only ever persisted for a validated run,
                // and its integers replay the execution exactly.
                warm.fetch_add(1, Ordering::Relaxed);
                return SimLoopEval::Validated { ii, stats };
            }
        }
        let compiled = match pipeline.compile(li, &spec) {
            Ok(c) => c,
            Err(e) => {
                return SimLoopEval::Failed {
                    why: format!("pipeline failed: {e}"),
                }
            }
        };
        let stage = compiled
            .scheduled()
            .expect("scheduled design points always carry a schedule stage");
        // Bytecode-executing backends fetch the program from the
        // memoized lower stage (shared across trips and warm-started
        // from disk) instead of lowering inline per run.
        let program = if backend.uses_lowered() {
            match pipeline.lowered(li, &spec) {
                Ok(p) => Some(p),
                Err(e) => {
                    return SimLoopEval::Failed {
                        why: format!("pipeline failed: {e}"),
                    }
                }
            }
        } else {
            None
        };
        let outcome = match &program {
            Some(p) => simulate_with_program(
                l.ddg(),
                compiled.wide(),
                &stage.result,
                model,
                trip,
                backend,
                p,
            ),
            None => simulate_scheduled(
                l.ddg(),
                compiled.wide(),
                &stage.result,
                model,
                trip,
                backend,
            ),
        };
        match outcome {
            Ok(report) if report.is_validated() => {
                if let (Some(ex), Some(key)) = (&exchange, &key) {
                    ex.put(
                        SIM_SUMMARY_KIND,
                        key,
                        &encode_sim_summary(report.ii, &report.stats),
                    );
                }
                SimLoopEval::Validated {
                    ii: report.ii,
                    stats: report.stats,
                }
            }
            Ok(report) => SimLoopEval::Divergent {
                divergences: report.divergences.len(),
            },
            Err(e) => SimLoopEval::Failed { why: e.to_string() },
        }
    });

    let mut agg = SimCorpusEval {
        per_loop: Vec::with_capacity(loops.len()),
        validated: 0,
        divergent: 0,
        failed: 0,
        dynamic_cycles: 0.0,
        steady_cycles: 0.0,
        masked_lanes: 0,
        cross_block_reads: 0,
        warm_hits: warm.into_inner(),
    };
    for (le, l) in out.into_iter().zip(loops.iter()) {
        match &le {
            SimLoopEval::Validated { stats, .. } => {
                agg.validated += 1;
                agg.dynamic_cycles += l.weight() * stats.cycles as f64;
                agg.steady_cycles += l.weight() * stats.steady_state_cycles as f64;
                agg.masked_lanes += stats.masked_lanes;
                agg.cross_block_reads += stats.cross_block_reads;
            }
            SimLoopEval::Divergent { .. } => agg.divergent += 1,
            SimLoopEval::Failed { .. } => agg.failed += 1,
        }
        agg.per_loop.push(le);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_workload::{corpus, kernels};

    #[test]
    fn kernels_simulate_and_validate() {
        let ev = Evaluator::new(kernels::all());
        let cfg = Configuration::monolithic(2, 2, 128).unwrap();
        // Differential: interpreter and lowered bytecode in lock-step.
        let r = simulate_corpus(
            &ev,
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
            None,
            Backend::Differential,
        );
        assert!(r.all_validated(), "divergent: {}", r.divergent);
        assert_eq!(r.failed, 0);
        assert_eq!(r.validated, 12);
        // Dynamic cycles always include the fill transient.
        assert!(r.dynamic_cycles >= r.steady_cycles * 0.99);
    }

    #[test]
    fn small_corpus_validates_across_configs() {
        let ev = Evaluator::new(corpus::generate(&corpus::CorpusSpec::small(12, 5)));
        for spec in ["1w1(128:1)", "1w4(128:1)", "4w2(128:1)"] {
            let cfg: Configuration = spec.parse().unwrap();
            let r = simulate_corpus(
                &ev,
                &cfg,
                CycleModel::Cycles4,
                &EvalOptions::default(),
                None,
                Backend::Differential,
            );
            assert!(r.all_validated(), "{spec}: {} divergent", r.divergent);
        }
    }

    #[test]
    fn simulation_warm_starts_from_persisted_summaries() {
        use widening_pipeline::StoreConfig;
        let dir = std::env::temp_dir().join(format!("widening-simsum-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let loops = corpus::generate(&corpus::CorpusSpec::small(10, 5));
        let cfg = Configuration::monolithic(2, 2, 128).unwrap();

        let cold_ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&dir));
        let cold = simulate_corpus(
            &cold_ev,
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
            None,
            Backend::Interpret,
        );
        assert!(cold.all_validated());
        assert_eq!(cold.warm_hits, 0, "cold run must execute");

        // A fresh evaluator (new process, as far as the store can
        // tell): every validated loop replays from its summary, and the
        // aggregates are bitwise identical.
        let warm_ev = Evaluator::new(loops).with_store(StoreConfig::persistent(&dir));
        let warm = simulate_corpus(
            &warm_ev,
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
            None,
            Backend::Interpret,
        );
        assert_eq!(warm.warm_hits, warm.validated);
        assert_eq!(warm.validated, cold.validated);
        assert_eq!(warm.per_loop, cold.per_loop);
        assert_eq!(warm.dynamic_cycles.to_bits(), cold.dynamic_cycles.to_bits());
        assert_eq!(warm.steady_cycles.to_bits(), cold.steady_cycles.to_bits());
        // The simulator itself never ran: no schedule stage was even
        // requested live (everything the warm path needs is the summary).
        assert_eq!(warm_ev.pipeline().stage_counts().live_runs(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn trip_override_shrinks_runs() {
        let ev = Evaluator::new(kernels::all());
        let cfg = Configuration::monolithic(1, 2, 128).unwrap();
        let short = simulate_corpus(
            &ev,
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
            Some(4),
            Backend::Lowered,
        );
        let long = simulate_corpus(
            &ev,
            &cfg,
            CycleModel::Cycles4,
            &EvalOptions::default(),
            Some(64),
            Backend::Lowered,
        );
        assert!(short.dynamic_cycles < long.dynamic_cycles);
        // Short trips amplify the transient share.
        assert!(short.transient_ratio() >= long.transient_ratio());
        // Both trip counts replayed one memoized schedule per loop —
        // and, on the lowered backend, one memoized program per loop:
        // trip overrides share the trip-independent bytecode.
        let c = ev.pipeline().stage_counts();
        assert_eq!(c.schedule_runs, kernels::all().len() as u64);
        assert_eq!(c.lower_runs, kernels::all().len() as u64);
        assert_eq!(c.lower_requests, 2 * kernels::all().len() as u64);
    }
}
