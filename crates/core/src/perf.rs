//! The `repro perf` subcommand family — the repo's perf ledger.
//!
//! Three verbs over the machine-readable perf report
//! ([`widening_obs::report`]):
//!
//! * `perf record` runs the standard sweep suite `--reps` times
//!   (fresh evaluator per repetition, so every sample is a cold
//!   compile) under an installed span recorder, and writes one
//!   versioned `BENCH_<stamp>.json` capturing wall-time probes,
//!   per-stage latency percentiles, store counters, per-unit
//!   `(loop × config)` wall times, and fleet-event totals.
//! * `perf compare BASE CAND` diffs two recorded reports probe by
//!   probe with the noise-aware min-of-N gate
//!   ([`widening_obs::compare`]) and exits nonzero on any regression —
//!   the CI perf gate.
//! * `perf calibrate` joins the analytic
//!   [`widening_cost::sweep_priority`] mass against measured unit
//!   latencies (either a fresh traced run or the units of an existing
//!   `BENCH_*.json` via `--from`), reporting rank correlation, the
//!   fitted ns-per-priority coefficient and per-loop relative error;
//!   `--out` writes the calibration JSON that `repro --cost-model`
//!   loads back as a [`widening_cost::CalibratedModel`].
//!
//! Everything here is presentation: the codecs, the gate and the
//! fitting live in `widening-obs` / `widening-cost` where they are
//! unit- and property-tested.

use std::process::ExitCode;
use std::time::Instant;

use widening_obs as obs;
use widening_obs::metrics::MetricValue;
use widening_obs::report::{compare, CompareConfig, PerfReport, Verdict};
use widening_workload::corpus::{generate, CorpusSpec};

use crate::evaluate::Evaluator;
use crate::experiments::sweep_grid_specs;
use crate::report::Report;

/// Default loop count for the quick perf suite: big enough that the
/// sweep dominates process startup, small enough for a CI smoke job.
const DEFAULT_QUICK: usize = 48;

/// Corpus seed shared by every perf run, so baselines recorded
/// yesterday measure the same work as candidates recorded today.
const PERF_SEED: u64 = 1998;

/// Entry point for `repro perf …`; returns the process exit code.
#[must_use]
pub fn perf_main(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("record") => record_main(&args[1..]),
        Some("compare") => compare_main(&args[1..]),
        Some("calibrate") => calibrate_main(&args[1..]),
        _ => usage("perf needs a subcommand: record | compare | calibrate"),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: repro perf record [--quick[=N]] [--reps R] [--threads N] [--out FILE]");
    eprintln!("       repro perf compare BASELINE CANDIDATE [--max-ratio R] [--abs-floor-ms MS]");
    eprintln!(
        "       repro perf calibrate [--quick[=N]] [--threads N] [--from BENCH.json] [--out FILE]"
    );
    ExitCode::FAILURE
}

fn ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Seconds since the Unix epoch — the default `BENCH_<stamp>` suffix.
fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Runs the standard suite once on a fresh evaluator, pushing one
/// sample per probe into `report`, and returns the repetition's final
/// metrics snapshot.
fn run_suite(
    report: &mut PerfReport,
    loops: usize,
    threads: Option<usize>,
) -> Vec<(String, MetricValue)> {
    let t = Instant::now();
    let corpus = generate(&CorpusSpec::small(loops, PERF_SEED));
    report.push_sample("corpus.generate.wall_ns", ns(t.elapsed()));

    let mut eval = Evaluator::new(corpus);
    if let Some(n) = threads {
        eval = eval.with_threads(n);
    }
    let specs = sweep_grid_specs();
    let t = Instant::now();
    let _ = eval.sweep_specs(&specs);
    report.push_sample("sweep.wall_ns", ns(t.elapsed()));

    let t = Instant::now();
    let _ = eval.baseline_256();
    report.push_sample("baseline256.wall_ns", ns(t.elapsed()));

    // Both execution backends over the paper's winning configuration:
    // the interpreter and the lowered bytecode (lowering included in
    // the first lowered sample, memoized for the rest). The pair is the
    // ledger's record of the lowered backend's speedup.
    let sim_cfg: widening_machine::Configuration =
        "4w2(128:1)".parse().expect("static configuration");
    for backend in [
        widening_sim::Backend::Interpret,
        widening_sim::Backend::Lowered,
    ] {
        let t = Instant::now();
        let sim = crate::simulate::simulate_corpus(
            &eval,
            &sim_cfg,
            widening_machine::CycleModel::Cycles4,
            &crate::evaluate::EvalOptions::default(),
            None,
            backend,
        );
        report.push_sample(&format!("simulate.{backend}.wall_ns"), ns(t.elapsed()));
        assert!(sim.all_validated(), "perf suite simulation diverged");
    }

    // Per-stage compute totals as probes too: the gate then localises a
    // regression to the stage that slowed down, not just "the sweep".
    let snapshot = eval.pipeline().metrics().snapshot();
    for (name, value) in &snapshot {
        if let MetricValue::Histogram { sum, .. } = value {
            report.push_sample(&format!("{name}.sum"), *sum);
        }
    }
    snapshot
}

/// `repro perf record` — run the suite and write the perf report.
fn record_main(args: &[String]) -> ExitCode {
    let mut loops = DEFAULT_QUICK;
    let mut reps: usize = 2;
    let mut threads: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => loops = DEFAULT_QUICK,
            "--reps" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => reps = n,
                _ => return usage("perf record --reps needs a positive integer"),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage("perf record --threads needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f.clone()),
                None => return usage("perf record --out needs a file"),
            },
            a if a.starts_with("--quick=") => match a["--quick=".len()..].parse() {
                Ok(n) if n >= 1 => loops = n,
                _ => return usage("perf record --quick=N needs a positive integer"),
            },
            a if a.starts_with("--reps=") => match a["--reps=".len()..].parse() {
                Ok(n) if n >= 1 => reps = n,
                _ => return usage("perf record --reps=N needs a positive integer"),
            },
            a => return usage(&format!("unknown perf record flag {a}")),
        }
    }

    // One recorder across all repetitions: units from every rep feed
    // the calibration joint, and fleet instants (none in-process) stay
    // zero rather than absent.
    let recorder = obs::Recorder::new("repro-perf");
    obs::install(&recorder);
    obs::set_thread_label("main");
    let mut report = PerfReport::new();
    let mut last_snapshot = Vec::new();
    for _ in 0..reps {
        last_snapshot = run_suite(&mut report, loops, threads);
    }
    obs::uninstall();
    report.absorb_snapshot(&last_snapshot);
    report.absorb_traces(&[recorder.snapshot()]);

    let when = stamp();
    report.meta.insert("stamp-unix-s".into(), when.to_string());
    report
        .meta
        .insert("suite".into(), "sweep+baseline256".into());
    report.meta.insert("loops".into(), loops.to_string());
    report.meta.insert("seed".into(), PERF_SEED.to_string());
    report.meta.insert("reps".into(), reps.to_string());
    if let Some(n) = threads {
        report.meta.insert("threads".into(), n.to_string());
    }

    let path = out.unwrap_or_else(|| format!("BENCH_{when}.json"));
    if let Err(e) = report.write_file(std::path::Path::new(&path)) {
        eprintln!("error: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "perf-record: wrote {path} probes={} stages={} counters={} units={}",
        report.probes.len(),
        report.stages.len(),
        report.counters.len(),
        report.units.len()
    );
    ExitCode::SUCCESS
}

/// `repro perf compare` — the regression gate over two reports.
fn compare_main(args: &[String]) -> ExitCode {
    let mut files: Vec<&String> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-ratio" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if r >= 1.0 => cfg.max_ratio = r,
                _ => return usage("perf compare --max-ratio needs a ratio ≥ 1.0"),
            },
            "--abs-floor-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) => cfg.abs_floor_ns = ms.saturating_mul(1_000_000),
                None => return usage("perf compare --abs-floor-ms needs milliseconds"),
            },
            a if a.starts_with('-') => return usage(&format!("unknown perf compare flag {a}")),
            _ => files.push(arg),
        }
    }
    let [base_path, cand_path] = files[..] else {
        return usage("perf compare needs exactly BASELINE and CANDIDATE files");
    };
    let read = |path: &String| match PerfReport::read_file(std::path::Path::new(path)) {
        Ok(r) => Some(r),
        Err(why) => {
            eprintln!("error: {path}: {why}");
            None
        }
    };
    let (Some(base), Some(cand)) = (read(base_path), read(cand_path)) else {
        return ExitCode::FAILURE;
    };

    let cmp = compare(&base, &cand, &cfg);
    let us = |n: u64| format!("{:.1}", n as f64 / 1_000.0);
    let mut r = Report::new(format!("Perf compare — {base_path} → {cand_path}")).with_columns([
        "probe",
        "base min µs",
        "cand min µs",
        "ratio",
        "verdict",
    ]);
    for row in &cmp.rows {
        let ratio = if row.base_min_ns == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", row.cand_min_ns as f64 / row.base_min_ns as f64)
        };
        r.push_row([
            row.name.clone(),
            us(row.base_min_ns),
            us(row.cand_min_ns),
            ratio,
            match row.verdict {
                Verdict::Ok => "ok".into(),
                Verdict::Regressed => "REGRESSED".into(),
                Verdict::Improved => "improved".into(),
            },
        ]);
    }
    r.push_note(format!(
        "gate: candidate min > base min × {} + {} ms",
        cfg.max_ratio,
        cfg.abs_floor_ns / 1_000_000
    ));
    if !cmp.missing.is_empty() {
        r.push_note(format!(
            "missing from candidate: {}",
            cmp.missing.join(", ")
        ));
    }
    if !cmp.added.is_empty() {
        r.push_note(format!("new in candidate: {}", cmp.added.join(", ")));
    }
    println!("{r}");
    println!(
        "perf-compare: probes={} regressions={} improvements={} missing={} added={}",
        cmp.rows.len(),
        cmp.regressions(),
        cmp.improvements(),
        cmp.missing.len(),
        cmp.added.len()
    );
    if cmp.regressions() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro perf calibrate` — fit the cost model against measured units.
fn calibrate_main(args: &[String]) -> ExitCode {
    let mut loops = DEFAULT_QUICK;
    let mut threads: Option<usize> = None;
    let mut from: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => loops = DEFAULT_QUICK,
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage("perf calibrate --threads needs a positive integer"),
            },
            "--from" => match it.next() {
                Some(f) => from = Some(f.clone()),
                None => return usage("perf calibrate --from needs a BENCH_*.json file"),
            },
            "--out" => match it.next() {
                Some(f) => out = Some(f.clone()),
                None => return usage("perf calibrate --out needs a file"),
            },
            a if a.starts_with("--quick=") => match a["--quick=".len()..].parse() {
                Ok(n) if n >= 1 => loops = n,
                _ => return usage("perf calibrate --quick=N needs a positive integer"),
            },
            a => return usage(&format!("unknown perf calibrate flag {a}")),
        }
    }

    let units = match &from {
        Some(path) => match PerfReport::read_file(std::path::Path::new(path)) {
            Ok(r) => r.units,
            Err(why) => {
                eprintln!("error: {path}: {why}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            // A fresh traced run of the standard suite.
            let recorder = obs::Recorder::new("repro-perf");
            obs::install(&recorder);
            obs::set_thread_label("main");
            let mut scratch = PerfReport::new();
            let _ = run_suite(&mut scratch, loops, threads);
            obs::uninstall();
            scratch.absorb_traces(&[recorder.snapshot()]);
            scratch.units
        }
    };
    if units.is_empty() {
        eprintln!("error: no sweep units to calibrate against");
        return ExitCode::FAILURE;
    }

    let cal = widening_cost::calibrate(&units);
    let us = |n: u64| format!("{:.1}", n as f64 / 1_000.0);
    let mut r =
        Report::new("Cost-model calibration — measured vs analytic priority").with_columns([
            "config",
            "units",
            "median µs",
            "mean µs",
            "analytic",
            "calibrated",
        ]);
    for p in &cal.points {
        let cfg = match p.registers {
            Some(z) => format!("{}w{}({z})", p.replication, p.width),
            None => format!("{}w{}(peak)", p.replication, p.width),
        };
        r.push_row([
            cfg,
            p.units.to_string(),
            us(p.median_ns),
            us(p.mean_ns),
            p.analytic_priority.to_string(),
            p.calibrated_priority.to_string(),
        ]);
    }
    r.push_note(format!(
        "fit: {:.1} ns per analytic priority unit (least squares through the origin)",
        cal.scale_ns_per_priority
    ));
    r.push_note(format!(
        "per-loop mass relative error: mean {:.3}, worst {:.3}",
        cal.mean_loop_rel_err, cal.max_loop_rel_err
    ));
    println!("{r}");
    println!(
        "perf-calibrate: units={} loops={} points={} rank-correlation={:.4} \
         scale-ns-per-priority={:.1} mean-loop-rel-err={:.4}",
        cal.unit_count,
        cal.loop_count,
        cal.points.len(),
        cal.rank_correlation,
        cal.scale_ns_per_priority,
        cal.mean_loop_rel_err
    );
    if let Some(path) = out {
        if let Err(e) = cal.write_file(std::path::Path::new(&path)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("perf-calibrate: wrote {path} (load with repro --cost-model {path})");
    }
    ExitCode::SUCCESS
}
