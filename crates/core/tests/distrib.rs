//! Distributed-sweep integration: bitwise equality of merged
//! aggregates against the in-process sweep, fault injection (a worker
//! killed mid-shard / a dropped lease), and the real `repro worker`
//! process driven over a shared cache directory.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use widening::distrib::{
    run_on_queue, run_worker, CoordinatorConfig, JobQueue, Launcher, ShardReport, SweepManifest,
    WorkerConfig,
};
use widening::distributed::{merge_published, sweep_distributed, DistributedOptions};
use widening::{CorpusEval, EvalOptions, Evaluator};
use widening_machine::{Configuration, CycleModel};
use widening_pipeline::{PointSpec, StageCounts, StoreConfig};
use widening_workload::corpus::{generate, CorpusSpec};

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "widening-core-distrib-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The test grid: includes a pressure-failing point (8w1 on a 32-RF)
/// so failure records cross the wire too.
fn specs() -> Vec<PointSpec> {
    ["1w1(64:1)", "2w2(64:1)", "4w2(128:1)", "8w1(32:1)"]
        .iter()
        .map(|s| {
            PointSpec::scheduled(
                &s.parse::<Configuration>().unwrap(),
                CycleModel::Cycles4,
                EvalOptions::default(),
            )
        })
        .collect()
}

fn assert_bitwise_equal(distributed: &CorpusEval, single: &CorpusEval, tag: &str) {
    assert_eq!(
        distributed.total_cycles.to_bits(),
        single.total_cycles.to_bits(),
        "{tag}: total_cycles"
    );
    assert_eq!(
        distributed.total_kernel_words.to_bits(),
        single.total_kernel_words.to_bits(),
        "{tag}: total_kernel_words"
    );
    assert_eq!(
        distributed.total_static_words.to_bits(),
        single.total_static_words.to_bits(),
        "{tag}: total_static_words"
    );
    assert_eq!(distributed.per_loop, single.per_loop, "{tag}: per_loop");
    assert_eq!(distributed.failed, single.failed, "{tag}: failed");
    assert_eq!(distributed.at_mii, single.at_mii, "{tag}: at_mii");
    assert_eq!(distributed.spill_ops, single.spill_ops, "{tag}: spill_ops");
}

#[test]
fn distributed_sweep_is_bitwise_equal_to_single_process() {
    let cache = temp_dir("bitwise");
    let loops = generate(&CorpusSpec::small(18, 9));
    let specs = specs();

    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let distributed = sweep_distributed(
        &eval,
        &specs,
        &DistributedOptions::new(2),
        &Launcher::InProcess,
    )
    .expect("distributed sweep completes");
    assert_eq!(distributed.fallback_units, 0);

    // An entirely separate evaluator (no cache at all) computes the
    // reference in-process.
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in distributed.aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    // The 8w1(32:1) point really exercised the failure path.
    assert!(distributed.aggregates[3].failed > 0);

    // Merged aggregates were installed in the evaluator's memo: a
    // subsequent query is a pure cache hit (same Arc).
    let again = eval.sweep_specs(&specs);
    for (d, a) in distributed.aggregates.iter().zip(&again) {
        assert!(Arc::ptr_eq(d, a), "merge must prime the aggregate memo");
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn killed_worker_is_requeued_and_the_merge_stays_bitwise_equal() {
    // Fault injection per the protocol's own failure model: a worker
    // claims a shard and dies without renewing its lease (exactly what
    // a SIGKILL mid-shard leaves behind). The coordinator must requeue
    // it and the merged sweep must still match single-process bitwise.
    let cache = temp_dir("fault");
    let loops = generate(&CorpusSpec::small(15, 21));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));

    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 5);
    let queue_dir = cache.join("queue").join("fault-injection");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    let victim = queue.claim_next("victim-worker").expect("claims a shard");

    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.lease_ttl = Duration::from_millis(120);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("fleet survives the kill");
    assert!(
        run.requeues >= 1,
        "the victim's expired lease must be requeued"
    );
    assert!(queue.is_done(victim), "the victim's shard was reassigned");
    assert!(queue.all_done());

    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0, "every unit was published despite the kill");
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn real_worker_process_survives_sigkill_via_requeue() {
    // The process-level version: spawn the actual `repro worker`
    // binary, kill it hard as soon as it has claimed work, then let a
    // fresh fleet (plus coordinator requeue) finish the queue.
    let cache = temp_dir("sigkill");
    let loops = generate(&CorpusSpec::small(12, 33));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));

    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 4);
    let queue_dir = cache.join("queue").join("sigkill");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("worker")
        .arg("--queue")
        .arg(&queue_dir)
        .arg("--cache-dir")
        .arg(&cache)
        .arg("--threads")
        .arg("1")
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawns repro worker");
    // Kill as soon as the worker holds a claim — mid-shard with high
    // probability; even a fully processed shard leaves the test sound
    // (the claim outlives the kill either way, since a killed worker
    // never writes its completion marker for an unfinished shard).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while queue.remaining() == manifest.shards.len()
        && (0..queue.shard_count()).all(|s| !queue_dir.join(format!("shard-{s}.claim")).exists())
    {
        assert!(std::time::Instant::now() < deadline, "worker never claimed");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.lease_ttl = Duration::from_millis(150);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("queue drains");
    assert!(queue.all_done());
    // The kill either left an expired claim (requeued) or a completed
    // shard; both must end in a total, bitwise-equal merge.
    let (aggregates, _fallback) = merge_published(&eval, &specs, Some(&manifest));
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    drop(run);
    let _ = std::fs::remove_dir_all(cache);
}

/// Counts the published files under one exchange kind of a cache
/// directory — the on-disk proxy for result-publish syscalls (each file
/// is one create + write + rename round trip).
fn published_files(cache: &std::path::Path, kind: &str) -> usize {
    fn walk(dir: &std::path::Path, count: &mut usize) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, count);
            } else if path.extension().is_some_and(|e| e == "bin") {
                *count += 1;
            }
        }
    }
    let mut count = 0;
    walk(&cache.join("v1").join(kind), &mut count);
    count
}

#[test]
fn work_stealing_splits_a_big_shard_and_merges_bitwise_equal() {
    // One big shard, two standalone workers: whoever loses the claim
    // race steals the surplus tail instead of idling, and the merged
    // aggregates still match single-process bitwise.
    let cache = temp_dir("steal");
    let loops = generate(&CorpusSpec::small(15, 9));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 1);
    let unit_count = manifest.shards[0].len();
    let queue_dir = cache.join("queue").join("steal");
    let _queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let worker_cfg = |tag: &str| {
        let mut cfg = WorkerConfig::new(&queue_dir, &cache);
        cfg.tag = tag.to_string();
        cfg.lease_ttl = Duration::from_millis(300);
        cfg.poll = Duration::from_millis(5);
        cfg.surplus_after = 2;
        cfg
    };
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| run_worker(&worker_cfg("worker-a")).expect("a finishes"));
        let hb = scope.spawn(|| run_worker(&worker_cfg("worker-b")).expect("b finishes"));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a.shards_completed + b.shards_completed, 1);
    // Recursive halving: the first steal takes the tail half, and the
    // owner may re-offer (and the idle worker re-steal) further halves
    // of whatever it still holds — at least one steal of at least the
    // original tail is guaranteed.
    assert!(a.steals + b.steals >= 1, "the idle worker must steal");
    let stolen = a.stolen_units + b.stolen_units;
    assert!(
        stolen >= unit_count / 2,
        "at least the tail half was stolen (got {stolen} of {unit_count})"
    );

    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0);
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn dead_thief_is_reclaimed_by_the_owner_and_merges_bitwise_equal() {
    // A thief claims the stolen tail and dies silently (SIGKILL
    // mid-steal): the owner's lease watch must stall out, reclaim the
    // stolen units itself, and complete the shard — ending in a
    // bitwise-equal merge.
    let cache = temp_dir("deadthief");
    let loops = generate(&CorpusSpec::small(12, 17));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 1);
    let queue_dir = cache.join("queue").join("deadthief");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    // Stage the theft BEFORE the owner starts: the offer is on disk and
    // already claimed by a thief that will never heartbeat, so the
    // owner deterministically skips the tail and must reclaim it.
    let units = &manifest.shards[0];
    let split = units.len() / 2;
    assert!(queue.publish_surplus(0, split as u32, &units[split..]));
    assert_eq!(
        queue.claim_steal(0, "doomed-thief").as_deref(),
        Some(&units[split..])
    );

    let mut cfg = WorkerConfig::new(&queue_dir, &cache);
    cfg.lease_ttl = Duration::from_millis(150);
    cfg.poll = Duration::from_millis(5);
    let summary = run_worker(&cfg).expect("owner survives the dead thief");
    assert_eq!(summary.shards_completed, 1);
    assert!(queue.all_done());

    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0, "the reclaimed tail was published");
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn recursive_halving_reoffers_the_tail_and_survives_a_dead_second_thief() {
    // Round 0 of the steal protocol is staged as already *resolved*
    // before the owner starts: offered, claimed, and carrying a durable
    // sub-report. The owner must fold it on its first heartbeat and —
    // recursive halving — re-offer half of what it still holds as a
    // round-1 surplus under fresh marker names. A second thief claims
    // that round and dies silently; the owner's lease watch reclaims it
    // and the shard still completes.
    let cache = temp_dir("halving");
    let loops = generate(&CorpusSpec::small(12, 31));
    let specs = specs();
    let manifest = SweepManifest::partition(loops, specs, 1);
    let queue_dir = cache.join("queue").join("halving");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let units = manifest.shards[0].clone();
    let n = units.len();
    let s0 = n - n / 2;
    assert!(queue.publish_surplus_round(0, 0, s0 as u32, &units[s0..]));
    assert_eq!(
        queue.claim_steal_round(0, 0, "fast-thief").as_deref(),
        Some(&units[s0..])
    );
    let fake = ShardReport {
        shard: 0,
        units: (n - s0) as u32,
        result_hits: 0,
        stolen: 0,
        counts: StageCounts::zero(),
    };
    queue.complete_sub_round(0, 0, &fake.encode());

    let mut cfg = WorkerConfig::new(&queue_dir, &cache);
    cfg.lease_ttl = Duration::from_millis(150);
    cfg.poll = Duration::from_millis(5);
    cfg.surplus_after = 2;
    let (summary, second) = std::thread::scope(|scope| {
        let owner = scope.spawn(|| run_worker(&cfg).expect("owner survives both thieves"));
        // Wait for the fold to publish the round-1 offer, then claim it
        // as a thief that will never heartbeat.
        let second = loop {
            if queue.latest_surplus_round(0) == Some(1) {
                break queue.claim_steal_round(0, 1, "doomed-second-thief");
            }
            if queue.all_done() {
                break None;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        (owner.join().unwrap(), second)
    });
    assert_eq!(summary.shards_completed, 1);
    assert!(queue.all_done());
    let second = second.expect("round 1 must be offered and claimable");
    assert!(!second.is_empty() && second.len() < s0);
    assert_eq!(*second.last().unwrap(), units[s0 - 1]);

    let report = queue
        .completion(0)
        .and_then(|b| ShardReport::decode(&b))
        .expect("decodable completion");
    assert_eq!(report.units, n as u32);
    // Only round 0's folded sub-report counts as stolen: round 1's
    // thief died, so the owner reclaimed those units itself.
    assert_eq!(report.stolen, (n - s0) as u32);
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn idle_workers_retire_on_scale_down_tokens_and_the_merge_is_unaffected() {
    // One tiny shard (below the steal threshold) and a three-worker
    // fleet: whoever loses the claim race has nothing to claim and
    // nothing to steal. The coordinator's mass estimate says one worker
    // suffices, so it posts retirement tokens and the idle workers exit
    // early instead of polling until the owner finishes.
    let cache = temp_dir("scaledown");
    let loops = generate(&CorpusSpec::small(1, 41));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 1);
    assert!(
        manifest.shards[0].len() < 8,
        "the shard must be too small to publish a steal offer"
    );
    let queue_dir = cache.join("queue").join("scaledown");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let mut cfg = CoordinatorConfig::new(&cache, 3);
    cfg.max_workers = 3;
    // A huge per-worker budget: the tail never justifies more than one
    // worker, so the two spares are told to go home.
    cfg.mass_per_worker = Some(u64::MAX);
    cfg.lease_ttl = Duration::from_millis(500);
    cfg.poll = Duration::from_millis(5);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("fleet drains");
    assert!(queue.all_done());
    assert!(
        run.scale_downs >= 1,
        "at least one idle worker must retire early (got {})",
        run.scale_downs
    );
    assert_eq!(run.scale_ups, 0);

    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0);
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn chaos_killed_worker_with_autoscaling_still_merges_bitwise_equal() {
    // The CI chaos path, in-process: worker 0 abandons everything after
    // a few units (silent lease, no marker); the coordinator requeues
    // its shard and autoscales extra workers while the remaining-mass
    // estimate is high. The merge must not care.
    let cache = temp_dir("chaos");
    let loops = generate(&CorpusSpec::small(14, 23));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 4);
    let queue_dir = cache.join("queue").join("chaos");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let mut cfg = CoordinatorConfig::new(&cache, 1);
    cfg.max_workers = 3;
    cfg.mass_per_worker = Some(1); // always worth another pair of hands
    cfg.lease_ttl = Duration::from_millis(150);
    cfg.poll = Duration::from_millis(5);
    cfg.chaos_die_after_units = Some(3);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("fleet survives chaos");
    assert!(queue.all_done());
    assert!(run.scale_ups >= 1, "the fleet must have grown");
    assert!(
        run.requeues >= 1,
        "the chaos victim's shard must be requeued"
    );

    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0);
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn undecodable_done_marker_is_requeued_not_merged() {
    // The fsync satellite's coordinator half: a present-but-garbage
    // completion marker (what a pre-fsync host crash could leave) must
    // be treated as incomplete — reset, re-run, replaced by a valid
    // marker — never folded into the merge.
    let cache = temp_dir("torn");
    let loops = generate(&CorpusSpec::small(10, 29));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 3);
    let queue_dir = cache.join("queue").join("torn");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    // Shard 1 "completed" on a host that crashed before its data hit
    // the platter: the marker exists but holds garbage.
    std::fs::write(queue_dir.join("shard-1.done"), b"\x00\x01torn").expect("inject");

    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.lease_ttl = Duration::from_millis(150);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("completes");
    assert!(run.requeues >= 1, "the torn marker counts as a requeue");
    let report = run.shard_reports[1].expect("shard 1 re-ran and reported validly");
    assert_eq!(report.units as usize, manifest.shards[1].len());

    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0);
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn mixed_batch_and_per_unit_caches_merge_identically() {
    // A pre-batch cache (per-unit records only) must merge bitwise-
    // equal with no fallback; a batch-mode fleet over the same cache
    // replays those records as hits and adds batch records on top —
    // and the batch-first merge still agrees bit for bit.
    let cache = temp_dir("mixed");
    let loops = generate(&CorpusSpec::small(11, 31));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 2);
    let reference = Evaluator::new(loops).sweep_specs(&specs);

    // Legacy fleet: per-unit records only.
    let legacy_queue = cache.join("queue").join("legacy");
    let queue = JobQueue::create(&legacy_queue, &manifest).expect("queue");
    let mut cfg = WorkerConfig::new(&legacy_queue, &cache);
    cfg.batch_results = false;
    let summary = run_worker(&cfg).expect("legacy worker");
    assert_eq!(summary.shards_completed, 2);
    assert_eq!(published_files(&cache, "batch"), 0, "legacy publishes none");
    let per_unit_files = published_files(&cache, "result");
    assert_eq!(per_unit_files, manifest.unit_count());
    drop(queue);
    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    assert_eq!(fallback, 0, "per-unit tier alone serves the merge");
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("legacy {spec:?}"));
    }

    // Batch fleet over the same (mixed) cache: replays the per-unit
    // records, publishes batch records on top.
    let batch_queue = cache.join("queue").join("batch");
    let _ = JobQueue::create(&batch_queue, &manifest).expect("queue");
    let mut cfg = WorkerConfig::new(&batch_queue, &cache);
    cfg.batch_results = true;
    let summary = run_worker(&cfg).expect("batch worker");
    assert_eq!(summary.result_hits, manifest.unit_count(), "all replayed");
    assert!(published_files(&cache, "batch") >= 2, "batches published");
    // A fresh evaluator (cold memo) merging batch-first must agree.
    let eval2 = Evaluator::new(eval.loops().to_vec()).with_store(StoreConfig::persistent(&cache));
    let (aggregates, fallback) = merge_published(&eval2, &specs, Some(&manifest));
    assert_eq!(fallback, 0);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("mixed {spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn stale_manifest_after_extend_falls_back_to_per_unit_tier() {
    // merge_published with a manifest whose corpus no longer matches
    // the evaluator's (the PR-3 incremental path grew it since the
    // sweep) must not mis-index batch records by unit id: the batch
    // tier is skipped, old loops replay from the per-unit content
    // addresses, and only the appended loops recompile locally.
    let cache = temp_dir("stale");
    let full = generate(&CorpusSpec::small(12, 43));
    let (initial, appended) = full.split_at(10);
    let specs = specs();
    let eval = Evaluator::new(initial.to_vec()).with_store(StoreConfig::persistent(&cache));
    let manifest = SweepManifest::partition(initial.to_vec(), specs.clone(), 2);
    // Populate the per-unit tier (and run the fleet) on the old corpus.
    let legacy_queue = cache.join("queue").join("stale");
    let _ = JobQueue::create(&legacy_queue, &manifest).expect("queue");
    let mut cfg = WorkerConfig::new(&legacy_queue, &cache);
    cfg.batch_results = false;
    run_worker(&cfg).expect("fleet");

    eval.extend(appended.to_vec());
    let loops = full.clone();
    let (aggregates, fallback) = merge_published(&eval, &specs, Some(&manifest));
    // At most the appended loops recompile (fewer when an appended body
    // duplicates an existing loop's content address).
    assert!(
        fallback <= 2 * specs.len(),
        "only appended loops may recompile, got {fallback}"
    );
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("stale {spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn batch_records_cut_publish_files_at_least_tenfold() {
    // The acceptance bar: on a ≥ 50-unit grid, batch publication must
    // write ≥ 10× fewer result-tier files (one create+write+rename
    // syscall round trip each) than the per-unit protocol.
    let loops = generate(&CorpusSpec::small(15, 41));
    let specs = specs();
    let unit_count = loops.len() * specs.len();
    assert!(unit_count >= 50, "grid too small to be meaningful");

    let run_fleet = |batch: bool, tag: &str| -> usize {
        let cache = temp_dir(tag);
        let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 2);
        let queue_dir = cache.join("queue").join(tag);
        let _ = JobQueue::create(&queue_dir, &manifest).expect("queue");
        let mut cfg = WorkerConfig::new(&queue_dir, &cache);
        cfg.batch_results = batch;
        let summary = run_worker(&cfg).expect("fleet");
        assert_eq!(summary.units, unit_count);
        let files = published_files(&cache, if batch { "batch" } else { "result" });
        let _ = std::fs::remove_dir_all(cache);
        files
    };
    let per_unit = run_fleet(false, "prunit");
    let batched = run_fleet(true, "pbatch");
    assert_eq!(per_unit, unit_count);
    assert!(
        per_unit >= 10 * batched.max(1),
        "batching must cut publishes ≥ 10×: {per_unit} per-unit vs {batched} batch files"
    );
    let _ = (per_unit, batched);
}

#[test]
fn merged_fleet_timeline_has_every_workers_spans_exactly_once_after_chaos() {
    // The observability acceptance path: a chaos-killed worker process
    // (silent lease after 3 units, shard requeued) plus autoscaled
    // replacements, each writing a binary span trace next to its
    // results. The merged Chrome timeline must carry one process track
    // per spawned worker and every recorded span exactly once — the
    // requeue may re-run units, but it must never duplicate or drop a
    // worker's trace in the merge.
    let cache = temp_dir("timeline");
    let loops = generate(&CorpusSpec::small(14, 23));
    let specs = specs();
    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 4);
    let queue_dir = cache.join("queue").join("timeline");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    let trace_dir = cache.join("traces");

    let mut cfg = CoordinatorConfig::new(&cache, 1);
    cfg.max_workers = 3;
    cfg.mass_per_worker = Some(1); // always worth another pair of hands
    cfg.lease_ttl = Duration::from_millis(500);
    cfg.poll = Duration::from_millis(10);
    cfg.chaos_die_after_units = Some(3);
    cfg.trace_dir = Some(trace_dir.clone());
    let launch = widening::distributed::worker_command(PathBuf::from(env!("CARGO_BIN_EXE_repro")));
    let run = run_on_queue(&queue, &cfg, &Launcher::Spawn(&launch)).expect("fleet survives chaos");
    assert!(queue.all_done());
    assert!(run.requeues >= 1, "the chaos victim must be requeued");

    // One binary trace per spawned worker index (victim included: it
    // abandons its shard but still unwinds and writes its trace).
    let spawned = 1 + run.scale_ups as usize + run.respawns as usize;
    let traces = widening_obs::read_trace_dir(&trace_dir);
    assert_eq!(traces.len(), spawned, "one trace file per spawned worker");

    let json = widening_obs::chrome_trace_json(&traces);
    let doc = widening_obs::analyze::parse_chrome(
        &widening_obs::json::parse(&json).expect("merged timeline parses"),
    )
    .expect("merged timeline validates");

    // Exactly once, per worker: each process appears as one pid track
    // whose span count equals its binary trace's span count, and no
    // two workers share a process name.
    assert_eq!(doc.processes.len(), spawned);
    let mut names: Vec<&str> = doc.processes.values().map(String::as_str).collect();
    names.dedup();
    assert_eq!(names.len(), spawned, "worker process names must be unique");
    let tracks = widening_obs::analyze::per_track_stats(&doc);
    for (index, trace) in traces.iter().enumerate() {
        let pid = index as u64 + 1;
        let recorded: u64 = trace
            .tracks
            .iter()
            .map(|t| t.events.iter().filter(|e| !e.is_instant()).count() as u64)
            .sum();
        let merged: u64 = tracks
            .iter()
            .filter(|t| t.pid == pid)
            .map(|t| t.spans)
            .sum();
        assert_eq!(
            merged, recorded,
            "worker {index} ({}) spans must appear exactly once",
            trace.process
        );
        assert_eq!(trace.dropped, 0, "no ring truncation on this workload");
    }

    // Fleet-wide coverage: every unit of the grid ran somewhere (the
    // requeue re-runs some), and the shard spans cover the queue.
    let unit_spans = doc.spans.iter().filter(|s| s.name == "unit").count();
    assert!(
        unit_spans >= manifest.unit_count(),
        "{unit_spans} unit spans < {} grid units",
        manifest.unit_count()
    );
    let shard_spans = doc.spans.iter().filter(|s| s.name == "shard").count();
    assert!(
        shard_spans >= manifest.shards.len(),
        "{shard_spans} shard spans < {} shards",
        manifest.shards.len()
    );
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn distributed_rerun_replays_published_results() {
    let cache = temp_dir("rerun");
    let loops = generate(&CorpusSpec::small(10, 4));
    let specs = specs();
    let eval = Evaluator::new(loops).with_store(StoreConfig::persistent(&cache));
    let cold = sweep_distributed(
        &eval,
        &specs,
        &DistributedOptions::new(2),
        &Launcher::InProcess,
    )
    .expect("cold");
    assert!(cold.run.worker_counts.live_runs() > 0);
    let warm = sweep_distributed(
        &eval,
        &specs,
        &DistributedOptions::new(2),
        &Launcher::InProcess,
    )
    .expect("warm");
    assert_eq!(warm.run.result_hits, warm.run.units);
    assert_eq!(warm.run.worker_counts.live_runs(), 0);
    for (c, w) in cold.aggregates.iter().zip(&warm.aggregates) {
        assert!(Arc::ptr_eq(c, w), "memoized merge replays the same Arc");
    }
    let _ = std::fs::remove_dir_all(cache);
}
