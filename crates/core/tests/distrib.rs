//! Distributed-sweep integration: bitwise equality of merged
//! aggregates against the in-process sweep, fault injection (a worker
//! killed mid-shard / a dropped lease), and the real `repro worker`
//! process driven over a shared cache directory.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use widening::distrib::{run_on_queue, CoordinatorConfig, JobQueue, Launcher, SweepManifest};
use widening::distributed::{merge_published, sweep_distributed, DistributedOptions};
use widening::{CorpusEval, EvalOptions, Evaluator};
use widening_machine::{Configuration, CycleModel};
use widening_pipeline::{PointSpec, StoreConfig};
use widening_workload::corpus::{generate, CorpusSpec};

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "widening-core-distrib-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The test grid: includes a pressure-failing point (8w1 on a 32-RF)
/// so failure records cross the wire too.
fn specs() -> Vec<PointSpec> {
    ["1w1(64:1)", "2w2(64:1)", "4w2(128:1)", "8w1(32:1)"]
        .iter()
        .map(|s| {
            PointSpec::scheduled(
                &s.parse::<Configuration>().unwrap(),
                CycleModel::Cycles4,
                EvalOptions::default(),
            )
        })
        .collect()
}

fn assert_bitwise_equal(distributed: &CorpusEval, single: &CorpusEval, tag: &str) {
    assert_eq!(
        distributed.total_cycles.to_bits(),
        single.total_cycles.to_bits(),
        "{tag}: total_cycles"
    );
    assert_eq!(
        distributed.total_kernel_words.to_bits(),
        single.total_kernel_words.to_bits(),
        "{tag}: total_kernel_words"
    );
    assert_eq!(
        distributed.total_static_words.to_bits(),
        single.total_static_words.to_bits(),
        "{tag}: total_static_words"
    );
    assert_eq!(distributed.per_loop, single.per_loop, "{tag}: per_loop");
    assert_eq!(distributed.failed, single.failed, "{tag}: failed");
    assert_eq!(distributed.at_mii, single.at_mii, "{tag}: at_mii");
    assert_eq!(distributed.spill_ops, single.spill_ops, "{tag}: spill_ops");
}

#[test]
fn distributed_sweep_is_bitwise_equal_to_single_process() {
    let cache = temp_dir("bitwise");
    let loops = generate(&CorpusSpec::small(18, 9));
    let specs = specs();

    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));
    let distributed = sweep_distributed(
        &eval,
        &specs,
        &DistributedOptions::new(2),
        &Launcher::InProcess,
    )
    .expect("distributed sweep completes");
    assert_eq!(distributed.fallback_units, 0);

    // An entirely separate evaluator (no cache at all) computes the
    // reference in-process.
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in distributed.aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    // The 8w1(32:1) point really exercised the failure path.
    assert!(distributed.aggregates[3].failed > 0);

    // Merged aggregates were installed in the evaluator's memo: a
    // subsequent query is a pure cache hit (same Arc).
    let again = eval.sweep_specs(&specs);
    for (d, a) in distributed.aggregates.iter().zip(&again) {
        assert!(Arc::ptr_eq(d, a), "merge must prime the aggregate memo");
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn killed_worker_is_requeued_and_the_merge_stays_bitwise_equal() {
    // Fault injection per the protocol's own failure model: a worker
    // claims a shard and dies without renewing its lease (exactly what
    // a SIGKILL mid-shard leaves behind). The coordinator must requeue
    // it and the merged sweep must still match single-process bitwise.
    let cache = temp_dir("fault");
    let loops = generate(&CorpusSpec::small(15, 21));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));

    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 5);
    let queue_dir = cache.join("queue").join("fault-injection");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    let victim = queue.claim_next("victim-worker").expect("claims a shard");

    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.lease_ttl = Duration::from_millis(120);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("fleet survives the kill");
    assert!(
        run.requeues >= 1,
        "the victim's expired lease must be requeued"
    );
    assert!(queue.is_done(victim), "the victim's shard was reassigned");
    assert!(queue.all_done());

    let (aggregates, fallback) = merge_published(&eval, &specs);
    assert_eq!(fallback, 0, "every unit was published despite the kill");
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn real_worker_process_survives_sigkill_via_requeue() {
    // The process-level version: spawn the actual `repro worker`
    // binary, kill it hard as soon as it has claimed work, then let a
    // fresh fleet (plus coordinator requeue) finish the queue.
    let cache = temp_dir("sigkill");
    let loops = generate(&CorpusSpec::small(12, 33));
    let specs = specs();
    let eval = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&cache));

    let manifest = SweepManifest::partition(loops.clone(), specs.clone(), 4);
    let queue_dir = cache.join("queue").join("sigkill");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("worker")
        .arg("--queue")
        .arg(&queue_dir)
        .arg("--cache-dir")
        .arg(&cache)
        .arg("--threads")
        .arg("1")
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawns repro worker");
    // Kill as soon as the worker holds a claim — mid-shard with high
    // probability; even a fully processed shard leaves the test sound
    // (the claim outlives the kill either way, since a killed worker
    // never writes its completion marker for an unfinished shard).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while queue.remaining() == manifest.shards.len()
        && (0..queue.shard_count()).all(|s| !queue_dir.join(format!("shard-{s}.claim")).exists())
    {
        assert!(std::time::Instant::now() < deadline, "worker never claimed");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.lease_ttl = Duration::from_millis(150);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("queue drains");
    assert!(queue.all_done());
    // The kill either left an expired claim (requeued) or a completed
    // shard; both must end in a total, bitwise-equal merge.
    let (aggregates, _fallback) = merge_published(&eval, &specs);
    let reference = Evaluator::new(loops).sweep_specs(&specs);
    for ((d, s), spec) in aggregates.iter().zip(&reference).zip(&specs) {
        assert_bitwise_equal(d, s, &format!("{spec:?}"));
    }
    drop(run);
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn distributed_rerun_replays_published_results() {
    let cache = temp_dir("rerun");
    let loops = generate(&CorpusSpec::small(10, 4));
    let specs = specs();
    let eval = Evaluator::new(loops).with_store(StoreConfig::persistent(&cache));
    let cold = sweep_distributed(
        &eval,
        &specs,
        &DistributedOptions::new(2),
        &Launcher::InProcess,
    )
    .expect("cold");
    assert!(cold.run.worker_counts.live_runs() > 0);
    let warm = sweep_distributed(
        &eval,
        &specs,
        &DistributedOptions::new(2),
        &Launcher::InProcess,
    )
    .expect("warm");
    assert_eq!(warm.run.result_hits, warm.run.units);
    assert_eq!(warm.run.worker_counts.live_runs(), 0);
    for (c, w) in cold.aggregates.iter().zip(&warm.aggregates) {
        assert!(Arc::ptr_eq(c, w), "memoized merge replays the same Arc");
    }
    let _ = std::fs::remove_dir_all(cache);
}
