//! Golden regression test: the pipeline-based evaluator must reproduce
//! the seed evaluator's corpus aggregates **bitwise**.
//!
//! The expected values were recorded from the pre-refactor evaluator
//! (the duplicated widen → schedule → allocate → spill chain) on the
//! `CorpusSpec::small(40, 9)` corpus and the named kernels. Any change
//! to these bits means the staged pipeline altered an analytic result —
//! which is either a deliberate modelling change (re-record the values
//! and say so in the commit) or a bug.

use std::sync::Arc;

use widening::{CorpusEval, EvalOptions, Evaluator};
use widening_machine::{Configuration, CycleModel};
use widening_pipeline::StoreConfig;
use widening_workload::{corpus, kernels};

/// `(tag, total_cycles, total_kernel_words, total_static_words, failed,
/// at_mii, spill_ops)` — the f64 aggregates as raw bits.
const GOLDEN: [(&str, u64, u64, u64, usize, usize, u64); 8] = [
    (
        "peak-1w1",
        0x41215e9b2e2d273f,
        0x40a79f44929bff16,
        0x4082780000000000,
        0,
        40,
        0,
    ),
    (
        "peak-2w2",
        0x4107f5fa205f8dbd,
        0x409d8c1bd17b8b6c,
        0x4079500000000000,
        0,
        40,
        0,
    ),
    (
        "peak-4w2",
        0x40fcadddeac77af2,
        0x40917ebabd21a6e3,
        0x406f600000000000,
        0,
        40,
        0,
    ),
    (
        "sched-4w2-64",
        0x410112c6104a462c,
        0x40960736e8402a46,
        0x4072600000000000,
        0,
        22,
        2,
    ),
    (
        "sched-4w1-32",
        0x411d5fdf264b7b9a,
        0x40a3e44b779c67bd,
        0x407ee00000000000,
        0,
        14,
        12,
    ),
    (
        "sched-1w1-256",
        0x41215e9b2e2d273f,
        0x40a79f44929bff16,
        0x4082780000000000,
        0,
        40,
        0,
    ),
    (
        "sched-2w2-64-c2",
        0x41059047288d3ea9,
        0x409b387fd242671c,
        0x4076800000000000,
        0,
        40,
        0,
    ),
    (
        "kernels-2w2-64",
        0x40c85b0000000000,
        0x4054000000000000,
        0x4054000000000000,
        0,
        12,
        0,
    ),
];

fn check(tag: &str, e: &CorpusEval) {
    let (_, cycles, words, static_words, failed, at_mii, spill_ops) = GOLDEN
        .iter()
        .find(|g| g.0 == tag)
        .copied()
        .unwrap_or_else(|| panic!("no golden row {tag}"));
    assert_eq!(
        e.total_cycles.to_bits(),
        cycles,
        "{tag}: total_cycles {} != golden {}",
        e.total_cycles,
        f64::from_bits(cycles)
    );
    assert_eq!(
        e.total_kernel_words.to_bits(),
        words,
        "{tag}: total_kernel_words"
    );
    assert_eq!(
        e.total_static_words.to_bits(),
        static_words,
        "{tag}: total_static_words"
    );
    assert_eq!(e.failed, failed, "{tag}: failed");
    assert_eq!(e.at_mii, at_mii, "{tag}: at_mii");
    assert_eq!(e.spill_ops, spill_ops, "{tag}: spill_ops");
}

#[test]
fn evaluator_reproduces_seed_aggregates_bitwise() {
    let ev = Evaluator::new(corpus::generate(&corpus::CorpusSpec::small(40, 9)));
    check("peak-1w1", &ev.peak(1, 1, CycleModel::Cycles4));
    check("peak-2w2", &ev.peak(2, 2, CycleModel::Cycles4));
    check("peak-4w2", &ev.peak(4, 2, CycleModel::Cycles4));
    let sched = |x, y, z| -> Arc<CorpusEval> {
        let cfg = Configuration::monolithic(x, y, z).unwrap();
        ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default())
    };
    check("sched-4w2-64", &sched(4, 2, 64));
    check("sched-4w1-32", &sched(4, 1, 32));
    check("sched-1w1-256", &ev.baseline_256());
    check("sched-2w2-64-c2", {
        let cfg = Configuration::monolithic(2, 2, 64).unwrap();
        &ev.scheduled(&cfg, CycleModel::Cycles2, &EvalOptions::default())
    });

    let kv = Evaluator::new(kernels::all());
    let cfg = Configuration::monolithic(2, 2, 64).unwrap();
    check(
        "kernels-2w2-64",
        &kv.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default()),
    );
}

#[test]
fn disk_tier_reproduces_seed_aggregates_bitwise() {
    // Artifacts decoded from the persistent store must land on the very
    // same golden bits as live compilation — cold (populating the cache)
    // and warm (a fresh evaluator decoding every stage from disk) alike.
    let dir = std::env::temp_dir().join(format!("widening-golden-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let loops = corpus::generate(&corpus::CorpusSpec::small(40, 9));
    let run = |tag: &str| {
        let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&dir));
        check("peak-2w2", &ev.peak(2, 2, CycleModel::Cycles4));
        let cfg = Configuration::monolithic(4, 2, 64).unwrap();
        check(
            "sched-4w2-64",
            &ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default()),
        );
        let cfg = Configuration::monolithic(4, 1, 32).unwrap();
        check(
            "sched-4w1-32",
            &ev.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default()),
        );
        (tag.to_string(), ev.pipeline().stage_counts())
    };
    let (_, cold) = run("cold");
    assert!(cold.live_runs() > 0);
    let (_, warm) = run("warm");
    assert_eq!(warm.live_runs(), 0, "warm golden run recompiled: {warm:?}");
    assert!(warm.disk_hits() > 0);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn incremental_extend_matches_from_scratch_bitwise() {
    // Growing the corpus through `Evaluator::extend` must fold the new
    // loops into every memoized aggregate with bitwise the same result
    // as evaluating the full corpus from scratch — including with a
    // byte-budgeted in-memory tier evicting behind the fold.
    let full = corpus::generate(&corpus::CorpusSpec::small(40, 9));
    let (head, tail) = full.split_at(28);

    let grown = Evaluator::new(head.to_vec()).with_store(StoreConfig {
        cache_dir: None,
        memory_budget: Some(128 * 1024),
    });
    let cfg = Configuration::monolithic(4, 2, 64).unwrap();
    // Memoize aggregates over the head corpus first…
    let partial = grown.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default());
    assert_eq!(partial.per_loop.len(), 28);
    let _ = grown.peak(2, 2, CycleModel::Cycles4);
    // …then ingest the rest incrementally.
    grown.extend(tail.to_vec());
    check(
        "sched-4w2-64",
        &grown.scheduled(&cfg, CycleModel::Cycles4, &EvalOptions::default()),
    );
    check("peak-2w2", &grown.peak(2, 2, CycleModel::Cycles4));
    // Only the 12 appended loops were widened again at Y = 2.
    let counts = grown.pipeline().stage_counts();
    assert_eq!(counts.widen_runs, 40, "{counts:?}");
}

#[test]
fn sweep_reproduces_seed_aggregates_bitwise() {
    // The batch engine must land on the same bits as the per-point path
    // (and therefore the seed), stage sharing and all.
    let ev = Evaluator::new(corpus::generate(&corpus::CorpusSpec::small(40, 9)));
    let cfgs: Vec<Configuration> = [(4u32, 2u32, 64u32), (4, 1, 32), (1, 1, 256)]
        .iter()
        .map(|&(x, y, z)| Configuration::monolithic(x, y, z).unwrap())
        .collect();
    let batch = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
    check("sched-4w2-64", &batch[0]);
    check("sched-4w1-32", &batch[1]);
    check("sched-1w1-256", &batch[2]);
}
