//! Property tests for lifetimes, allocation bounds and the spill engine.

use proptest::prelude::*;
use widening_ir::NodeId;
use widening_machine::{Configuration, CycleModel};
use widening_regalloc::{
    allocate, allocate_in, lifetimes, lifetimes_into, max_lives, schedule_with_registers,
    AllocScratch, Lifetime, SpillOptions,
};
use widening_sched::{
    MiiBounds, ModuloScheduler, SchedScratch, SchedulerOptions, Strategy as SchedStrategy,
};
use widening_workload::corpus::{generate, CorpusSpec};

fn arb_lifetimes() -> impl Strategy<Value = (Vec<Lifetime>, u32)> {
    (
        1u32..24,
        proptest::collection::vec((0u32..60, 1u32..40), 1..40),
    )
        .prop_map(|(ii, raw)| {
            let lts = raw
                .into_iter()
                .enumerate()
                .map(|(i, (start, len))| Lifetime {
                    def: NodeId(i as u32),
                    start,
                    end: start + len,
                })
                .collect();
            (lts, ii)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The clique bound is a hard floor; Lam's per-value expansion
    /// (power-of-two rounded) is a hard ceiling.
    #[test]
    fn allocation_between_bounds((lts, ii) in arb_lifetimes()) {
        let a = allocate(&lts, ii);
        prop_assert_eq!(a.max_lives(), max_lives(&lts, ii));
        prop_assert!(a.registers_used() >= a.max_lives());
        let lam: u32 = lts
            .iter()
            .map(|lt| lt.concurrent_instances(ii).max(1).next_power_of_two())
            .sum();
        prop_assert!(a.registers_used() <= lam);
    }

    /// The assignment covers one entry per (lifetime, kernel copy) and
    /// never names a register outside the allocation.
    #[test]
    fn assignment_is_complete((lts, ii) in arb_lifetimes()) {
        let a = allocate(&lts, ii);
        prop_assert_eq!(
            a.assignment().len(),
            lts.len() * a.kernel_unroll() as usize
        );
        for &(lifetime, register) in a.assignment() {
            prop_assert!((lifetime as usize) < lts.len());
            prop_assert!(register < a.registers_used());
        }
    }

    /// MaxLives is monotone: growing any lifetime cannot reduce it.
    #[test]
    fn max_lives_monotone((lts, ii) in arb_lifetimes(), extra in 1u32..10) {
        let before = max_lives(&lts, ii);
        let grown: Vec<Lifetime> = lts
            .iter()
            .map(|lt| Lifetime { def: lt.def, start: lt.start, end: lt.end + extra })
            .collect();
        prop_assert!(max_lives(&grown, ii) >= before);
    }

    /// A larger II never increases the instance count of a lifetime.
    #[test]
    fn instances_monotone_in_ii((lts, ii) in arb_lifetimes()) {
        for lt in &lts {
            prop_assert!(lt.concurrent_instances(ii + 1) <= lt.concurrent_instances(ii));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flat-table hot paths are drop-in: for random DDGs × machine
    /// configs × strategies, scheduling and allocating through one warm,
    /// repeatedly reused scratch arena produces bitwise-identical
    /// results (issue cycles, `registers_used`, the dense location
    /// table) to the fresh-scratch convenience entry points.
    #[test]
    fn warm_scratch_matches_fresh(
        seed in 0u64..5000,
        x in 0u32..3,
        strat in 0usize..3,
    ) {
        let strategy = [SchedStrategy::Hrms, SchedStrategy::Ims, SchedStrategy::Asap][strat];
        let opts = SchedulerOptions { strategy, ..SchedulerOptions::default() };
        let cfg = Configuration::monolithic(1 << x, 2, 256).expect("valid");
        let model = CycleModel::Cycles4;
        let scheduler = ModuloScheduler::with_options(cfg, model, opts);
        // One arena across every loop: later loops must not see state
        // leaked from earlier ones.
        let mut sched_scratch = SchedScratch::new();
        let mut alloc_scratch = AllocScratch::new();
        let mut lts_buf = Vec::new();
        for l in generate(&CorpusSpec::small(4, seed)) {
            let bounds = MiiBounds::compute(l.ddg(), &cfg, model);
            let fresh = scheduler.schedule_with_bounds(l.ddg(), &bounds);
            let warm = scheduler.schedule_with(l.ddg(), &bounds, 1, &mut sched_scratch);
            match (fresh, warm) {
                (Ok(f), Ok(w)) => {
                    prop_assert_eq!(f.ii(), w.ii());
                    prop_assert_eq!(f.times(), w.times());
                    let f_lts = lifetimes(l.ddg(), &f, model);
                    lifetimes_into(l.ddg(), &w, model, &mut lts_buf);
                    prop_assert_eq!(&f_lts, &lts_buf);
                    let f_alloc = allocate(&f_lts, f.ii());
                    let w_alloc = allocate_in(&lts_buf, w.ii(), &mut alloc_scratch);
                    prop_assert_eq!(f_alloc, w_alloc);
                }
                (Err(_), Err(_)) => {}
                (f, w) => {
                    return Err(TestCaseError::fail(format!(
                        "fresh/warm disagree on feasibility: {f:?} vs {w:?}"
                    )));
                }
            }
        }
    }

    /// The spill engine (which reuses its scratch arenas *across
    /// rounds* internally) is deterministic end to end: repeated runs
    /// agree on issue cycles, the location table and the spill rewrite.
    #[test]
    fn spill_engine_is_deterministic(seed in 0u64..5000, z in 0usize..2) {
        let regs = [32u32, 64][z];
        let cfg = Configuration::monolithic(4, 1, regs).expect("valid");
        for l in generate(&CorpusSpec::small(3, seed)) {
            let run = || schedule_with_registers(
                l.ddg(),
                &cfg,
                CycleModel::Cycles4,
                &SchedulerOptions::default(),
                &SpillOptions::default(),
            );
            match (run(), run()) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.schedule.times(), b.schedule.times());
                    prop_assert_eq!(a.allocation, b.allocation);
                    prop_assert_eq!(a.lifetimes, b.lifetimes);
                    prop_assert_eq!(a.spills, b.spills);
                    prop_assert_eq!(
                        (a.spill_stores, a.spill_loads, a.rounds),
                        (b.spill_stores, b.spill_loads, b.rounds)
                    );
                }
                (Err(_), Err(_)) => {}
                _ => return Err(TestCaseError::fail("nondeterministic outcome")),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: whatever corpus loop and machine we draw, a
    /// successful pressure result always fits the register file, and its
    /// schedule is verified by construction.
    #[test]
    fn pressure_results_fit_the_file(seed in 0u64..5000, x in 0u32..3, z in 0usize..3) {
        let loops = generate(&CorpusSpec::small(3, seed));
        let regs = [32u32, 64, 128][z];
        let cfg = Configuration::monolithic(1 << x, 1, regs).expect("valid");
        for l in &loops {
            match schedule_with_registers(
                l.ddg(),
                &cfg,
                CycleModel::Cycles4,
                &SchedulerOptions::default(),
                &SpillOptions::default(),
            ) {
                Ok(r) => {
                    prop_assert!(r.allocation.registers_used() <= regs);
                    prop_assert!(r.ddg.num_nodes() >= l.ddg().num_nodes());
                }
                Err(widening_regalloc::RegallocError::Pressure { needed, available }) => {
                    prop_assert!(needed > available);
                    prop_assert_eq!(available, regs);
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
        }
    }
}
