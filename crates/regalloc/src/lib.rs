//! Register lifetimes, allocation and spill code for software-pipelined
//! loops — the machinery behind §3.2 of *Widening Resources* (MICRO
//! 1998).
//!
//! Reducing the initiation interval increases register requirements; when
//! a loop needs more registers than the file provides, spill code must be
//! inserted and the loop rescheduled, degrading performance. This crate
//! implements:
//!
//! * [`Lifetime`] extraction from a modulo schedule (values live from
//!   definition to last use, crossing iteration boundaries);
//! * `MaxLives` — the classic lower bound on register need
//!   ([`max_lives`]);
//! * the paper's allocator: *wands-only* allocation using **end-fit with
//!   adjacency ordering** (Rau et al., PLDI'92) on the modulo-expanded
//!   kernel ([`allocate`]);
//! * a spill engine in the spirit of Llosa et al. (MICRO-29): spill the
//!   lifetimes with the highest length/use ratio, insert store/reload
//!   operations, reschedule, and repeat ([`schedule_with_registers`]).
//!
//! # Example
//!
//! ```
//! use widening_ir::{DdgBuilder, OpKind};
//! use widening_machine::{Configuration, CycleModel};
//! use widening_regalloc::{schedule_with_registers, SpillOptions};
//! use widening_sched::SchedulerOptions;
//!
//! let mut b = DdgBuilder::new();
//! let x = b.load(1);
//! let m = b.op(OpKind::FMul);
//! let s = b.store(1);
//! b.flow(x, m);
//! b.flow(m, s);
//! let ddg = b.build()?;
//!
//! let cfg = Configuration::monolithic(1, 1, 32)?;
//! let out = schedule_with_registers(
//!     &ddg, &cfg, CycleModel::Cycles4,
//!     &SchedulerOptions::default(), &SpillOptions::default(),
//! )?;
//! assert!(out.allocation.registers_used() <= 32);
//! assert_eq!(out.spill_stores + out.spill_loads, 0); // tiny loop: no spill
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod lifetime;
mod spill;

pub use allocator::{allocate, allocate_in, AllocScratch, RegisterAllocation};
pub use lifetime::{lifetimes, lifetimes_into, max_lives, Lifetime};
pub use spill::{
    schedule_with_registers, schedule_with_registers_seeded, FirstRound, PressureResult,
    RegallocError, SpillOptions, SpillPolicy, SpillRecord,
};
