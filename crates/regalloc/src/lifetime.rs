//! Value lifetimes under a modulo schedule, and the `MaxLives` bound.

use widening_ir::{Ddg, NodeId};
use widening_machine::CycleModel;
use widening_sched::Schedule;

/// The live range of one loop-variant value: from the issue of its
/// defining operation to the issue of its last consumer (plus `II ×
/// distance` for consumers in later iterations).
///
/// This is the lifetime convention of the paper's scheduler lineage
/// (values are tied up from definition issue, since results may be
/// written back out of order with respect to issue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The defining operation.
    pub def: NodeId,
    /// Issue cycle of the definition.
    pub start: u32,
    /// One past the last cycle the value is needed (`end > start`).
    pub end: u32,
}

impl Lifetime {
    /// Length of the live range in cycles.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Lifetimes are never empty (a defined value lives at least until
    /// its writeback); provided for clippy-conventional pairing with
    /// [`Lifetime::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// How many instances of this value are simultaneously live in
    /// steady state: `⌈len / II⌉`.
    #[must_use]
    pub fn concurrent_instances(&self, ii: u32) -> u32 {
        self.len().div_ceil(ii)
    }
}

/// Extracts the lifetime of every value-producing operation in `ddg`
/// under `schedule`.
///
/// A value with no consumers lives until its result is written back
/// (issue + latency): the register is still needed for the writeback.
#[must_use]
pub fn lifetimes(ddg: &Ddg, schedule: &Schedule, model: CycleModel) -> Vec<Lifetime> {
    let mut out = Vec::new();
    lifetimes_into(ddg, schedule, model, &mut out);
    out
}

/// [`lifetimes`] into a caller-supplied buffer (cleared first), so hot
/// loops can reuse the allocation across schedule attempts.
pub fn lifetimes_into(ddg: &Ddg, schedule: &Schedule, model: CycleModel, out: &mut Vec<Lifetime>) {
    let ii = schedule.ii();
    out.clear();
    for v in ddg.node_ids() {
        let op = ddg.op(v);
        if !op.produces_value() {
            continue;
        }
        let start = schedule.time(v);
        let mut end = start + model.latency(op.kind());
        for e in ddg.out_edges(v) {
            if !e.kind.is_flow() {
                continue;
            }
            let use_time = schedule.time(e.dst) + ii * e.distance;
            end = end.max(use_time.max(start + 1));
        }
        out.push(Lifetime { def: v, start, end });
    }
}

/// `MaxLives`: the maximum number of values simultaneously live at any
/// kernel cycle — the classic lower bound on registers required
/// (Llosa et al., IJPP'98).
#[must_use]
pub fn max_lives(lifetimes: &[Lifetime], ii: u32) -> u32 {
    max_lives_with(lifetimes, ii, &mut Vec::new())
}

/// [`max_lives`] with a caller-supplied difference-array buffer.
///
/// A lifetime of length `len` contributes `⌊len/II⌋` to *every* kernel
/// row plus one extra over the wrapped run of `len mod II` rows starting
/// at `start mod II` — so the per-row counts are a uniform base plus a
/// difference array, O(lifetimes + II) instead of O(Σ len).
pub(crate) fn max_lives_with(lifetimes: &[Lifetime], ii: u32, diff: &mut Vec<i64>) -> u32 {
    assert!(ii >= 1, "II must be at least 1");
    let rows = ii as usize;
    diff.clear();
    diff.resize(rows, 0);
    let mut base = 0i64;
    for lt in lifetimes {
        let len = u64::from(lt.len());
        base += (len / u64::from(ii)) as i64;
        let part = (len % u64::from(ii)) as usize;
        if part == 0 {
            continue;
        }
        let s = (lt.start % ii) as usize;
        if s + part <= rows {
            diff[s] += 1;
            if s + part < rows {
                diff[s + part] -= 1;
            }
        } else {
            // The partial run wraps: [s, rows) and [0, s + part − rows).
            diff[s] += 1;
            diff[0] += 1;
            diff[s + part - rows] -= 1;
        }
    }
    let mut acc = 0i64;
    let mut peak = 0i64;
    for &d in diff.iter() {
        acc += d;
        peak = peak.max(acc);
    }
    u32::try_from(base + peak).expect("max_lives fits in u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::{DdgBuilder, OpKind};
    use widening_machine::Configuration;

    const M4: CycleModel = CycleModel::Cycles4;

    fn cfg() -> Configuration {
        Configuration::monolithic(4, 1, 256).unwrap()
    }

    fn sched(ddg: &Ddg, ii: u32, times: Vec<u32>) -> Schedule {
        Schedule::new(ddg, &cfg(), M4, ii, times).unwrap()
    }

    #[test]
    fn lifetime_spans_def_to_last_use() {
        // ld(t0) -> fmul(t8); ld -> fadd(t4)
        let mut b = DdgBuilder::new();
        let ld = b.load(1);
        let m = b.op(OpKind::FMul);
        let a = b.op(OpKind::FAdd);
        b.flow(ld, m);
        b.flow(ld, a);
        let g = b.build().unwrap();
        let s = sched(&g, 9, vec![0, 8, 4]);
        let lts = lifetimes(&g, &s, M4);
        let ld_lt = lts.iter().find(|l| l.def == ld).unwrap();
        assert_eq!((ld_lt.start, ld_lt.end), (0, 8));
        assert_eq!(ld_lt.len(), 8);
    }

    #[test]
    fn unused_value_lives_through_writeback() {
        let mut b = DdgBuilder::new();
        let ld = b.load(1);
        b.op(OpKind::FAdd); // dead value
        b.flow(ld, widening_ir::NodeId(1));
        let g = b.build().unwrap();
        let s = sched(&g, 5, vec![0, 4]);
        let lts = lifetimes(&g, &s, M4);
        let dead = lts
            .iter()
            .find(|l| l.def == widening_ir::NodeId(1))
            .unwrap();
        assert_eq!((dead.start, dead.end), (4, 8)); // + fadd latency
    }

    #[test]
    fn stores_produce_no_lifetime() {
        let mut b = DdgBuilder::new();
        let ld = b.load(1);
        let st = b.store(1);
        b.flow(ld, st);
        let g = b.build().unwrap();
        let s = sched(&g, 5, vec![0, 4]);
        let lts = lifetimes(&g, &s, M4);
        assert_eq!(lts.len(), 1);
        assert_eq!(lts[0].def, ld);
    }

    #[test]
    fn carried_use_extends_by_ii_distance() {
        // fadd feeds itself at distance 1: lifetime = II.
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        b.carried_flow(a, a, 1);
        let g = b.build().unwrap();
        let s = sched(&g, 4, vec![0]);
        let lts = lifetimes(&g, &s, M4);
        assert_eq!((lts[0].start, lts[0].end), (0, 4));
        assert_eq!(lts[0].concurrent_instances(4), 1);
    }

    #[test]
    fn max_lives_counts_overlapping_instances() {
        // One value of length 8 at II=2: 4 concurrent instances.
        let lts = vec![Lifetime {
            def: NodeId(0),
            start: 0,
            end: 8,
        }];
        assert_eq!(max_lives(&lts, 2), 4);
        assert_eq!(lts[0].concurrent_instances(2), 4);
        // Same value at II=8: a single instance.
        assert_eq!(max_lives(&lts, 8), 1);
    }

    use widening_ir::NodeId;

    #[test]
    fn max_lives_of_disjoint_rows() {
        // Two unit lifetimes in different kernel rows never overlap.
        let lts = vec![
            Lifetime {
                def: NodeId(0),
                start: 0,
                end: 1,
            },
            Lifetime {
                def: NodeId(1),
                start: 1,
                end: 2,
            },
        ];
        assert_eq!(max_lives(&lts, 2), 1);
        // At II=1 they share the only row.
        assert_eq!(max_lives(&lts, 1), 2);
    }

    #[test]
    fn max_lives_matches_naive_row_scan() {
        // The difference-array formulation must agree with the direct
        // per-cycle row counting on irregular mixes (wrapping partial
        // runs, zero-remainder lengths, start offsets beyond II).
        let naive = |lts: &[Lifetime], ii: u32| -> u32 {
            let mut rows = vec![0u32; ii as usize];
            for lt in lts {
                for t in lt.start..lt.end {
                    rows[(t % ii) as usize] += 1;
                }
            }
            rows.into_iter().max().unwrap_or(0)
        };
        for ii in [1u32, 2, 3, 5, 8, 13] {
            for n in [0u32, 1, 7, 23] {
                let lts: Vec<Lifetime> = (0..n)
                    .map(|i| {
                        let start = (i * 11) % (4 * ii);
                        Lifetime {
                            def: NodeId(i),
                            start,
                            end: start + 1 + (i * 5) % (3 * ii),
                        }
                    })
                    .collect();
                assert_eq!(max_lives(&lts, ii), naive(&lts, ii), "ii={ii} n={n}");
            }
        }
    }

    #[test]
    fn lower_ii_raises_pressure() {
        // The paper's §3.2 premise: reducing II increases register
        // requirements for the same dependence structure.
        let lts = vec![
            Lifetime {
                def: NodeId(0),
                start: 0,
                end: 12,
            },
            Lifetime {
                def: NodeId(1),
                start: 2,
                end: 10,
            },
        ];
        let p: Vec<u32> = [1u32, 2, 4, 12]
            .iter()
            .map(|&ii| max_lives(&lts, ii))
            .collect();
        assert_eq!(p, vec![20, 10, 5, 2]);
    }
}
