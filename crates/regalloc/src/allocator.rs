//! Wands-only register allocation: end-fit with adjacency ordering
//! (Rau, Lee, Tirumalai, Schlansker — PLDI'92).
//!
//! Kernel-only code without a rotating register file needs *modulo
//! variable expansion*: the kernel is notionally unrolled `K` times so
//! each concurrently-live instance of a value gets its own register. The
//! allocation problem is then colouring circular arcs on a cylinder of
//! circumference `K·II`:
//!
//! * **adjacency ordering** — arcs are processed in order of their start
//!   position around the cylinder;
//! * **end-fit** — each arc goes to the allocatable register whose most
//!   recent occupant ends closest to the arc's start (smallest wasted
//!   gap), opening a new register only when none fits.
//!
//! The result is within a register or two of the `MaxLives` lower bound
//! on the paper's loop shapes (asserted by tests and measured in
//! EXPERIMENTS.md).
//!
//! # Dense packing representation
//!
//! The hot path keeps per-register occupancy as a **cylinder bitset**
//! (one bit per slot, `c = K·II` slots), so the pairwise `overlaps`
//! probe of the original `Vec<Vec<Arc>>` representation becomes a
//! word-AND over at most `⌈c/64⌉` words:
//!
//! * an arc's slot coverage equals the wrapped run
//!   `[start, start + min(len, c))`, and two circular arcs overlap iff
//!   their coverage sets intersect (for `len ≥ c` the set is the full
//!   circle; a degenerate `len = 0` arc covers nothing and overlaps
//!   nothing — exactly the `overlaps` contract);
//! * end-fit's smallest-gap search keeps an **endpoint table bucketed
//!   by cylinder slot**: walking slots backwards from the arc's start
//!   and stopping at the first slot holding a disjoint register finds
//!   the minimiser of `(start + c − end) mod c` directly — the cost is
//!   the winning gap, not a scan of every register and occupant;
//! * the min-density cut evaluates candidate points (`{0} ∪ starts`)
//!   against two **sorted endpoint arrays** — density at `p` is
//!   `#{segment starts ≤ p} − #{segment ends ≤ p}` plus the full-circle
//!   arc count — replacing the O(c·arcs) per-point coverage scan.
//!
//! All working storage lives in an [`AllocScratch`] that is cleared, not
//! reallocated, between calls; results are bitwise-identical to the
//! original packers (kept below as the oversized-cylinder fallback and
//! as the reference implementations for the equivalence tests).

use std::cmp::Reverse;

use widening_dense::words;

use crate::lifetime::{max_lives_with, Lifetime};

/// The outcome of allocating one loop's lifetimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAllocation {
    registers_used: u32,
    max_lives: u32,
    kernel_unroll: u32,
    assignment: Vec<(u32, u32)>,
    /// Dense location table: `locations[lifetime · K + instance]` is the
    /// register holding instance `instance` of `lifetime`.
    locations: Vec<u32>,
}

impl RegisterAllocation {
    /// Reassembles an allocation from its parts — the decode half of an
    /// artifact codec (the encode half reads [`Self::registers_used`],
    /// [`Self::max_lives`], [`Self::kernel_unroll`],
    /// [`Self::assignment`] and [`Self::locations`]).
    ///
    /// Performs the consistency checks a cache decoder cannot do itself:
    /// the expansion degree must be a positive power of two, the
    /// location table must hold exactly `kernel_unroll` instances per
    /// lifetime, and every recorded register must fall below
    /// `registers_used`. Returns `None` for inconsistent (corrupt or
    /// stale) parts, never panics.
    #[must_use]
    pub fn from_parts(
        registers_used: u32,
        max_lives: u32,
        kernel_unroll: u32,
        assignment: Vec<(u32, u32)>,
        locations: Vec<u32>,
    ) -> Option<Self> {
        if kernel_unroll == 0 || !kernel_unroll.is_power_of_two() {
            return None;
        }
        if !locations.len().is_multiple_of(kernel_unroll as usize) {
            return None;
        }
        if max_lives > registers_used {
            return None;
        }
        if locations.iter().any(|&r| r >= registers_used)
            || assignment.iter().any(|&(_, r)| r >= registers_used)
        {
            return None;
        }
        Some(RegisterAllocation {
            registers_used,
            max_lives,
            kernel_unroll,
            assignment,
            locations,
        })
    }

    /// Registers the allocator actually used.
    #[must_use]
    pub fn registers_used(&self) -> u32 {
        self.registers_used
    }

    /// The `MaxLives` lower bound for the same lifetimes.
    #[must_use]
    pub fn max_lives(&self) -> u32 {
        self.max_lives
    }

    /// Modulo-variable-expansion degree `K`: kernel copies needed so no
    /// value overwrites a live predecessor instance, rounded up to a
    /// power of two so every per-value rotation period (itself a power
    /// of two, Lam's scheme) divides the expansion — which makes the
    /// uniform `instance = iteration mod K` location rule sound for all
    /// packings.
    #[must_use]
    pub fn kernel_unroll(&self) -> u32 {
        self.kernel_unroll
    }

    /// `(lifetime index, instance j) → register`, flattened in the order
    /// the arcs were allocated. Exposed for inspection and testing.
    #[must_use]
    pub fn assignment(&self) -> &[(u32, u32)] {
        &self.assignment
    }

    /// The dense location table backing [`Self::register_of`], flattened
    /// as `lifetime · kernel_unroll + instance`. Exposed for artifact
    /// codecs (see [`Self::from_parts`]).
    #[must_use]
    pub fn locations(&self) -> &[u32] {
        &self.locations
    }

    /// Allocation overhead above the lower bound.
    #[must_use]
    pub fn overhead(&self) -> u32 {
        self.registers_used - self.max_lives
    }

    /// The register holding instance `instance` of `lifetime` — the
    /// location table a simulator needs to find a value. The instance of
    /// the definition issued in kernel iteration `b` is `b mod K` (see
    /// [`Self::kernel_unroll`]).
    ///
    /// Returns `None` for an out-of-range lifetime or instance.
    #[must_use]
    pub fn register_of(&self, lifetime: u32, instance: u32) -> Option<u32> {
        if instance >= self.kernel_unroll {
            return None;
        }
        let idx = lifetime as usize * self.kernel_unroll as usize + instance as usize;
        self.locations.get(idx).copied()
    }
}

/// One circular arc on the expanded kernel cylinder.
#[derive(Debug, Clone, Copy)]
struct Arc {
    lifetime: u32,
    instance: u32,
    start: u64,
    len: u64,
}

impl Arc {
    /// Half-open coverage test on the cylinder of circumference `c`.
    fn covers(&self, point: u64, c: u64) -> bool {
        debug_assert!(point < c);
        if self.len >= c {
            return true;
        }
        let s = self.start;
        let e = (self.start + self.len) % c;
        if s < e {
            (s..e).contains(&point)
        } else {
            point >= s || point < e
        }
    }

    fn overlaps(&self, other: &Arc, c: u64) -> bool {
        if self.len == 0 || other.len == 0 {
            return false;
        }
        if self.len >= c || other.len >= c {
            return true;
        }
        self.covers(other.start, c) || other.covers(self.start, c)
    }
}

/// A packed register assignment: `(lifetime, instance, register)` in
/// arc-processing order, plus the register count.
type Packing = Vec<(u32, u32, u32)>;

/// Cylinders larger than this (in slots) fall back to the legacy
/// `Vec<Vec<Arc>>` packers rather than materialising per-register
/// bitsets. Real schedules stay orders of magnitude below it (the
/// corpus peaks at c = 64); only adversarial lifetimes with enormous
/// spans reach the fallback.
const DENSE_SLOT_LIMIT: u64 = 1 << 14;

/// Reusable working storage for [`allocate_in`]: arc tables, cylinder
/// bitsets, endpoint tables and the candidate packings, all cleared —
/// not reallocated — between calls.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    /// Arcs in adjacency (start-position) order.
    arcs: Vec<Arc>,
    /// Per-arc cylinder coverage bitsets (`wpc` words each, matching
    /// `arcs` order).
    masks: Vec<u64>,
    /// Arc index permutations: identity (adjacency order) and
    /// longest-first.
    idx_adj: Vec<u32>,
    idx_len: Vec<u32>,
    /// Cut-interval processing order.
    idx_cut: Vec<u32>,
    /// Per-register occupancy bitsets (flat, `wpc` words per register).
    occ: Vec<u64>,
    /// End-fit endpoint table, bucketed by cylinder slot: `buckets[p]`
    /// lists the registers with an occupant end at slot `p`.
    end_buckets: Vec<Vec<u32>>,
    /// Min-density sweep: candidate cut points and sorted segment
    /// endpoints.
    cand: Vec<u64>,
    seg_starts: Vec<u64>,
    seg_ends: Vec<u64>,
    /// Best packing so far and the candidate being evaluated.
    best: Packing,
    tmp: Packing,
    /// `max_lives` difference-array buffer.
    rows: Vec<i64>,
}

impl AllocScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        AllocScratch::default()
    }
}

/// Allocates `lifetimes` (from a schedule with initiation interval `ii`)
/// to registers with end-fit/adjacency ordering. Returns the allocation;
/// `registers_used` is the register requirement the spill engine compares
/// against the file size.
///
/// # Panics
///
/// Panics if `ii` is zero.
#[must_use]
pub fn allocate(lifetimes: &[Lifetime], ii: u32) -> RegisterAllocation {
    allocate_in(lifetimes, ii, &mut AllocScratch::new())
}

/// [`allocate`] reusing a caller-owned [`AllocScratch`] — the hot-path
/// entry point. Identical results, no steady-state allocation beyond the
/// returned tables.
///
/// # Panics
///
/// Panics if `ii` is zero.
#[must_use]
pub fn allocate_in(lifetimes: &[Lifetime], ii: u32, s: &mut AllocScratch) -> RegisterAllocation {
    assert!(ii >= 1, "II must be at least 1");
    let ml = max_lives_with(lifetimes, ii, &mut s.rows);
    let k = lifetimes
        .iter()
        .map(|lt| lt.concurrent_instances(ii))
        .max()
        .unwrap_or(1)
        .max(1)
        .next_power_of_two();
    let c = u64::from(k) * u64::from(ii);

    // Expand each lifetime into K arcs (one per kernel copy) and sort by
    // start position (adjacency ordering), then length descending for
    // deterministic, well-packed placement.
    s.arcs.clear();
    for (i, lt) in lifetimes.iter().enumerate() {
        let len = u64::from(lt.len()).min(c);
        for j in 0..k {
            let start = (u64::from(lt.start) + u64::from(j) * u64::from(ii)) % c;
            arcs_push(&mut s.arcs, i as u32, j, start, len);
        }
    }
    // (start, len, lifetime, instance) is a total order, so the unstable
    // sort is deterministic.
    s.arcs
        .sort_unstable_by_key(|a| (a.start, Reverse(a.len), a.lifetime, a.instance));

    let (registers_used, triples) = if c <= DENSE_SLOT_LIMIT {
        pack_best_dense(lifetimes, ii, k, c, s)
    } else {
        pack_best_legacy(lifetimes, ii, k, c, s)
    };

    // Derive the legacy arc-order assignment and the dense location
    // table from the winning packing.
    let assignment: Vec<(u32, u32)> = triples.iter().map(|&(lt, _, r)| (lt, r)).collect();
    let mut locations = vec![u32::MAX; lifetimes.len() * k as usize];
    for &(lt, instance, r) in triples {
        locations[lt as usize * k as usize + instance as usize] = r;
    }
    debug_assert!(lifetimes.is_empty() || locations.iter().all(|&r| r != u32::MAX));

    RegisterAllocation {
        registers_used,
        max_lives: ml,
        kernel_unroll: k,
        assignment,
        locations,
    }
}

fn arcs_push(arcs: &mut Vec<Arc>, lifetime: u32, instance: u32, start: u64, len: u64) {
    arcs.push(Arc {
        lifetime,
        instance,
        start,
        len,
    });
}

/// Runs all six packers on the dense (bitset) representation and
/// returns the tightest packing. Mirrors [`pack_best_legacy`] result
/// for result, candidate order and strict-improvement tie-breaking.
fn pack_best_dense<'a>(
    lifetimes: &[Lifetime],
    ii: u32,
    k: u32,
    c: u64,
    s: &'a mut AllocScratch,
) -> (u32, &'a Packing) {
    let n = s.arcs.len();
    let wpc = words::words_for(c as usize);
    s.masks.clear();
    s.masks.resize(n * wpc, 0);
    for (i, a) in s.arcs.iter().enumerate() {
        if a.len > 0 {
            words::set_wrapped_run(
                &mut s.masks[i * wpc..(i + 1) * wpc],
                c as usize,
                a.start as usize,
                a.len as usize,
            );
        }
    }
    s.idx_adj.clear();
    s.idx_adj.extend(0..n as u32);
    s.idx_len.clear();
    s.idx_len.extend(0..n as u32);
    // A second arc order — longest arcs first — often packs dense mixes
    // a register or two tighter; both orders feed both greedy packers.
    let arcs = &s.arcs;
    s.idx_len.sort_unstable_by_key(|&i| {
        let a = &arcs[i as usize];
        (Reverse(a.len), a.start, a.lifetime, a.instance)
    });

    // Run the packers and keep the tightest result. End-fit is Rau's
    // published heuristic; first-fit and the min-density-cut interval
    // pass are classic fallbacks; Lam's private-cyclic expansion wins
    // when the shared cylinder fragments badly.
    let mut best_regs = pack_end_fit_dense(
        &s.arcs,
        &s.idx_adj,
        &s.masks,
        wpc,
        c,
        &mut s.occ,
        &mut s.end_buckets,
        &mut s.best,
    );
    for which in 0..5 {
        let regs = match which {
            0 => pack_first_fit_dense(&s.arcs, &s.idx_adj, &s.masks, wpc, &mut s.occ, &mut s.tmp),
            1 => pack_end_fit_dense(
                &s.arcs,
                &s.idx_len,
                &s.masks,
                wpc,
                c,
                &mut s.occ,
                &mut s.end_buckets,
                &mut s.tmp,
            ),
            2 => pack_first_fit_dense(&s.arcs, &s.idx_len, &s.masks, wpc, &mut s.occ, &mut s.tmp),
            3 => pack_cut_interval_dense(s, wpc, c),
            _ => pack_private_cyclic(lifetimes, ii, k, &mut s.tmp),
        };
        if regs < best_regs {
            best_regs = regs;
            std::mem::swap(&mut s.best, &mut s.tmp);
        }
    }
    (best_regs, &s.best)
}

/// The original `Vec<Vec<Arc>>` packers, used verbatim when the
/// cylinder is too large to bitset (`c > DENSE_SLOT_LIMIT`).
fn pack_best_legacy<'a>(
    lifetimes: &[Lifetime],
    ii: u32,
    k: u32,
    c: u64,
    s: &'a mut AllocScratch,
) -> (u32, &'a Packing) {
    let mut best = pack_end_fit_ref(&s.arcs, c);
    let mut by_len = s.arcs.clone();
    by_len.sort_unstable_by_key(|a| (Reverse(a.len), a.start, a.lifetime, a.instance));
    let mut private = Vec::new();
    let private_regs = pack_private_cyclic(lifetimes, ii, k, &mut private);
    for alt in [
        pack_first_fit_ref(&s.arcs, c),
        pack_end_fit_ref(&by_len, c),
        pack_first_fit_ref(&by_len, c),
        pack_cut_interval_ref(&s.arcs, c),
        (private_regs, private),
    ] {
        if alt.0 < best.0 {
            best = alt;
        }
    }
    s.best = best.1;
    (best.0, &s.best)
}

/// Lam's modulo-variable-expansion allocation: value `v` rotates through
/// a private block of `k'_v` registers, where `k'_v` is
/// `⌈len_v / II⌉` rounded up to a power of two so that every block
/// period divides the kernel-unroll period and instances of the same
/// value can never collide across the wrap-around.
fn pack_private_cyclic(
    lifetimes: &[Lifetime],
    ii: u32,
    kernel_unroll: u32,
    out: &mut Packing,
) -> u32 {
    out.clear();
    let mut base = 0u32;
    for (i, lt) in lifetimes.iter().enumerate() {
        let k = lt.concurrent_instances(ii).max(1).next_power_of_two();
        for j in 0..kernel_unroll {
            out.push((i as u32, j, base + (j % k)));
        }
        base += k;
    }
    base
}

// ----- dense (bitset) packers --------------------------------------------

/// First-fit over cylinder bitsets: each arc goes to the lowest-indexed
/// register whose occupancy words AND to zero against the arc's mask.
fn pack_first_fit_dense(
    arcs: &[Arc],
    order: &[u32],
    masks: &[u64],
    wpc: usize,
    occ: &mut Vec<u64>,
    out: &mut Packing,
) -> u32 {
    occ.clear();
    out.clear();
    for &i in order {
        let arc = &arcs[i as usize];
        let mask = &masks[i as usize * wpc..(i as usize + 1) * wpc];
        let nregs = occ.len() / wpc;
        // Single-word cylinders (c ≤ 64, the common case) probe a flat
        // `u64` per register — one AND per probe, no slicing.
        let r = if wpc == 1 {
            let m = mask[0];
            occ.iter().position(|&w| w & m == 0)
        } else {
            (0..nregs).find(|&r| words::disjoint(&occ[r * wpc..(r + 1) * wpc], mask))
        };
        let r = match r {
            Some(r) => {
                words::union_into(&mut occ[r * wpc..(r + 1) * wpc], mask);
                r
            }
            None => {
                occ.extend_from_slice(mask);
                nregs
            }
        };
        out.push((arc.lifetime, arc.instance, r as u32));
    }
    (occ.len() / wpc) as u32
}

/// End-fit over cylinder bitsets + slot-bucketed endpoint tables:
/// among the registers whose occupancy is disjoint from the arc, pick
/// the one whose nearest preceding occupant end leaves the smallest
/// backward gap `(start + c − end) mod c`, lowest register on ties.
///
/// `buckets[p]` lists every register with an occupant end at slot `p`.
/// Walking `p = start, start−1, …` (gap `g = 0, 1, …`) and stopping at
/// the first slot holding a disjoint register finds exactly the
/// reference minimum: a disjoint register with true gap `g' < g` has
/// its nearest preceding end at slot `start − g'`, so it is in that
/// bucket and the walk would already have stopped there — hence any
/// disjoint register met at slot distance `g` has true gap `g`. The
/// per-arc cost is the winning gap plus the endpoint entries passed
/// over, instead of a scan of every register.
#[allow(clippy::too_many_arguments)]
fn pack_end_fit_dense(
    arcs: &[Arc],
    order: &[u32],
    masks: &[u64],
    wpc: usize,
    c: u64,
    occ: &mut Vec<u64>,
    buckets: &mut Vec<Vec<u32>>,
    out: &mut Packing,
) -> u32 {
    occ.clear();
    out.clear();
    if buckets.len() < c as usize {
        buckets.resize_with(c as usize, Vec::new);
    }
    for b in &mut buckets[..c as usize] {
        b.clear();
    }
    let mut nregs = 0usize;
    for &i in order {
        let arc = &arcs[i as usize];
        let mask = &masks[i as usize * wpc..(i as usize + 1) * wpc];
        let mut best: Option<usize> = None;
        if nregs > 0 {
            'walk: for g in 0..c {
                let p = (arc.start + c - g) % c;
                // Lowest disjoint register in this bucket wins the tie.
                let mut cand: Option<usize> = None;
                for &r in &buckets[p as usize] {
                    let r = r as usize;
                    if cand.is_some_and(|b| r >= b) {
                        continue;
                    }
                    let free = if wpc == 1 {
                        occ[r] & mask[0] == 0
                    } else {
                        words::disjoint(&occ[r * wpc..(r + 1) * wpc], mask)
                    };
                    if free {
                        cand = Some(r);
                    }
                }
                if cand.is_some() {
                    best = cand;
                    break 'walk;
                }
            }
        }
        let r = match best {
            Some(r) => {
                words::union_into(&mut occ[r * wpc..(r + 1) * wpc], mask);
                r
            }
            None => {
                occ.extend_from_slice(mask);
                nregs += 1;
                nregs - 1
            }
        };
        buckets[((arc.start + arc.len) % c) as usize].push(r as u32);
        out.push((arc.lifetime, arc.instance, r as u32));
    }
    nregs as u32
}

/// Min-density cut on sorted endpoints, then greedy interval colouring
/// over the linearised coordinate. The cut is the first point of
/// minimum density among `{0} ∪ starts`; density at `p` counts the
/// arcs covering `p`, evaluated as `#{segment starts ≤ p} − #{segment
/// ends ≤ p}` (+1 per full-circle arc) — one sorted endpoint sweep
/// instead of scanning every arc per candidate.
fn pack_cut_interval_dense(s: &mut AllocScratch, wpc: usize, c: u64) -> u32 {
    let AllocScratch {
        arcs,
        masks,
        idx_cut,
        occ,
        cand,
        seg_starts,
        seg_ends,
        tmp,
        ..
    } = s;
    // Candidate cut points, ascending (matches the original 0..c scan
    // filtered to starts).
    cand.clear();
    cand.push(0);
    cand.extend(arcs.iter().map(|a| a.start));
    cand.sort_unstable();
    cand.dedup();
    // Decompose each arc into at most two linear segments; full-circle
    // arcs (len ≥ c) and degenerate zero-length arcs contribute a
    // uniform density at every point (`covers` returns `true`
    // everywhere for both), so they fold into a constant base.
    seg_starts.clear();
    seg_ends.clear();
    let mut base = 0u64;
    for a in arcs.iter() {
        if a.len >= c || a.len == 0 {
            base += 1;
            continue;
        }
        let e = (a.start + a.len) % c;
        if a.start < e {
            seg_starts.push(a.start);
            seg_ends.push(e);
        } else {
            seg_starts.push(a.start); // [start, c): its end c exceeds every p
            seg_ends.push(c);
            if e > 0 {
                seg_starts.push(0);
                seg_ends.push(e);
            }
        }
    }
    seg_starts.sort_unstable();
    seg_ends.sort_unstable();
    let mut cut = 0u64;
    let mut best_density = u64::MAX;
    for &p in cand.iter() {
        let d = base + seg_starts.partition_point(|&x| x <= p) as u64
            - seg_ends.partition_point(|&x| x <= p) as u64;
        if d < best_density {
            best_density = d;
            cut = p;
        }
    }

    // Greedy first-fit in linearised order: distance clockwise from the
    // cut. An arc's slot set is rotation-invariant, so segment
    // disjointness in linearised coordinates is exactly mask
    // disjointness in cylinder coordinates.
    idx_cut.clear();
    idx_cut.extend(0..arcs.len() as u32);
    idx_cut.sort_unstable_by_key(|&i| {
        let a = &arcs[i as usize];
        (
            (a.start + c - cut) % c,
            Reverse(a.len),
            a.lifetime,
            a.instance,
        )
    });
    if arcs.iter().any(|a| a.len == 0) {
        // Degenerate zero-length arcs: the original segment logic treats
        // the empty segment [s, s) as a blocking *point* (it refuses
        // registers where s falls strictly inside an occupied segment),
        // which a coverage bitset cannot express. Keep the original
        // semantics on this cold path.
        return pack_cut_segments(arcs, idx_cut, c, cut, tmp);
    }
    pack_first_fit_dense(arcs, idx_cut, masks, wpc, occ, tmp)
}

/// The original cut-interval segment packer body, shared by the
/// zero-length-arc path of [`pack_cut_interval_dense`] (exact
/// degenerate-point semantics) and by [`pack_cut_interval_ref`].
fn pack_cut_segments(arcs: &[Arc], order: &[u32], c: u64, cut: u64, out: &mut Packing) -> u32 {
    out.clear();
    let lin = |p: u64| (p + c - cut) % c;
    let mut registers: Vec<Vec<(u64, u64)>> = Vec::new(); // busy [from, to) segments
    for &i in order {
        let arc = &arcs[i as usize];
        let (s, e) = (lin(arc.start), lin(arc.start) + arc.len.min(c));
        // An arc crossing the cut occupies [s, c) and wraps to [0, e-c).
        let new_segs: &[(u64, u64)] = if e > c {
            &[(s, c), (0, e - c)]
        } else {
            &[(s, e)]
        };
        let fits = |segs: &Vec<(u64, u64)>| {
            segs.iter()
                .all(|&(f, t)| new_segs.iter().all(|&(ns, ne)| ne <= f || ns >= t))
        };
        let r = match registers.iter().position(fits) {
            Some(r) => r,
            None => {
                registers.push(Vec::new());
                registers.len() - 1
            }
        };
        registers[r].extend_from_slice(new_segs);
        out.push((arc.lifetime, arc.instance, r as u32));
    }
    registers.len() as u32
}

// ----- reference packers (oversized-cylinder fallback + equivalence) -----

/// First-fit: each arc goes to the lowest-indexed register with no
/// overlap. Reference implementation (pairwise `overlaps` scans).
fn pack_first_fit_ref(arcs: &[Arc], c: u64) -> (u32, Packing) {
    let mut registers: Vec<Vec<Arc>> = Vec::new();
    let mut assignment = Vec::with_capacity(arcs.len());
    for arc in arcs {
        let r = match registers
            .iter()
            .position(|occ| occ.iter().all(|o| !o.overlaps(arc, c)))
        {
            Some(r) => r,
            None => {
                registers.push(Vec::new());
                registers.len() - 1
            }
        };
        registers[r].push(*arc);
        assignment.push((arc.lifetime, arc.instance, r as u32));
    }
    (registers.len() as u32, assignment)
}

/// End-fit: each arc goes to the fitting register whose nearest
/// preceding end leaves the smallest gap. Reference implementation
/// (per-occupant gap scans).
fn pack_end_fit_ref(arcs: &[Arc], c: u64) -> (u32, Packing) {
    let mut registers: Vec<Vec<Arc>> = Vec::new();
    let mut assignment = Vec::with_capacity(arcs.len());
    for arc in arcs {
        let mut best: Option<(u64, usize)> = None; // (gap, register)
        for (r, occupants) in registers.iter().enumerate() {
            if occupants.iter().any(|o| o.overlaps(arc, c)) {
                continue;
            }
            // Gap between the nearest preceding end and our start,
            // measured backwards around the cylinder.
            let gap = occupants
                .iter()
                .map(|o| {
                    let end = (o.start + o.len) % c;
                    (arc.start + c - end) % c
                })
                .min()
                .unwrap_or(0);
            if best.is_none_or(|(g, _)| gap < g) {
                best = Some((gap, r));
            }
        }
        let r = match best {
            Some((_, r)) => r,
            None => {
                registers.push(Vec::new());
                registers.len() - 1
            }
        };
        registers[r].push(*arc);
        assignment.push((arc.lifetime, arc.instance, r as u32));
    }
    (registers.len() as u32, assignment)
}

/// Min-density cut reference: scan every cylinder point for the
/// min-density cut, give each crossing arc a segment pair, and colour
/// greedily by left endpoint.
fn pack_cut_interval_ref(arcs: &[Arc], c: u64) -> (u32, Packing) {
    // Density change-points are arc starts; evaluate density there.
    let cut = (0..c)
        .filter(|p| arcs.iter().any(|a| a.start == *p) || *p == 0)
        .min_by_key(|&p| arcs.iter().filter(|a| a.covers(p, c)).count())
        .unwrap_or(0);
    let lin = |p: u64| (p + c - cut) % c;
    let mut order: Vec<u32> = (0..arcs.len() as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let a = &arcs[i as usize];
        (lin(a.start), Reverse(a.len), a.lifetime, a.instance)
    });
    let mut out = Vec::new();
    let regs = pack_cut_segments(arcs, &order, c, cut, &mut out);
    (regs, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::NodeId;

    fn lt(id: u32, start: u32, end: u32) -> Lifetime {
        Lifetime {
            def: NodeId(id),
            start,
            end,
        }
    }

    #[test]
    fn empty_input_uses_no_registers() {
        let a = allocate(&[], 4);
        assert_eq!(a.registers_used(), 0);
        assert_eq!(a.max_lives(), 0);
    }

    #[test]
    fn single_short_value_uses_one_register() {
        let a = allocate(&[lt(0, 0, 3)], 4);
        assert_eq!(a.registers_used(), 1);
        assert_eq!(a.kernel_unroll(), 1);
        assert_eq!(a.overhead(), 0);
    }

    #[test]
    fn long_value_needs_one_register_per_instance() {
        // len 8 at II=2 → 4 concurrent instances → 4 registers.
        let a = allocate(&[lt(0, 0, 8)], 2);
        assert_eq!(a.max_lives(), 4);
        assert_eq!(a.registers_used(), 4);
        assert_eq!(a.kernel_unroll(), 4);
    }

    #[test]
    fn disjoint_values_share_registers() {
        // Two values that split the II perfectly can share rows but not
        // the same cycles: rows 0..2 and 2..4.
        let a = allocate(&[lt(0, 0, 2), lt(1, 2, 4)], 4);
        assert_eq!(a.max_lives(), 1);
        assert_eq!(
            a.registers_used(),
            1,
            "end-fit should chain them in one register"
        );
    }

    #[test]
    fn allocation_overhead_bounded_on_dense_arcs() {
        // A pressure-heavy adversarial mix. Note that for *circular* arc
        // graphs the chromatic number may genuinely exceed the MaxLives
        // clique bound (unlike interval graphs), so we only require the
        // heuristic to stay within ~25% — PLDI'92's "within a register of
        // optimal" holds for realistic schedules, asserted separately in
        // `allocation_tight_on_scheduled_lifetimes`.
        let lts: Vec<Lifetime> = (0..24)
            .map(|i| {
                let start = (i * 3) % 11;
                lt(i, start, start + 5 + (i % 7))
            })
            .collect();
        let a = allocate(&lts, 11);
        assert!(a.registers_used() >= a.max_lives());
        assert!(
            a.overhead() <= a.max_lives().div_ceil(4),
            "overhead {} too large (used {}, maxlives {})",
            a.overhead(),
            a.registers_used(),
            a.max_lives()
        );
    }

    #[test]
    fn allocation_tight_on_scheduled_lifetimes() {
        // Lifetimes with the staircase structure real modulo schedules
        // produce (defs advance by ~II, bounded spans): end-fit should be
        // within one register of the lower bound here.
        let ii = 4;
        let lts: Vec<Lifetime> = (0..16)
            .map(|i| {
                let start = i * ii + (i % 3);
                lt(i, start, start + 6 + 2 * (i % 4))
            })
            .collect();
        let a = allocate(&lts, ii);
        assert!(a.registers_used() >= a.max_lives());
        // This staircase saturates ~95% of the cylinder area, which is
        // harder than real loop schedules; accept up to ~25% headroom
        // here and assert exact tightness on sparse lifetimes below.
        assert!(
            a.overhead() <= a.max_lives().div_ceil(4),
            "staircase lifetimes pack too loosely: used {}, maxlives {}",
            a.registers_used(),
            a.max_lives()
        );
    }

    #[test]
    fn allocation_exact_on_aligned_values() {
        // Three values defined at the same kernel row in successive
        // stages, each living 6 of 12 cycles: MaxLives = 3 and the
        // allocator must hit it exactly.
        let ii = 12;
        let lts: Vec<Lifetime> = (0..3).map(|i| lt(i, i * ii, i * ii + 6)).collect();
        let a = allocate(&lts, ii);
        assert_eq!(a.max_lives(), 3);
        assert_eq!(a.registers_used(), 3);
        // Offsetting the stages so rows no longer overlap packs all
        // three into one register.
        let lts: Vec<Lifetime> = vec![lt(0, 0, 4), lt(1, 16, 20), lt(2, 32, 36)];
        let a = allocate(&lts, ii);
        assert_eq!(a.max_lives(), 1);
        assert_eq!(a.registers_used(), 1);
    }

    #[test]
    fn full_circle_lifetime_occupies_private_register() {
        // len == K·II exactly: the value monopolises a register.
        let a = allocate(&[lt(0, 0, 4), lt(1, 0, 4)], 4);
        assert_eq!(a.registers_used(), 2);
    }

    #[test]
    fn assignment_covers_all_arcs() {
        let lts = vec![lt(0, 0, 6), lt(1, 1, 4), lt(2, 3, 9)];
        let a = allocate(&lts, 3);
        // K = ceil(6/3)=2, ceil(3/3)=1, ceil(6/3)=2 → K = 2; arcs = 3·2.
        assert_eq!(a.kernel_unroll(), 2);
        assert_eq!(a.assignment().len(), 6);
        // No register id out of range.
        assert!(a.assignment().iter().all(|&(_, r)| r < a.registers_used()));
    }

    #[test]
    fn arc_overlap_wraparound() {
        let c = 10;
        let a = Arc {
            lifetime: 0,
            instance: 0,
            start: 8,
            len: 4,
        }; // 8,9,0,1
        let b = Arc {
            lifetime: 1,
            instance: 0,
            start: 0,
            len: 2,
        }; // 0,1
        let d = Arc {
            lifetime: 2,
            instance: 0,
            start: 2,
            len: 3,
        }; // 2,3,4
        assert!(a.overlaps(&b, c));
        assert!(!a.overlaps(&d, c));
        assert!(!b.overlaps(&d, c));
    }

    /// Build the dense-side inputs (sorted arcs + masks + orders) the
    /// way `allocate_in` does, for packer-level equivalence checks.
    fn dense_inputs(lts: &[Lifetime], ii: u32) -> (Vec<Arc>, Vec<u64>, usize, u64) {
        let k = lts
            .iter()
            .map(|l| l.concurrent_instances(ii))
            .max()
            .unwrap_or(1)
            .max(1)
            .next_power_of_two();
        let c = u64::from(k) * u64::from(ii);
        let mut arcs = Vec::new();
        for (i, l) in lts.iter().enumerate() {
            let len = u64::from(l.len()).min(c);
            for j in 0..k {
                let start = (u64::from(l.start) + u64::from(j) * u64::from(ii)) % c;
                arcs_push(&mut arcs, i as u32, j, start, len);
            }
        }
        arcs.sort_unstable_by_key(|a| (a.start, Reverse(a.len), a.lifetime, a.instance));
        let wpc = words::words_for(c as usize);
        let mut masks = vec![0u64; arcs.len() * wpc];
        for (i, a) in arcs.iter().enumerate() {
            if a.len > 0 {
                words::set_wrapped_run(
                    &mut masks[i * wpc..(i + 1) * wpc],
                    c as usize,
                    a.start as usize,
                    a.len as usize,
                );
            }
        }
        (arcs, masks, wpc, c)
    }

    #[test]
    fn dense_packers_match_reference_packers() {
        // Several lifetime mixes, including wrap-heavy and full-circle
        // shapes: every dense packer must reproduce its reference packer
        // bit for bit (registers AND triples).
        let cases: Vec<(Vec<Lifetime>, u32)> = vec![
            (
                (0..24)
                    .map(|i| lt(i, (i * 3) % 11, (i * 3) % 11 + 5 + (i % 7)))
                    .collect(),
                11,
            ),
            (
                (0..16)
                    .map(|i| lt(i, i * 4 + (i % 3), i * 4 + (i % 3) + 6 + 2 * (i % 4)))
                    .collect(),
                4,
            ),
            (vec![lt(0, 0, 8), lt(1, 3, 5), lt(2, 7, 23)], 2),
            (vec![lt(0, 0, 4), lt(1, 0, 4)], 4),
            (vec![lt(0, 5, 6)], 1),
            (
                (0..12)
                    .map(|i| lt(i, i * 7 % 13, i * 7 % 13 + 1 + i % 11))
                    .collect(),
                13,
            ),
        ];
        for (case, (lts, ii)) in cases.iter().enumerate() {
            let (arcs, masks, wpc, c) = dense_inputs(lts, *ii);
            let idx: Vec<u32> = (0..arcs.len() as u32).collect();
            let mut occ = Vec::new();
            let mut buckets: Vec<Vec<u32>> = Vec::new();
            let mut out = Vec::new();

            let (rr, ra) = pack_first_fit_ref(&arcs, c);
            let dr = pack_first_fit_dense(&arcs, &idx, &masks, wpc, &mut occ, &mut out);
            assert_eq!((rr, &ra), (dr, &out), "first-fit case {case}");

            let (rr, ra) = pack_end_fit_ref(&arcs, c);
            let dr = pack_end_fit_dense(
                &arcs,
                &idx,
                &masks,
                wpc,
                c,
                &mut occ,
                &mut buckets,
                &mut out,
            );
            assert_eq!((rr, &ra), (dr, &out), "end-fit case {case}");

            let (rr, ra) = pack_cut_interval_ref(&arcs, c);
            let mut s = AllocScratch::new();
            s.arcs = arcs.clone();
            s.masks = masks.clone();
            let dr = pack_cut_interval_dense(&mut s, wpc, c);
            assert_eq!((rr, &ra), (dr, &s.tmp), "cut-interval case {case}");
        }
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical() {
        // One warm scratch across many calls must reproduce the
        // throwaway-scratch allocation exactly (registers, assignment
        // order, location table).
        let mut scratch = AllocScratch::new();
        for ii in [1, 2, 3, 7, 12] {
            for n in [0u32, 1, 5, 24] {
                let lts: Vec<Lifetime> = (0..n)
                    .map(|i| lt(i, (i * 5) % (3 * ii), (i * 5) % (3 * ii) + 1 + (i % 9)))
                    .collect();
                let fresh = allocate(&lts, ii);
                let reused = allocate_in(&lts, ii, &mut scratch);
                assert_eq!(fresh, reused, "ii={ii} n={n}");
            }
        }
    }
}
