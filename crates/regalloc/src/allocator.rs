//! Wands-only register allocation: end-fit with adjacency ordering
//! (Rau, Lee, Tirumalai, Schlansker — PLDI'92).
//!
//! Kernel-only code without a rotating register file needs *modulo
//! variable expansion*: the kernel is notionally unrolled `K` times so
//! each concurrently-live instance of a value gets its own register. The
//! allocation problem is then colouring circular arcs on a cylinder of
//! circumference `K·II`:
//!
//! * **adjacency ordering** — arcs are processed in order of their start
//!   position around the cylinder;
//! * **end-fit** — each arc goes to the allocatable register whose most
//!   recent occupant ends closest to the arc's start (smallest wasted
//!   gap), opening a new register only when none fits.
//!
//! The result is within a register or two of the `MaxLives` lower bound
//! on the paper's loop shapes (asserted by tests and measured in
//! EXPERIMENTS.md).

use crate::lifetime::{max_lives, Lifetime};

/// The outcome of allocating one loop's lifetimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAllocation {
    registers_used: u32,
    max_lives: u32,
    kernel_unroll: u32,
    assignment: Vec<(u32, u32)>,
    /// Dense location table: `locations[lifetime · K + instance]` is the
    /// register holding instance `instance` of `lifetime`.
    locations: Vec<u32>,
}

impl RegisterAllocation {
    /// Reassembles an allocation from its parts — the decode half of an
    /// artifact codec (the encode half reads [`Self::registers_used`],
    /// [`Self::max_lives`], [`Self::kernel_unroll`],
    /// [`Self::assignment`] and [`Self::locations`]).
    ///
    /// Performs the consistency checks a cache decoder cannot do itself:
    /// the expansion degree must be a positive power of two, the
    /// location table must hold exactly `kernel_unroll` instances per
    /// lifetime, and every recorded register must fall below
    /// `registers_used`. Returns `None` for inconsistent (corrupt or
    /// stale) parts, never panics.
    #[must_use]
    pub fn from_parts(
        registers_used: u32,
        max_lives: u32,
        kernel_unroll: u32,
        assignment: Vec<(u32, u32)>,
        locations: Vec<u32>,
    ) -> Option<Self> {
        if kernel_unroll == 0 || !kernel_unroll.is_power_of_two() {
            return None;
        }
        if !locations.len().is_multiple_of(kernel_unroll as usize) {
            return None;
        }
        if max_lives > registers_used {
            return None;
        }
        if locations.iter().any(|&r| r >= registers_used)
            || assignment.iter().any(|&(_, r)| r >= registers_used)
        {
            return None;
        }
        Some(RegisterAllocation {
            registers_used,
            max_lives,
            kernel_unroll,
            assignment,
            locations,
        })
    }

    /// Registers the allocator actually used.
    #[must_use]
    pub fn registers_used(&self) -> u32 {
        self.registers_used
    }

    /// The `MaxLives` lower bound for the same lifetimes.
    #[must_use]
    pub fn max_lives(&self) -> u32 {
        self.max_lives
    }

    /// Modulo-variable-expansion degree `K`: kernel copies needed so no
    /// value overwrites a live predecessor instance, rounded up to a
    /// power of two so every per-value rotation period (itself a power
    /// of two, Lam's scheme) divides the expansion — which makes the
    /// uniform `instance = iteration mod K` location rule sound for all
    /// packings.
    #[must_use]
    pub fn kernel_unroll(&self) -> u32 {
        self.kernel_unroll
    }

    /// `(lifetime index, instance j) → register`, flattened in the order
    /// the arcs were allocated. Exposed for inspection and testing.
    #[must_use]
    pub fn assignment(&self) -> &[(u32, u32)] {
        &self.assignment
    }

    /// The dense location table backing [`Self::register_of`], flattened
    /// as `lifetime · kernel_unroll + instance`. Exposed for artifact
    /// codecs (see [`Self::from_parts`]).
    #[must_use]
    pub fn locations(&self) -> &[u32] {
        &self.locations
    }

    /// Allocation overhead above the lower bound.
    #[must_use]
    pub fn overhead(&self) -> u32 {
        self.registers_used - self.max_lives
    }

    /// The register holding instance `instance` of `lifetime` — the
    /// location table a simulator needs to find a value. The instance of
    /// the definition issued in kernel iteration `b` is `b mod K` (see
    /// [`Self::kernel_unroll`]).
    ///
    /// Returns `None` for an out-of-range lifetime or instance.
    #[must_use]
    pub fn register_of(&self, lifetime: u32, instance: u32) -> Option<u32> {
        if instance >= self.kernel_unroll {
            return None;
        }
        let idx = lifetime as usize * self.kernel_unroll as usize + instance as usize;
        self.locations.get(idx).copied()
    }
}

/// One circular arc on the expanded kernel cylinder.
#[derive(Debug, Clone, Copy)]
struct Arc {
    lifetime: u32,
    instance: u32,
    start: u64,
    len: u64,
}

impl Arc {
    /// Half-open coverage test on the cylinder of circumference `c`.
    fn covers(&self, point: u64, c: u64) -> bool {
        debug_assert!(point < c);
        if self.len >= c {
            return true;
        }
        let s = self.start;
        let e = (self.start + self.len) % c;
        if s < e {
            (s..e).contains(&point)
        } else {
            point >= s || point < e
        }
    }

    fn overlaps(&self, other: &Arc, c: u64) -> bool {
        if self.len == 0 || other.len == 0 {
            return false;
        }
        if self.len >= c || other.len >= c {
            return true;
        }
        self.covers(other.start, c) || other.covers(self.start, c)
    }
}

/// Allocates `lifetimes` (from a schedule with initiation interval `ii`)
/// to registers with end-fit/adjacency ordering. Returns the allocation;
/// `registers_used` is the register requirement the spill engine compares
/// against the file size.
///
/// # Panics
///
/// Panics if `ii` is zero.
#[must_use]
pub fn allocate(lifetimes: &[Lifetime], ii: u32) -> RegisterAllocation {
    assert!(ii >= 1, "II must be at least 1");
    let ml = max_lives(lifetimes, ii);
    let k = lifetimes
        .iter()
        .map(|lt| lt.concurrent_instances(ii))
        .max()
        .unwrap_or(1)
        .max(1)
        .next_power_of_two();
    let c = u64::from(k) * u64::from(ii);

    // Expand each lifetime into K arcs (one per kernel copy) and sort by
    // start position (adjacency ordering), then length descending for
    // deterministic, well-packed placement.
    let mut arcs = Vec::with_capacity(lifetimes.len() * k as usize);
    for (i, lt) in lifetimes.iter().enumerate() {
        let len = u64::from(lt.len()).min(c);
        for j in 0..k {
            let start = (u64::from(lt.start) + u64::from(j) * u64::from(ii)) % c;
            arcs.push(Arc {
                lifetime: i as u32,
                instance: j,
                start,
                len,
            });
        }
    }
    arcs.sort_by_key(|a| (a.start, std::cmp::Reverse(a.len), a.lifetime, a.instance));

    // Run the packers and keep the tightest result. End-fit is Rau's
    // published heuristic; first-fit and the min-density-cut interval
    // pass are classic fallbacks; Lam's private-cyclic expansion wins
    // when the shared cylinder fragments badly.
    let mut best = pack_end_fit(&arcs, c);
    // A second arc order — longest arcs first — often packs dense mixes
    // a register or two tighter; both orders feed both greedy packers.
    let mut by_len = arcs.clone();
    by_len.sort_by_key(|a| (std::cmp::Reverse(a.len), a.start, a.lifetime, a.instance));
    for alt in [
        pack_first_fit(&arcs, c),
        pack_end_fit(&by_len, c),
        pack_first_fit(&by_len, c),
        pack_cut_interval(&arcs, c),
        pack_private_cyclic(lifetimes, ii, k),
    ] {
        if alt.0 < best.0 {
            best = alt;
        }
    }
    let (registers_used, triples) = best;

    // Derive the legacy arc-order assignment and the dense location
    // table from the winning packing.
    let assignment: Vec<(u32, u32)> = triples.iter().map(|&(lt, _, r)| (lt, r)).collect();
    let mut locations = vec![u32::MAX; lifetimes.len() * k as usize];
    for &(lt, instance, r) in &triples {
        locations[lt as usize * k as usize + instance as usize] = r;
    }
    debug_assert!(lifetimes.is_empty() || locations.iter().all(|&r| r != u32::MAX));

    RegisterAllocation {
        registers_used,
        max_lives: ml,
        kernel_unroll: k,
        assignment,
        locations,
    }
}

/// Lam's modulo-variable-expansion allocation: value `v` rotates through
/// a private block of `k'_v` registers, where `k'_v` is
/// `⌈len_v / II⌉` rounded up to a power of two so that every block
/// period divides the kernel-unroll period and instances of the same
/// value can never collide across the wrap-around.
fn pack_private_cyclic(
    lifetimes: &[Lifetime],
    ii: u32,
    kernel_unroll: u32,
) -> (u32, Vec<(u32, u32, u32)>) {
    let mut base = 0u32;
    let mut assignment = Vec::with_capacity(lifetimes.len() * kernel_unroll as usize);
    for (i, lt) in lifetimes.iter().enumerate() {
        let k = lt.concurrent_instances(ii).max(1).next_power_of_two();
        for j in 0..kernel_unroll {
            assignment.push((i as u32, j, base + (j % k)));
        }
        base += k;
    }
    (base, assignment)
}

/// First-fit: each arc goes to the lowest-indexed register with no
/// overlap.
fn pack_first_fit(arcs: &[Arc], c: u64) -> (u32, Vec<(u32, u32, u32)>) {
    let mut registers: Vec<Vec<Arc>> = Vec::new();
    let mut assignment = Vec::with_capacity(arcs.len());
    for arc in arcs {
        let r = match registers
            .iter()
            .position(|occ| occ.iter().all(|o| !o.overlaps(arc, c)))
        {
            Some(r) => r,
            None => {
                registers.push(Vec::new());
                registers.len() - 1
            }
        };
        registers[r].push(*arc);
        assignment.push((arc.lifetime, arc.instance, r as u32));
    }
    (registers.len() as u32, assignment)
}

/// End-fit: each arc goes to the fitting register whose nearest
/// preceding end leaves the smallest gap.
fn pack_end_fit(arcs: &[Arc], c: u64) -> (u32, Vec<(u32, u32, u32)>) {
    let mut registers: Vec<Vec<Arc>> = Vec::new();
    let mut assignment = Vec::with_capacity(arcs.len());
    for arc in arcs {
        let mut best: Option<(u64, usize)> = None; // (gap, register)
        for (r, occupants) in registers.iter().enumerate() {
            if occupants.iter().any(|o| o.overlaps(arc, c)) {
                continue;
            }
            // Gap between the nearest preceding end and our start,
            // measured backwards around the cylinder.
            let gap = occupants
                .iter()
                .map(|o| {
                    let end = (o.start + o.len) % c;
                    (arc.start + c - end) % c
                })
                .min()
                .unwrap_or(0);
            if best.is_none_or(|(g, _)| gap < g) {
                best = Some((gap, r));
            }
        }
        let r = match best {
            Some((_, r)) => r,
            None => {
                registers.push(Vec::new());
                registers.len() - 1
            }
        };
        registers[r].push(*arc);
        assignment.push((arc.lifetime, arc.instance, r as u32));
    }
    (registers.len() as u32, assignment)
}

/// Min-density cut: cut the cylinder where the fewest arcs cross, give
/// each crossing arc a private register, and colour the remaining
/// intervals greedily by left endpoint (optimal for interval graphs).
fn pack_cut_interval(arcs: &[Arc], c: u64) -> (u32, Vec<(u32, u32, u32)>) {
    // Density change-points are arc starts; evaluate density there.
    let cut = (0..c)
        .filter(|p| arcs.iter().any(|a| a.start == *p) || *p == 0)
        .min_by_key(|&p| arcs.iter().filter(|a| a.covers(p, c)).count())
        .unwrap_or(0);
    let mut registers: Vec<Vec<(u64, u64)>> = Vec::new(); // busy [from, to) segments
    let mut assignment = Vec::with_capacity(arcs.len());
    // Linearised coordinate: distance clockwise from the cut.
    let lin = |p: u64| (p + c - cut) % c;
    let mut order: Vec<&Arc> = arcs.iter().collect();
    order.sort_by_key(|a| {
        (
            lin(a.start),
            std::cmp::Reverse(a.len),
            a.lifetime,
            a.instance,
        )
    });
    for arc in order {
        let (s, e) = (lin(arc.start), lin(arc.start) + arc.len.min(c));
        // An arc crossing the cut occupies [s, c) and wraps to [0, e-c).
        let new_segs: &[(u64, u64)] = if e > c {
            &[(s, c), (0, e - c)]
        } else {
            &[(s, e)]
        };
        let fits = |segs: &Vec<(u64, u64)>| {
            segs.iter()
                .all(|&(f, t)| new_segs.iter().all(|&(ns, ne)| ne <= f || ns >= t))
        };
        let r = match registers.iter().position(fits) {
            Some(r) => r,
            None => {
                registers.push(Vec::new());
                registers.len() - 1
            }
        };
        registers[r].extend_from_slice(new_segs);
        assignment.push((arc.lifetime, arc.instance, r as u32));
    }
    (registers.len() as u32, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::NodeId;

    fn lt(id: u32, start: u32, end: u32) -> Lifetime {
        Lifetime {
            def: NodeId(id),
            start,
            end,
        }
    }

    #[test]
    fn empty_input_uses_no_registers() {
        let a = allocate(&[], 4);
        assert_eq!(a.registers_used(), 0);
        assert_eq!(a.max_lives(), 0);
    }

    #[test]
    fn single_short_value_uses_one_register() {
        let a = allocate(&[lt(0, 0, 3)], 4);
        assert_eq!(a.registers_used(), 1);
        assert_eq!(a.kernel_unroll(), 1);
        assert_eq!(a.overhead(), 0);
    }

    #[test]
    fn long_value_needs_one_register_per_instance() {
        // len 8 at II=2 → 4 concurrent instances → 4 registers.
        let a = allocate(&[lt(0, 0, 8)], 2);
        assert_eq!(a.max_lives(), 4);
        assert_eq!(a.registers_used(), 4);
        assert_eq!(a.kernel_unroll(), 4);
    }

    #[test]
    fn disjoint_values_share_registers() {
        // Two values that split the II perfectly can share rows but not
        // the same cycles: rows 0..2 and 2..4.
        let a = allocate(&[lt(0, 0, 2), lt(1, 2, 4)], 4);
        assert_eq!(a.max_lives(), 1);
        assert_eq!(
            a.registers_used(),
            1,
            "end-fit should chain them in one register"
        );
    }

    #[test]
    fn allocation_overhead_bounded_on_dense_arcs() {
        // A pressure-heavy adversarial mix. Note that for *circular* arc
        // graphs the chromatic number may genuinely exceed the MaxLives
        // clique bound (unlike interval graphs), so we only require the
        // heuristic to stay within ~25% — PLDI'92's "within a register of
        // optimal" holds for realistic schedules, asserted separately in
        // `allocation_tight_on_scheduled_lifetimes`.
        let lts: Vec<Lifetime> = (0..24)
            .map(|i| {
                let start = (i * 3) % 11;
                lt(i, start, start + 5 + (i % 7))
            })
            .collect();
        let a = allocate(&lts, 11);
        assert!(a.registers_used() >= a.max_lives());
        assert!(
            a.overhead() <= a.max_lives().div_ceil(4),
            "overhead {} too large (used {}, maxlives {})",
            a.overhead(),
            a.registers_used(),
            a.max_lives()
        );
    }

    #[test]
    fn allocation_tight_on_scheduled_lifetimes() {
        // Lifetimes with the staircase structure real modulo schedules
        // produce (defs advance by ~II, bounded spans): end-fit should be
        // within one register of the lower bound here.
        let ii = 4;
        let lts: Vec<Lifetime> = (0..16)
            .map(|i| {
                let start = i * ii + (i % 3);
                lt(i, start, start + 6 + 2 * (i % 4))
            })
            .collect();
        let a = allocate(&lts, ii);
        assert!(a.registers_used() >= a.max_lives());
        // This staircase saturates ~95% of the cylinder area, which is
        // harder than real loop schedules; accept up to ~25% headroom
        // here and assert exact tightness on sparse lifetimes below.
        assert!(
            a.overhead() <= a.max_lives().div_ceil(4),
            "staircase lifetimes pack too loosely: used {}, maxlives {}",
            a.registers_used(),
            a.max_lives()
        );
    }

    #[test]
    fn allocation_exact_on_aligned_values() {
        // Three values defined at the same kernel row in successive
        // stages, each living 6 of 12 cycles: MaxLives = 3 and the
        // allocator must hit it exactly.
        let ii = 12;
        let lts: Vec<Lifetime> = (0..3).map(|i| lt(i, i * ii, i * ii + 6)).collect();
        let a = allocate(&lts, ii);
        assert_eq!(a.max_lives(), 3);
        assert_eq!(a.registers_used(), 3);
        // Offsetting the stages so rows no longer overlap packs all
        // three into one register.
        let lts: Vec<Lifetime> = vec![lt(0, 0, 4), lt(1, 16, 20), lt(2, 32, 36)];
        let a = allocate(&lts, ii);
        assert_eq!(a.max_lives(), 1);
        assert_eq!(a.registers_used(), 1);
    }

    #[test]
    fn full_circle_lifetime_occupies_private_register() {
        // len == K·II exactly: the value monopolises a register.
        let a = allocate(&[lt(0, 0, 4), lt(1, 0, 4)], 4);
        assert_eq!(a.registers_used(), 2);
    }

    #[test]
    fn assignment_covers_all_arcs() {
        let lts = vec![lt(0, 0, 6), lt(1, 1, 4), lt(2, 3, 9)];
        let a = allocate(&lts, 3);
        // K = ceil(6/3)=2, ceil(3/3)=1, ceil(6/3)=2 → K = 2; arcs = 3·2.
        assert_eq!(a.kernel_unroll(), 2);
        assert_eq!(a.assignment().len(), 6);
        // No register id out of range.
        assert!(a.assignment().iter().all(|&(_, r)| r < a.registers_used()));
    }

    #[test]
    fn arc_overlap_wraparound() {
        let c = 10;
        let a = Arc {
            lifetime: 0,
            instance: 0,
            start: 8,
            len: 4,
        }; // 8,9,0,1
        let b = Arc {
            lifetime: 1,
            instance: 0,
            start: 0,
            len: 2,
        }; // 0,1
        let d = Arc {
            lifetime: 2,
            instance: 0,
            start: 2,
            len: 3,
        }; // 2,3,4
        assert!(a.overlaps(&b, c));
        assert!(!a.overlaps(&d, c));
        assert!(!b.overlaps(&d, c));
    }
}
