//! The schedule → allocate → spill → reschedule driver (§3.2).
//!
//! When a loop's register requirement exceeds the file size, spill code
//! frees registers at the price of extra memory traffic — which competes
//! for the buses and can push the initiation interval up. This engine
//! follows the heuristics of Llosa et al. (MICRO-29, *Heuristics for
//! Register-Constrained Software Pipelining*):
//!
//! * spill the lifetimes with the highest *length / traffic* ratio;
//! * never spill values on recurrence circuits (a reload in a recurrence
//!   inflates `RecMII` catastrophically) or values created by earlier
//!   spills;
//! * as an alternative (or fallback), *increase the II*, which shortens
//!   relative lifetimes and lowers pressure without extra traffic.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

use widening_ir::{Ddg, Edge, EdgeKind, GraphError, NodeId, Op, OpKind};
use widening_machine::{Configuration, CycleModel};
use widening_sched::{
    MiiBounds, ModuloScheduler, SchedScratch, Schedule, ScheduleError, SchedulerOptions,
};

use crate::allocator::{allocate_in, AllocScratch, RegisterAllocation};
use crate::lifetime::{lifetimes_into, Lifetime};

/// What to do when register pressure exceeds the file size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SpillPolicy {
    /// Try both pure policies and keep the better result (fewer failed
    /// loops, then lower II). Llosa's MICRO-29 evaluates spilling *and*
    /// II increase and picks per-loop; this is the default.
    #[default]
    Adaptive,
    /// Insert spill code first; increase II only when nothing is
    /// spillable.
    SpillFirst,
    /// Increase the II first; never insert spill code.
    IncreaseIiOnly,
}

/// Options for [`schedule_with_registers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillOptions {
    /// Pressure-relief policy.
    pub policy: SpillPolicy,
    /// Maximum schedule/spill rounds before giving up.
    pub max_rounds: u32,
    /// Maximum values spilled per round.
    pub max_spills_per_round: u32,
}

impl Default for SpillOptions {
    fn default() -> Self {
        SpillOptions {
            policy: SpillPolicy::Adaptive,
            max_rounds: 48,
            max_spills_per_round: 4,
        }
    }
}

/// One spilled value: where its store went and which reloads serve its
/// former consumers. This is the spill location table the simulator uses
/// to route values through memory instead of registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRecord {
    /// The value-producing node whose register was spilled.
    pub victim: NodeId,
    /// The inserted spill store (writes the victim's value each
    /// iteration).
    pub store: NodeId,
    /// One reload per distinct consumer distance: `(distance, reload)` —
    /// the reload issued in iteration `b` returns the victim's value
    /// from iteration `b − distance`.
    pub reloads: Vec<(u32, NodeId)>,
}

/// A register-feasible scheduling result.
#[derive(Debug, Clone)]
pub struct PressureResult {
    /// The final (verified) schedule.
    pub schedule: Schedule,
    /// The final register allocation (`registers_used ≤ Z`).
    pub allocation: RegisterAllocation,
    /// The final dependence graph, including inserted spill code.
    pub ddg: Ddg,
    /// The value lifetimes the allocation was computed from, in
    /// allocation order (lifetime index `i` here is lifetime `i` in
    /// [`RegisterAllocation::register_of`]).
    pub lifetimes: Vec<Lifetime>,
    /// Every spilled value across all rounds, with its store/reload
    /// nodes.
    pub spills: Vec<SpillRecord>,
    /// Spill stores inserted across all rounds.
    pub spill_stores: u32,
    /// Spill reloads inserted across all rounds.
    pub spill_loads: u32,
    /// Schedule rounds consumed (1 = no pressure problem).
    pub rounds: u32,
}

/// Errors from the register-pressure driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegallocError {
    /// The scheduler itself failed.
    Schedule(ScheduleError),
    /// Pressure could not be brought under the file size — the paper hits
    /// this for `8w1` with a 32-register file (§3.2).
    Pressure {
        /// Best requirement achieved.
        needed: u32,
        /// Registers available.
        available: u32,
    },
    /// Spill rewriting produced an invalid graph (indicates a bug; never
    /// expected).
    Rewrite(GraphError),
}

impl fmt::Display for RegallocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegallocError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            RegallocError::Pressure { needed, available } => {
                write!(
                    f,
                    "register pressure {needed} exceeds {available} available registers"
                )
            }
            RegallocError::Rewrite(e) => write!(f, "spill rewrite produced invalid graph: {e}"),
        }
    }
}

impl Error for RegallocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegallocError::Schedule(e) => Some(e),
            RegallocError::Rewrite(e) => Some(e),
            RegallocError::Pressure { .. } => None,
        }
    }
}

impl From<ScheduleError> for RegallocError {
    fn from(e: ScheduleError) -> Self {
        RegallocError::Schedule(e)
    }
}

/// A precomputed pressure-free first round: the schedule of the
/// **unmodified** graph at `min_ii = 1` under the same scheduler
/// options and cycle model, plus its lifetimes and end-fit allocation.
///
/// Round 1 never consults the register-file size, so one first round
/// serves every `Z` of a register-file sweep; the staged pipeline
/// memoizes it and passes it to [`schedule_with_registers_seeded`] to
/// skip the duplicate scheduler run.
#[derive(Debug, Clone, Copy)]
pub struct FirstRound<'a> {
    /// Schedule of the unmodified graph at the unconstrained II.
    pub schedule: &'a Schedule,
    /// Lifetimes of that schedule.
    pub lifetimes: &'a [Lifetime],
    /// End-fit allocation of those lifetimes.
    pub allocation: &'a RegisterAllocation,
}

/// Schedules `ddg` on `cfg`, inserting spill code and/or raising the II
/// until the register requirement fits `cfg.registers()`.
///
/// # Errors
///
/// * [`RegallocError::Schedule`] if the modulo scheduler fails outright;
/// * [`RegallocError::Pressure`] if pressure cannot be resolved within
///   the round budget (the paper's `8w1(32-RF)` case).
pub fn schedule_with_registers(
    ddg: &Ddg,
    cfg: &Configuration,
    model: CycleModel,
    sched_opts: &SchedulerOptions,
    spill_opts: &SpillOptions,
) -> Result<PressureResult, RegallocError> {
    schedule_with_registers_seeded(ddg, cfg, model, sched_opts, spill_opts, None)
}

/// [`schedule_with_registers`] with an optional precomputed
/// [`FirstRound`]. The caller guarantees `first` was produced from this
/// exact `(ddg, resources, model, scheduler options)` — the engine then
/// starts from it instead of re-running round 1, which is the hot path
/// of multi-`Z` sweeps.
///
/// # Errors
///
/// See [`schedule_with_registers`].
pub fn schedule_with_registers_seeded(
    ddg: &Ddg,
    cfg: &Configuration,
    model: CycleModel,
    sched_opts: &SchedulerOptions,
    spill_opts: &SpillOptions,
    first: Option<FirstRound<'_>>,
) -> Result<PressureResult, RegallocError> {
    if spill_opts.policy == SpillPolicy::Adaptive {
        // Run the spill-first engine; if it needed pressure relief (or
        // failed), also try pure II increase and keep the better result.
        // Memory-bound machines often prefer the II increase: spill
        // traffic competes for the very buses that set the II.
        let spill = schedule_with_registers_seeded(
            ddg,
            cfg,
            model,
            sched_opts,
            &SpillOptions {
                policy: SpillPolicy::SpillFirst,
                ..*spill_opts
            },
            first,
        );
        if matches!(&spill, Ok(r) if r.rounds == 1) {
            return spill;
        }
        let stretch = schedule_with_registers_seeded(
            ddg,
            cfg,
            model,
            sched_opts,
            &SpillOptions {
                policy: SpillPolicy::IncreaseIiOnly,
                ..*spill_opts
            },
            first,
        );
        return match (spill, stretch) {
            (Ok(a), Ok(b)) => Ok(if a.schedule.ii() <= b.schedule.ii() {
                a
            } else {
                b
            }),
            (Ok(a), Err(_)) => Ok(a),
            (Err(_), Ok(b)) => Ok(b),
            (Err(a), Err(_)) => Err(a),
        };
    }
    let scheduler = ModuloScheduler::with_options(*cfg, model, *sched_opts);
    let available = cfg.registers();
    // The graph is only cloned when spill code actually rewrites it; the
    // common pressure-free round 1 returns with a single deferred clone.
    let mut graph: Cow<'_, Ddg> = Cow::Borrowed(ddg);
    let mut spill_loads = 0u32;
    let mut spill_stores = 0u32;
    let mut spill_records: Vec<SpillRecord> = Vec::new();
    let mut spill_made: Vec<bool> = vec![false; ddg.num_nodes()];
    let mut min_ii = 1u32;
    let mut best_needed = u32::MAX;
    // Consumed at round 1 only: later rounds see a modified graph or a
    // raised min_ii, for which the seed is no longer valid.
    let mut seeded = first;
    // Scratch arenas reused across rounds: scheduler attempt state,
    // allocator tables, the lifetime list and the spill-rewrite tables.
    let mut sched_scratch = SchedScratch::new();
    let mut alloc_scratch = AllocScratch::new();
    let mut lts_buf: Vec<Lifetime> = Vec::new();
    let mut rewrite = RewriteScratch::default();
    // MII bounds are a deterministic function of the graph alone, so one
    // computation serves every round until spill code changes the graph
    // (min_ii bumps reuse it).
    let mut bounds: Option<MiiBounds> = None;

    for round in 1..=spill_opts.max_rounds {
        let (schedule, alloc) = match seeded.take() {
            Some(f) => {
                lts_buf.clear();
                lts_buf.extend_from_slice(f.lifetimes);
                (f.schedule.clone(), f.allocation.clone())
            }
            None => {
                let b = bounds.get_or_insert_with(|| MiiBounds::compute(&graph, cfg, model));
                let schedule = scheduler.schedule_with(&graph, b, min_ii, &mut sched_scratch)?;
                lifetimes_into(&graph, &schedule, model, &mut lts_buf);
                let alloc = allocate_in(&lts_buf, schedule.ii(), &mut alloc_scratch);
                (schedule, alloc)
            }
        };
        let needed = alloc.registers_used();
        best_needed = best_needed.min(needed);
        if needed <= available {
            return Ok(PressureResult {
                schedule,
                allocation: alloc,
                ddg: graph.into_owned(),
                lifetimes: std::mem::take(&mut lts_buf),
                spills: spill_records,
                spill_stores,
                spill_loads,
                rounds: round,
            });
        }

        // Pressure too high: pick a relief action for the next round.
        // Deep deficits (huge loop bodies on tiny files) need many
        // victims per round or the round budget runs out first.
        let excess = needed - available;
        let per_round = spill_opts.max_spills_per_round.max(excess.div_ceil(2));
        let did_spill = if spill_opts.policy == SpillPolicy::SpillFirst {
            let picked = pick_spill_candidates(
                &graph,
                &lts_buf,
                schedule.ii(),
                model,
                &spill_made,
                excess,
                per_round,
            );
            if picked.is_empty() {
                false
            } else {
                let (g, records) = insert_spills_with(&graph, &picked, &mut rewrite)
                    .map_err(RegallocError::Rewrite)?;
                spill_made.resize(g.num_nodes(), false);
                for v in &picked {
                    spill_made[v.index()] = true;
                }
                // Newly added spill ops must never be spilled themselves.
                for made in &mut spill_made[graph.num_nodes()..g.num_nodes()] {
                    *made = true;
                }
                graph = Cow::Owned(g);
                bounds = None;
                for r in &records {
                    spill_stores += 1;
                    spill_loads += r.reloads.len() as u32;
                }
                spill_records.extend(records);
                true
            }
        } else {
            false
        };
        if !did_spill {
            // Fallback (or IncreaseIiOnly policy): force a larger II.
            min_ii = schedule.ii() + 1;
        }
    }
    Err(RegallocError::Pressure {
        needed: best_needed,
        available,
    })
}

/// Chooses which values to spill this round: highest length/traffic
/// ratio, skipping recurrence values, spill-created values, and lifetimes
/// whose post-spill replacement would occupy as many register-rows as
/// they do now.
///
/// The relief metric is *row occupancy*: `MaxLives` sums the rows each
/// value covers, so spilling value `v` relieves roughly
/// `len(v) − (lat(def)+1) − reloads·(lat(load)+1)` rows — the original
/// range replaced by a short def→store window plus one reload window per
/// distinct consumer distance.
fn pick_spill_candidates(
    ddg: &Ddg,
    lts: &[Lifetime],
    ii: u32,
    model: CycleModel,
    spill_made: &[bool],
    excess: u32,
    max_spills: u32,
) -> Vec<NodeId> {
    let on_recurrence: Vec<bool> = {
        let mut v = vec![false; ddg.num_nodes()];
        for n in ddg.recurrence_nodes() {
            v[n.index()] = true;
        }
        v
    };
    let load_lat = model.latency(OpKind::Load);
    let mut scored: Vec<(f64, u32, i64, NodeId)> = Vec::new();
    for lt in lts {
        let v = lt.def;
        if spill_made[v.index()] || on_recurrence[v.index()] {
            continue;
        }
        // Distinct carried distances = number of reloads we would insert.
        let mut distances: Vec<u32> = ddg
            .out_edges(v)
            .filter(|e| e.kind.is_flow())
            .map(|e| e.distance)
            .collect();
        distances.sort_unstable();
        distances.dedup();
        let reloads = distances.len() as u32;
        if reloads == 0 {
            continue;
        }
        let def_lat = model.latency(ddg.op(v).kind());
        let row_saving = i64::from(lt.len())
            - i64::from(def_lat + 1)
            - i64::from(reloads) * i64::from(load_lat + 1);
        let score = f64::from(lt.len()) / f64::from(1 + reloads);
        // Register-count relief: at least one row of the II on average.
        let relief = row_saving.max(0) as u32 / ii;
        scored.push((score, relief, row_saving, v));
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.3.cmp(&b.3)));
    // Tier 1: lifetimes whose replacement occupies strictly fewer rows.
    let mut out = Vec::new();
    let mut covered = 0u32;
    for &(_, relief, row_saving, v) in &scored {
        if out.len() as u32 >= max_spills || covered >= excess {
            break;
        }
        if row_saving > 0 {
            covered += relief.max(1);
            out.push(v);
        }
    }
    if !out.is_empty() {
        return out;
    }
    // Tier 2 (desperation): every direct saving is exhausted, but
    // spilling still adds memory traffic, which raises the II and
    // relieves pressure globally — the last resort before declaring the
    // loop unschedulable, matching how a register-starved compiler
    // behaves. Spill the few longest remaining lifetimes.
    scored
        .iter()
        .filter(|&&(_, _, _, v)| {
            // Still worth a store+reload: the value lives longer than
            // the reload window it would be replaced by.
            lts.iter().any(|lt| lt.def == v && lt.len() > load_lat + 2)
        })
        .take(4.max(max_spills as usize / 2))
        .map(|&(_, _, _, v)| v)
        .collect()
}

/// Reusable spill-rewrite tables: dense `NodeId`-indexed victim lookup
/// plus per-victim store/reload lists, cleared — not reallocated —
/// between rounds.
#[derive(Debug, Default)]
struct RewriteScratch {
    /// `victim_slot[node] = i` iff `node == victims[i]`, else `u32::MAX`.
    victim_slot: Vec<u32>,
    /// Spill store per victim (parallel to `victims`).
    stores: Vec<NodeId>,
    /// Reloads per victim, `(distance, reload)` in creation order.
    reloads: Vec<Vec<(u32, NodeId)>>,
}

const NO_SLOT: u32 = u32::MAX;

/// Rewrites `ddg`, spilling each value in `victims`: the definition
/// gains a spill store, and each distinct consumer distance gains one
/// reload that takes over those consumers' flow edges. Returns the new
/// graph plus one [`SpillRecord`] per victim. Victim lookup is a dense
/// `NodeId`-indexed table in `s`, reused across rounds.
fn insert_spills_with(
    ddg: &Ddg,
    victims: &[NodeId],
    s: &mut RewriteScratch,
) -> Result<(Ddg, Vec<SpillRecord>), GraphError> {
    let mut ops: Vec<Op> = ddg.ops().to_vec();
    let mut edges: Vec<Edge> = Vec::with_capacity(ddg.num_edges() + victims.len() * 3);

    s.victim_slot.clear();
    s.victim_slot.resize(ddg.num_nodes(), NO_SLOT);
    s.stores.clear();
    if s.reloads.len() < victims.len() {
        s.reloads.resize_with(victims.len(), Vec::new);
    }
    for r in &mut s.reloads[..victims.len()] {
        r.clear();
    }
    for (i, &v) in victims.iter().enumerate() {
        s.victim_slot[v.index()] = i as u32;
        let store = NodeId(ops.len() as u32);
        ops.push(Op::memory(OpKind::Store, 1).never_compactable());
        s.stores.push(store);
        edges.push(Edge {
            src: v,
            dst: store,
            kind: EdgeKind::Flow,
            distance: 0,
        });
    }
    for e in ddg.edges() {
        let slot = s.victim_slot[e.src.index()];
        if !e.kind.is_flow() || slot == NO_SLOT {
            edges.push(*e);
            continue;
        }
        let slot = slot as usize;
        // Reloads are created on demand, one per distinct distance; the
        // per-victim list is small (a handful of distances), so a linear
        // probe beats any hashing.
        let reload = match s.reloads[slot].iter().find(|&&(d, _)| d == e.distance) {
            Some(&(_, id)) => id,
            None => {
                let id = NodeId(ops.len() as u32);
                ops.push(Op::memory(OpKind::Load, 1).never_compactable());
                // The reload reads the spill slot written `distance`
                // iterations earlier.
                edges.push(Edge {
                    src: s.stores[slot],
                    dst: id,
                    kind: EdgeKind::Memory,
                    distance: e.distance,
                });
                s.reloads[slot].push((e.distance, id));
                id
            }
        };
        edges.push(Edge {
            src: reload,
            dst: e.dst,
            kind: EdgeKind::Flow,
            distance: 0,
        });
    }
    let records = victims
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut reloads = s.reloads[i].clone();
            reloads.sort_unstable();
            SpillRecord {
                victim: v,
                store: s.stores[i],
                reloads,
            }
        })
        .collect();
    Ok((Ddg::from_parts(ops, edges)?, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::DdgBuilder;

    const M4: CycleModel = CycleModel::Cycles4;

    /// A loop with many long-lived loads feeding one late consumer chain:
    /// high register pressure at small II.
    fn pressure_loop(n_loads: usize) -> Ddg {
        let mut b = DdgBuilder::new();
        let loads: Vec<_> = (0..n_loads).map(|_| b.load(1)).collect();
        // A reduction tree of adds consuming all loads pairwise in
        // sequence keeps the early loads alive for a long time.
        let mut acc = loads[0];
        for &l in &loads[1..] {
            let a = b.op(OpKind::FAdd);
            b.flow(acc, a);
            b.flow(l, a);
            acc = a;
        }
        let st = b.store(1);
        b.flow(acc, st);
        b.build().unwrap()
    }

    fn cfg(x: u32, z: u32) -> Configuration {
        Configuration::monolithic(x, 1, z).unwrap()
    }

    #[test]
    fn no_pressure_passes_through() {
        let g = pressure_loop(3);
        let r = schedule_with_registers(
            &g,
            &cfg(1, 256),
            M4,
            &SchedulerOptions::default(),
            &SpillOptions::default(),
        )
        .unwrap();
        assert_eq!(r.rounds, 1);
        assert_eq!(r.spill_stores + r.spill_loads, 0);
        assert!(r.allocation.registers_used() <= 256);
    }

    #[test]
    fn spilling_relieves_small_file() {
        // 12 concurrent loads on a fast machine into an 8-register file.
        let g = pressure_loop(12);
        let r = schedule_with_registers(
            &g,
            &cfg(4, 8),
            M4,
            &SchedulerOptions::default(),
            &SpillOptions::default(),
        )
        .unwrap();
        assert!(r.allocation.registers_used() <= 8);
        assert!(r.spill_stores > 0 || r.rounds > 1);
        // Spill traffic exists and the final graph grew.
        if r.spill_stores > 0 {
            assert!(r.ddg.num_nodes() > g.num_nodes());
        }
    }

    #[test]
    fn increase_ii_only_policy_never_spills() {
        let g = pressure_loop(12);
        let r = schedule_with_registers(
            &g,
            &cfg(4, 8),
            M4,
            &SchedulerOptions::default(),
            &SpillOptions {
                policy: SpillPolicy::IncreaseIiOnly,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.spill_stores + r.spill_loads, 0);
        assert!(r.allocation.registers_used() <= 8);
        // It paid with a larger II than the unconstrained schedule.
        let free = ModuloScheduler::new(cfg(4, 8), M4).schedule(&g).unwrap();
        assert!(r.schedule.ii() > free.ii());
    }

    #[test]
    fn impossible_pressure_reports_error() {
        // 2 registers cannot hold a 12-load reduction even with spilling
        // bounded by round budget — expect a clean Pressure error, not a
        // hang. (Very small II windows keep the search cheap.)
        let g = pressure_loop(16);
        let r = schedule_with_registers(
            &g,
            &cfg(4, 2),
            M4,
            &SchedulerOptions::default(),
            &SpillOptions {
                max_rounds: 6,
                ..Default::default()
            },
        );
        match r {
            Err(RegallocError::Pressure { needed, available }) => {
                assert_eq!(available, 2);
                assert!(needed > 2);
            }
            Ok(res) => panic!(
                "expected pressure failure, got II={} regs={}",
                res.schedule.ii(),
                res.allocation.registers_used()
            ),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn insert_spills_rewrites_uses_through_reload() {
        // v (load) feeds two adds at distances 0 and 2.
        let mut b = DdgBuilder::new();
        let v = b.load(1);
        let a0 = b.op(OpKind::FAdd);
        let a2 = b.op(OpKind::FAdd);
        b.flow(v, a0);
        b.carried_flow(v, a2, 2);
        let g = b.build().unwrap();
        let (g2, records) = insert_spills_with(&g, &[v], &mut RewriteScratch::default()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].victim, v);
        assert_eq!(records[0].reloads.len(), 2); // one per distinct distance
        assert_eq!(records[0].reloads[0].0, 0);
        assert_eq!(records[0].reloads[1].0, 2);
        assert_eq!(g2.num_nodes(), g.num_nodes() + 3);
        // v no longer feeds the adds directly.
        assert!(g2
            .out_edges(v)
            .all(|e| !e.kind.is_flow() || g2.op(e.dst).kind() == OpKind::Store));
        // Every add is fed by exactly one load now.
        for a in [a0, a2] {
            let flows: Vec<_> = g2.in_edges(a).filter(|e| e.kind.is_flow()).collect();
            assert_eq!(flows.len(), 1);
            assert_eq!(g2.op(flows[0].src).kind(), OpKind::Load);
        }
    }

    #[test]
    fn spill_candidates_skip_recurrences_and_spill_ops() {
        let mut b = DdgBuilder::new();
        let acc = b.op(OpKind::FAdd); // recurrence value
        b.carried_flow(acc, acc, 1);
        let ld = b.load(1);
        let use1 = b.op(OpKind::FMul);
        b.flow(ld, use1);
        b.flow(use1, acc);
        let g = b.build().unwrap();
        let lts = vec![
            Lifetime {
                def: acc,
                start: 0,
                end: 40,
            },
            Lifetime {
                def: ld,
                start: 0,
                end: 40,
            },
            Lifetime {
                def: use1,
                start: 0,
                end: 4,
            },
        ];
        let spill_made = vec![false, true, false];
        let picked = pick_spill_candidates(&g, &lts, 2, M4, &spill_made, 10, 4);
        // acc is a recurrence, ld is marked spill-made, use1 too short.
        assert!(picked.is_empty());
        let spill_made = vec![false, false, false];
        let picked = pick_spill_candidates(&g, &lts, 2, M4, &spill_made, 10, 4);
        assert_eq!(picked, vec![ld]);
    }

    #[test]
    fn error_display_and_source() {
        let e = RegallocError::Pressure {
            needed: 40,
            available: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(Error::source(&e).is_none());
        let e = RegallocError::Schedule(ScheduleError::ZeroIi);
        assert!(Error::source(&e).is_some());
    }
}
