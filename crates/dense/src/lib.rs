//! Dense storage primitives for the compile-chain hot paths.
//!
//! Everything in the scheduler and register allocator is keyed by a
//! small dense integer — a [`NodeId`](https://docs.rs) index, an edge
//! index, a lifetime index, a kernel row, a cylinder slot. This crate
//! provides the flat-table and word-bitset building blocks those hot
//! paths share, all designed around one discipline:
//!
//! * **reset, don't reallocate** — every container has a `reset(..)`
//!   that clears and re-sizes in place, so a scratch arena warmed up
//!   once serves every subsequent II attempt without touching the heap;
//! * **probe words, not elements** — occupancy questions (“is this run
//!   of slots free?”, “do these two coverage sets intersect?”) are
//!   answered 64 slots at a time via the [`words`] helpers.
//!
//! The types here are deliberately minimal: no iterators that allocate,
//! no entry APIs, no hashing. See the `sched` crate's `SchedScratch`
//! and the `regalloc` crate's `AllocScratch` for the arenas composed
//! from these parts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Word-level helpers over `&[u64]` bit storage.
///
/// These operate on raw word slices so callers can pack many fixed-size
/// bit rows into one flat allocation (e.g. one occupancy row per
/// register, `stride` words each) and still probe them word-at-a-time.
pub mod words {
    /// Number of `u64` words needed to hold `bits` bits.
    #[must_use]
    pub const fn words_for(bits: usize) -> usize {
        bits.div_ceil(64)
    }

    /// Mask with bits `[lo, hi)` of a single word set (`0 ≤ lo ≤ hi ≤ 64`).
    #[inline]
    #[must_use]
    pub const fn span_mask(lo: usize, hi: usize) -> u64 {
        if lo >= hi {
            return 0;
        }
        let top = if hi == 64 { u64::MAX } else { (1u64 << hi) - 1 };
        top & !((1u64 << lo) - 1)
    }

    /// Whether bit `i` is set.
    #[inline]
    #[must_use]
    pub fn get(words: &[u64], i: usize) -> bool {
        words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(words: &mut [u64], i: usize) {
        words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(words: &mut [u64], i: usize) {
        words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Set the linear run `[start, start + len)`.
    pub fn set_run(words: &mut [u64], start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let (w0, w1) = (start / 64, (end - 1) / 64);
        if w0 == w1 {
            words[w0] |= span_mask(start % 64, (end - 1) % 64 + 1);
        } else {
            words[w0] |= span_mask(start % 64, 64);
            for w in &mut words[w0 + 1..w1] {
                *w = u64::MAX;
            }
            words[w1] |= span_mask(0, (end - 1) % 64 + 1);
        }
    }

    /// Clear the linear run `[start, start + len)`.
    pub fn clear_run(words: &mut [u64], start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let (w0, w1) = (start / 64, (end - 1) / 64);
        if w0 == w1 {
            words[w0] &= !span_mask(start % 64, (end - 1) % 64 + 1);
        } else {
            words[w0] &= !span_mask(start % 64, 64);
            for w in &mut words[w0 + 1..w1] {
                *w = 0;
            }
            words[w1] &= !span_mask(0, (end - 1) % 64 + 1);
        }
    }

    /// Whether the linear run `[start, start + len)` is entirely clear.
    #[must_use]
    pub fn run_is_clear(words: &[u64], start: usize, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let end = start + len;
        let (w0, w1) = (start / 64, (end - 1) / 64);
        if w0 == w1 {
            return words[w0] & span_mask(start % 64, (end - 1) % 64 + 1) == 0;
        }
        if words[w0] & span_mask(start % 64, 64) != 0 {
            return false;
        }
        if words[w0 + 1..w1].iter().any(|&w| w != 0) {
            return false;
        }
        words[w1] & span_mask(0, (end - 1) % 64 + 1) == 0
    }

    /// Set the cyclic run of `run` bits starting at `start` on a circle
    /// of `nbits` bits (`run ≤ nbits`, `start < nbits`).
    pub fn set_wrapped_run(words: &mut [u64], nbits: usize, start: usize, run: usize) {
        debug_assert!(run <= nbits && (start < nbits || nbits == 0));
        if start + run <= nbits {
            set_run(words, start, run);
        } else {
            set_run(words, start, nbits - start);
            set_run(words, 0, run - (nbits - start));
        }
    }

    /// Whether the cyclic run of `run` bits starting at `start` is
    /// entirely clear (circle of `nbits` bits, `run ≤ nbits`).
    #[must_use]
    pub fn wrapped_run_is_clear(words: &[u64], nbits: usize, start: usize, run: usize) -> bool {
        debug_assert!(run <= nbits && (start < nbits || nbits == 0));
        if start + run <= nbits {
            run_is_clear(words, start, run)
        } else {
            run_is_clear(words, start, nbits - start)
                && run_is_clear(words, 0, run - (nbits - start))
        }
    }

    /// Whether two equal-length bit rows share no set bit (word-AND).
    #[must_use]
    pub fn disjoint(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).all(|(&x, &y)| x & y == 0)
    }

    /// OR `src` into `dst` (equal length).
    pub fn union_into(dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }
}

/// A dense, index-keyed table — an `ArrayMap` over small integer ids.
///
/// Semantically a `Vec<T>` whose only growth operation is
/// [`Table::reset`]: clear and refill to a new length with a fill
/// value, retaining capacity. Using it instead of a bare `Vec` marks a
/// buffer as *scratch with resettable identity* (keyed by node id,
/// lifetime index, …) rather than an accumulating list.
#[derive(Debug, Clone, Default)]
pub struct Table<T> {
    items: Vec<T>,
}

impl<T> Table<T> {
    /// Empty table; allocates nothing.
    #[must_use]
    pub fn new() -> Self {
        Table { items: Vec::new() }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Clone> Table<T> {
    /// Clear and refill to `n` copies of `fill`, keeping capacity.
    pub fn reset(&mut self, n: usize, fill: T) {
        self.items.clear();
        self.items.resize(n, fill);
    }
}

impl<T> std::ops::Deref for Table<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<T> std::ops::DerefMut for Table<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.items
    }
}

/// A fixed-length word bitset with in-place reset.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Empty bitset; allocates nothing.
    #[must_use]
    pub fn new() -> Self {
        BitSet {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Clear all bits and resize to `len` bits, keeping capacity.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(words::words_for(len), 0);
        self.len = len;
    }

    /// Number of addressable bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset addresses zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    #[inline]
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        words::get(&self.words, i)
    }

    /// Set bit `i`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let was = words::get(&self.words, i);
        words::set(&mut self.words, i);
        !was
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        words::clear(&mut self.words, i);
    }

    /// Zero every bit, keeping the length.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Whether any bit is set in both `self` and `other` (equal length).
    #[must_use]
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        !words::disjoint(&self.words, &other.words)
    }

    /// OR `other` into `self` (equal length).
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        words::union_into(&mut self.words, &other.words);
    }

    /// The backing words (low bit of word 0 is bit 0).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

/// A dense boolean matrix (`rows × cols`) over one flat word buffer,
/// with in-place reset. Used for reachability closures where both axes
/// are node ids.
#[derive(Debug, Clone, Default)]
pub struct BitMatrix {
    stride: usize,
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Empty matrix; allocates nothing.
    #[must_use]
    pub fn new() -> Self {
        BitMatrix::default()
    }

    /// Clear all bits and resize to `rows × cols`, keeping capacity.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.stride = words::words_for(cols);
        self.rows = rows;
        self.cols = cols;
        self.bits.clear();
        self.bits.resize(rows * self.stride, 0);
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether bit `(r, c)` is set.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        words::get(&self.bits[r * self.stride..(r + 1) * self.stride], c)
    }

    /// Set bit `(r, c)`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let row = &mut self.bits[r * self.stride..(r + 1) * self.stride];
        let was = words::get(row, c);
        words::set(row, c);
        !was
    }

    /// The words of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows);
        &self.bits[r * self.stride..(r + 1) * self.stride]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_mask_edges() {
        assert_eq!(words::span_mask(0, 64), u64::MAX);
        assert_eq!(words::span_mask(0, 1), 1);
        assert_eq!(words::span_mask(63, 64), 1u64 << 63);
        assert_eq!(words::span_mask(5, 5), 0);
        assert_eq!(words::span_mask(4, 8), 0b1111_0000);
    }

    #[test]
    fn run_ops_match_bit_ops() {
        // Exhaustive-ish cross-check of the word-level run helpers
        // against the obvious bit-at-a-time reference.
        let nbits = 150;
        for &(start, len) in &[
            (0, 1),
            (63, 2),
            (0, 150),
            (149, 1),
            (64, 64),
            (10, 100),
            (70, 5),
        ] {
            let mut w = vec![0u64; words::words_for(nbits)];
            words::set_run(&mut w, start, len.min(nbits - start));
            for i in 0..nbits {
                let expect = i >= start && i < start + len.min(nbits - start);
                assert_eq!(words::get(&w, i), expect, "bit {i} of run {start}+{len}");
            }
            assert!(!words::run_is_clear(&w, start, len.min(nbits - start)));
            words::clear_run(&mut w, start, len.min(nbits - start));
            assert!(w.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn wrapped_run_wraps() {
        let nbits = 100;
        let mut w = vec![0u64; words::words_for(nbits)];
        words::set_wrapped_run(&mut w, nbits, 90, 20); // [90,100) ∪ [0,10)
        for i in 0..nbits {
            assert_eq!(words::get(&w, i), !(10..90).contains(&i));
        }
        assert!(!words::wrapped_run_is_clear(&w, nbits, 95, 2));
        assert!(words::wrapped_run_is_clear(&w, nbits, 10, 80));
    }

    #[test]
    fn bitset_reset_reuses() {
        let mut b = BitSet::new();
        b.reset(70);
        assert!(b.insert(69));
        assert!(!b.insert(69));
        assert!(b.contains(69));
        b.reset(10);
        assert_eq!(b.len(), 10);
        assert!(!b.contains(9));
    }

    #[test]
    fn bitset_intersects_and_union() {
        let (mut a, mut b) = (BitSet::new(), BitSet::new());
        a.reset(130);
        b.reset(130);
        a.insert(128);
        assert!(!a.intersects(&b));
        b.insert(128);
        assert!(a.intersects(&b));
        let mut c = BitSet::new();
        c.reset(130);
        c.union_with(&a);
        assert!(c.contains(128));
    }

    #[test]
    fn bitmatrix_round_trip() {
        let mut m = BitMatrix::new();
        m.reset(3, 70);
        assert!(m.insert(2, 69));
        assert!(!m.insert(2, 69));
        assert!(m.get(2, 69));
        assert!(!m.get(1, 69));
        assert_eq!(m.row(2)[1], 1u64 << 5);
        m.reset(1, 4);
        assert!(!m.get(0, 3));
    }

    #[test]
    fn table_reset_keeps_capacity() {
        let mut t: Table<u32> = Table::new();
        t.reset(4, 7);
        assert_eq!(&t[..], &[7, 7, 7, 7]);
        t[2] = 9;
        t.reset(2, 0);
        assert_eq!(&t[..], &[0, 0]);
    }
}
