//! Criterion benchmark harness for the Widening Resources reproduction.
//!
//! All targets live under `benches/`; this library only re-exports the
//! facade crate so the benches share one import path.
pub use widening;
