//! Regenerates Figure 7 (relative code size at equal peak performance).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments::{self, Context};

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let ctx = Context::quick(25);
    g.bench_function("fig7_code_size_25_loops", |b| {
        b.iter(|| black_box(experiments::fig7(&ctx)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
