//! Micro-benchmarks of the pipeline stages: corpus generation, the
//! widening transform, MII bounds, modulo scheduling and register
//! allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::machine::{Configuration, CycleModel};
use widening::regalloc::{allocate, lifetimes};
use widening::sched::{MiiBounds, ModuloScheduler};
use widening::transform::widen;
use widening::workload::corpus::{generate, CorpusSpec};
use widening::workload::kernels;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("corpus_generate_100", |b| {
        b.iter(|| black_box(generate(&CorpusSpec::small(100, 7))))
    });
    let fir = kernels::fir5();
    for y in [2u32, 8] {
        g.bench_function(format!("widen_fir5_y{y}"), |b| {
            b.iter(|| black_box(widen(fir.ddg(), y)))
        });
    }
    let cfg = Configuration::monolithic(2, 1, 256).unwrap();
    let m = CycleModel::Cycles4;
    g.bench_function("mii_bounds_fir5", |b| {
        b.iter(|| black_box(MiiBounds::compute(fir.ddg(), &cfg, m)))
    });
    let sched = ModuloScheduler::new(cfg, m).schedule(fir.ddg()).unwrap();
    g.bench_function("hrms_schedule_fir5", |b| {
        let s = ModuloScheduler::new(cfg, m);
        b.iter(|| black_box(s.schedule(fir.ddg()).unwrap()))
    });
    let lts = lifetimes(fir.ddg(), &sched, m);
    g.bench_function("allocate_fir5", |b| {
        b.iter(|| black_box(allocate(&lts, sched.ii())))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
