//! Simulator hot-path benchmark: simulated loops per second at the
//! scalar baseline `1w1` versus the paper's winner `4w2`, for both
//! execution backends — the cycle-level interpreter and the lowered
//! `WideProgram` bytecode — plus the lowering step itself and the
//! scalar reference interpreter alone. Future PRs touching the
//! simulator's issue loop, operand resolution, forwarding rings or the
//! bytecode executor should watch these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::lower::lower;
use widening::machine::{Configuration, CycleModel};
use widening::regalloc::schedule_with_registers;
use widening::sim::{run_reference, simulate_scheduled, Backend, WideMachine};
use widening::transform::widen;
use widening::workload::kernels;

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(20);
    let model = CycleModel::Cycles4;
    let loops = kernels::all();

    for spec in ["1w1(64:1)", "4w2(128:1)"] {
        let cfg: Configuration = spec.parse().unwrap();
        // Pre-schedule outside the timed region: the benchmark tracks
        // the simulator, not the scheduler.
        let prepared: Vec<_> = loops
            .iter()
            .map(|l| {
                let outcome = widen(l.ddg(), cfg.widening());
                let result = schedule_with_registers(
                    outcome.ddg(),
                    &cfg,
                    model,
                    &Default::default(),
                    &Default::default(),
                )
                .unwrap_or_else(|e| panic!("{} on {spec}: {e}", l.name()));
                (l.clone(), outcome, result)
            })
            .collect();

        g.bench_function(format!("machine_only_{spec}"), |b| {
            b.iter(|| {
                for (l, outcome, result) in &prepared {
                    let run =
                        WideMachine::new(l.ddg(), outcome, result, model, l.trip_count().min(100))
                            .run()
                            .unwrap();
                    black_box(run.stats.cycles);
                }
            })
        });

        // The lowering step itself: CompiledLoop → WideProgram. Paid
        // once per design point (then memoized), so it only has to be
        // cheap relative to scheduling — but it should never regress
        // silently either.
        g.bench_function(format!("lower_{spec}"), |b| {
            b.iter(|| {
                for (l, outcome, result) in &prepared {
                    black_box(lower(l.ddg(), outcome, result).num_insts());
                }
            })
        });

        // The decode-free bytecode executor over pre-lowered programs —
        // the apples-to-apples rival of `machine_only` above (same
        // trips, same stats, bitwise-equal runs).
        let programs: Vec<_> = prepared
            .iter()
            .map(|(l, outcome, result)| (l.clone(), lower(l.ddg(), outcome, result)))
            .collect();
        g.bench_function(format!("lowered_exec_{spec}"), |b| {
            b.iter(|| {
                for (l, program) in &programs {
                    let run = program.exec(l.trip_count().min(100));
                    black_box(run.stats.cycles);
                }
            })
        });

        g.bench_function(format!("validated_{spec}"), |b| {
            b.iter(|| {
                for (l, outcome, result) in &prepared {
                    let report = simulate_scheduled(
                        l.ddg(),
                        outcome,
                        result,
                        model,
                        l.trip_count().min(100),
                        Backend::Interpret,
                    )
                    .unwrap();
                    assert!(report.is_validated());
                    black_box(report.stats.cycles);
                }
            })
        });
    }

    g.bench_function("scalar_reference_kernels", |b| {
        b.iter(|| {
            for l in &loops {
                black_box(run_reference(l.ddg(), l.trip_count().min(100)));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
