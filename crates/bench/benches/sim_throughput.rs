//! Simulator hot-path benchmark: simulated loops per second at the
//! scalar baseline `1w1` versus the paper's winner `4w2`, plus the
//! scalar reference interpreter alone. Future PRs touching the
//! simulator's issue loop, operand resolution or forwarding rings
//! should watch these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::machine::{Configuration, CycleModel};
use widening::regalloc::schedule_with_registers;
use widening::sim::{run_reference, simulate_scheduled, WideMachine};
use widening::transform::widen;
use widening::workload::kernels;

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(20);
    let model = CycleModel::Cycles4;
    let loops = kernels::all();

    for spec in ["1w1(64:1)", "4w2(128:1)"] {
        let cfg: Configuration = spec.parse().unwrap();
        // Pre-schedule outside the timed region: the benchmark tracks
        // the simulator, not the scheduler.
        let prepared: Vec<_> = loops
            .iter()
            .map(|l| {
                let outcome = widen(l.ddg(), cfg.widening());
                let result = schedule_with_registers(
                    outcome.ddg(),
                    &cfg,
                    model,
                    &Default::default(),
                    &Default::default(),
                )
                .unwrap_or_else(|e| panic!("{} on {spec}: {e}", l.name()));
                (l.clone(), outcome, result)
            })
            .collect();

        g.bench_function(format!("machine_only_{spec}"), |b| {
            b.iter(|| {
                for (l, outcome, result) in &prepared {
                    let run =
                        WideMachine::new(l.ddg(), outcome, result, model, l.trip_count().min(100))
                            .run()
                            .unwrap();
                    black_box(run.stats.cycles);
                }
            })
        });
        g.bench_function(format!("validated_{spec}"), |b| {
            b.iter(|| {
                for (l, outcome, result) in &prepared {
                    let report = simulate_scheduled(
                        l.ddg(),
                        outcome,
                        result,
                        model,
                        l.trip_count().min(100),
                    )
                    .unwrap();
                    assert!(report.is_validated());
                    black_box(report.stats.cycles);
                }
            })
        });
    }

    g.bench_function("scalar_reference_kernels", |b| {
        b.iter(|| {
            for l in &loops {
                black_box(run_reference(l.ddg(), l.trip_count().min(100)));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
