//! Regenerates Figure 4 (area of every configuration vs die bands).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::cost::{AreaModel, CostModel};
use widening::experiments;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.bench_function("fig4_full_table", |b| {
        b.iter(|| black_box(experiments::fig4()))
    });
    let area = AreaModel::new();
    let space = CostModel::design_space(16);
    g.bench_function("area_model_design_space_x16", |b| {
        b.iter(|| {
            let total: f64 = space.iter().map(|cfg| area.total_area(cfg)).sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
