//! Regenerates Figure 2 (peak ILP limits) on a reduced corpus and
//! benchmarks its building block: widen + MII analysis per loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments::{self, Context};
use widening::machine::{Configuration, CycleModel};
use widening::sched::MiiBounds;
use widening::transform::widen;
use widening::workload::kernels;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    let ctx = Context::quick(40);
    g.bench_function("fig2_full_sweep_40_loops", |b| {
        b.iter(|| black_box(experiments::fig2(&ctx)))
    });
    let daxpy = kernels::daxpy();
    let cfg = Configuration::monolithic(2, 2, 256).unwrap();
    g.bench_function("widen_plus_mii_daxpy_2w2", |b| {
        b.iter(|| {
            let w = widen(daxpy.ddg(), 2);
            black_box(MiiBounds::compute(w.ddg(), &cfg, CycleModel::Cycles4).mii())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
