//! Sweep-engine throughput: evaluating the `{1w1, 2w2, 4w2}` design
//! points across register-file sizes as independent per-config runs
//! (fresh evaluator per configuration — no shared state, the seed's
//! behaviour) versus one shared-cache `sweep` batch. The batch shares
//! widened DDGs across the `Y = 2` points, shares the register-file-
//! independent base schedule across each `XwY`'s file sizes, and packs
//! all `(loop × config)` units onto one dynamic worker queue.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::machine::{Configuration, CycleModel};
use widening::workload::corpus::{generate, CorpusSpec};
use widening::{EvalOptions, Evaluator};

const SWEEP: [&str; 9] = [
    "1w1(64:1)",
    "1w1(128:1)",
    "1w1(256:1)",
    "2w2(64:1)",
    "2w2(128:1)",
    "2w2(256:1)",
    "4w2(64:1)",
    "4w2(128:1)",
    "4w2(256:1)",
];

fn bench_sweep_throughput(c: &mut Criterion) {
    let loops = generate(&CorpusSpec::small(60, 7));
    let cfgs: Vec<Configuration> = SWEEP.iter().map(|s| s.parse().unwrap()).collect();

    let mut g = c.benchmark_group("sweep_throughput");
    g.sample_size(10);
    g.bench_function("independent_per_config", |b| {
        b.iter(|| {
            // One evaluator per configuration: nothing shared, every
            // point re-widens the corpus from scratch.
            let mut total = 0.0;
            for cfg in &cfgs {
                let ev = Evaluator::new(loops.clone());
                total += ev
                    .scheduled(cfg, CycleModel::Cycles4, &EvalOptions::default())
                    .total_cycles;
            }
            black_box(total)
        })
    });
    g.bench_function("shared_cache_sweep", |b| {
        b.iter(|| {
            let ev = Evaluator::new(loops.clone());
            let results = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
            black_box(results.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
