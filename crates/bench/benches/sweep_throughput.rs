//! Sweep-engine throughput: evaluating the `{1w1, 2w2, 4w2}` design
//! points across register-file sizes as independent per-config runs
//! (fresh evaluator per configuration — no shared state, the seed's
//! behaviour) versus one shared-cache `sweep` batch — and, for the
//! two-tier artifact store, a **cold-vs-warm disk** comparison: the
//! cold case compiles every stage and persists it into a fresh cache
//! directory; the warm case starts a fresh evaluator (empty in-memory
//! tier, a new process as far as the store is concerned) and decodes
//! every artifact from the populated directory instead of compiling.
//!
//! The `single_process_1thread` / `sharded_2workers` pair measures the
//! distributed engine's scaling claim on the 60-loop × 9-config grid:
//! one evaluator on one thread versus a coordinator plus two sharded
//! workers (each with its own pipeline, one thread apiece) exchanging
//! artifacts through a cold shared store. With ≥ 2 CPUs the sharded
//! run wins despite paying the store's publish overhead.
//! `sharded_2workers_per_unit_publish` repeats the sharded case under
//! the legacy one-file-per-unit result protocol, and a final publish
//! audit counts the published result files both ways — batch records
//! cut them well over 10× on this 540-unit grid.
//!
//! `traced_shared_cache_sweep` repeats the shared-cache batch with the
//! span recorder installed: the delta against `shared_cache_sweep` is
//! the recording overhead (the acceptance bar is ≤ 5%). A final traced
//! run exports the per-stage latency table through the same Chrome
//! JSON → analyze path `repro trace summarize` uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use widening::distrib::Launcher;
use widening::distributed::{sweep_distributed, DistributedOptions};
use widening::machine::{Configuration, CycleModel};
use widening::pipeline::{PointSpec, StoreConfig};
use widening::workload::corpus::{generate, CorpusSpec};
use widening::{EvalOptions, Evaluator};
use widening_obs as obs;

const SWEEP: [&str; 9] = [
    "1w1(64:1)",
    "1w1(128:1)",
    "1w1(256:1)",
    "2w2(64:1)",
    "2w2(128:1)",
    "2w2(256:1)",
    "4w2(64:1)",
    "4w2(128:1)",
    "4w2(256:1)",
];

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "widening-bench-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let loops = generate(&CorpusSpec::small(60, 7));
    let cfgs: Vec<Configuration> = SWEEP.iter().map(|s| s.parse().unwrap()).collect();

    let mut g = c.benchmark_group("sweep_throughput");
    g.sample_size(10);
    g.bench_function("independent_per_config", |b| {
        b.iter(|| {
            // One evaluator per configuration: nothing shared, every
            // point re-widens the corpus from scratch.
            let mut total = 0.0;
            for cfg in &cfgs {
                let ev = Evaluator::new(loops.clone());
                total += ev
                    .scheduled(cfg, CycleModel::Cycles4, &EvalOptions::default())
                    .total_cycles;
            }
            black_box(total)
        })
    });
    g.bench_function("shared_cache_sweep", |b| {
        b.iter(|| {
            let ev = Evaluator::new(loops.clone());
            let results = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
            black_box(results.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    g.bench_function("traced_shared_cache_sweep", |b| {
        // Identical work with the span recorder installed: the delta
        // against `shared_cache_sweep` is the recording overhead.
        let recorder = obs::Recorder::new("bench");
        obs::install(&recorder);
        b.iter(|| {
            let ev = Evaluator::new(loops.clone());
            let results = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
            black_box(results.iter().map(|e| e.total_cycles).sum::<f64>())
        });
        obs::uninstall();
    });
    // Used cold directories are torn down after the measurement: the
    // cold figure must price compile + persist, not fs teardown.
    let cold_dirs = std::cell::RefCell::new(Vec::new());
    g.bench_function("cold_disk_sweep", |b| {
        // Compile everything AND persist it into a fresh directory:
        // the write-side overhead of the disk tier.
        b.iter(|| {
            let dir = unique_dir("cold");
            let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&dir));
            let results = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
            cold_dirs.borrow_mut().push(dir);
            black_box(results.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    for dir in cold_dirs.into_inner() {
        let _ = std::fs::remove_dir_all(dir);
    }
    // Populate one directory, then measure pure warm starts against it.
    let warm_dir = unique_dir("warm");
    {
        let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&warm_dir));
        let _ = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
    }
    g.bench_function("warm_disk_sweep", |b| {
        b.iter(|| {
            // Fresh evaluator = empty memory tier: every stage decodes
            // from the populated store instead of compiling.
            let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&warm_dir));
            let results = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
            black_box(results.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    let _ = std::fs::remove_dir_all(warm_dir);

    // --- distributed sharding vs a single-threaded single process ----
    let specs: Vec<PointSpec> = cfgs
        .iter()
        .map(|c| PointSpec::scheduled(c, CycleModel::Cycles4, EvalOptions::default()))
        .collect();
    g.bench_function("single_process_1thread", |b| {
        b.iter(|| {
            let ev = Evaluator::new(loops.clone()).with_threads(1);
            let results = ev.sweep_specs(&specs);
            black_box(results.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    let shard_dirs = std::cell::RefCell::new(Vec::new());
    g.bench_function("sharded_2workers", |b| {
        b.iter(|| {
            // Cold shared store each iteration: the sharded figure pays
            // manifest + queue + publish costs, honestly. (Batch result
            // records — the default — one publish per shard part.)
            let dir = unique_dir("shard");
            let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&dir));
            let swept = sweep_distributed(
                &ev,
                &specs,
                &DistributedOptions::new(2),
                &Launcher::InProcess,
            )
            .expect("sharded sweep completes");
            shard_dirs.borrow_mut().push(dir);
            black_box(swept.aggregates.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    g.bench_function("sharded_2workers_per_unit_publish", |b| {
        b.iter(|| {
            // The legacy protocol: one result-tier file per unit. Same
            // fleet, same grid — the delta is pure publish syscalls.
            let dir = unique_dir("shard-pu");
            let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&dir));
            let mut opts = DistributedOptions::new(2);
            opts.batch_results = false;
            let swept = sweep_distributed(&ev, &specs, &opts, &Launcher::InProcess)
                .expect("per-unit sharded sweep completes");
            shard_dirs.borrow_mut().push(dir);
            black_box(swept.aggregates.iter().map(|e| e.total_cycles).sum::<f64>())
        })
    });
    for dir in shard_dirs.into_inner() {
        let _ = std::fs::remove_dir_all(dir);
    }
    g.finish();

    // Publish-cost audit (not a timing: a file count). One fleet each
    // way over the 540-unit grid; each published file is one
    // create+write+rename syscall round trip, so the ratio is the
    // batch-record claim measured directly.
    let count_bins = |dir: &std::path::Path, kind: &str| -> usize {
        fn walk(dir: &std::path::Path, n: &mut usize) {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, n);
                } else if p.extension().is_some_and(|x| x == "bin") {
                    *n += 1;
                }
            }
        }
        let mut n = 0;
        walk(&dir.join("v1").join(kind), &mut n);
        n
    };
    let publishes = |batch: bool| -> usize {
        let dir = unique_dir(if batch { "audit-b" } else { "audit-u" });
        let ev = Evaluator::new(loops.clone()).with_store(StoreConfig::persistent(&dir));
        let mut opts = DistributedOptions::new(2);
        opts.batch_results = batch;
        sweep_distributed(&ev, &specs, &opts, &Launcher::InProcess).expect("audit sweep");
        let n = count_bins(&dir, if batch { "batch" } else { "result" });
        let _ = std::fs::remove_dir_all(dir);
        n
    };
    let (per_unit, batched) = (publishes(false), publishes(true));
    eprintln!(
        "publish audit ({} units): per-unit {} files vs batch {} files ({}x fewer)",
        loops.len() * SWEEP.len(),
        per_unit,
        batched,
        per_unit / batched.max(1)
    );

    // Per-stage latency table from one traced shared-cache sweep,
    // through the same export path `repro trace summarize` uses.
    let recorder = obs::Recorder::new("bench");
    obs::install(&recorder);
    {
        let ev = Evaluator::new(loops.clone());
        let _ = ev.sweep(&cfgs, CycleModel::Cycles4, &EvalOptions::default());
    }
    obs::uninstall();
    let json = obs::chrome_trace_json(&[recorder.snapshot()]);
    let doc = obs::analyze::parse_chrome(&obs::json::parse(&json).expect("trace parses"))
        .expect("trace validates");
    eprintln!("per-stage latency, µs (log2-bucket upper-bound percentiles):");
    eprintln!(
        "{:>14}  {:>6}  {:>10}  {:>10}  {:>10}",
        "span", "count", "p50", "p90", "p99"
    );
    for s in obs::analyze::per_stage_stats(&doc.spans) {
        eprintln!(
            "{:>14}  {:>6}  {:>10.1}  {:>10.1}  {:>10.1}",
            s.name, s.count, s.p50_us, s.p90_us, s.p99_us
        );
    }
}

criterion_group!(benches, bench_sweep_throughput);
criterion_main!(benches);
