//! Perf-ledger codec benchmarks: serialising, parsing and comparing
//! the machine-readable perf report (`widening_obs::report`), plus the
//! cost-model calibration fit. These paths run in every CI perf-smoke
//! job, so the ledger itself must stay cheap relative to the suite it
//! measures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::cost::calibrate;
use widening_obs::report::{compare, CompareConfig, PerfReport, UnitSample};

/// A synthetic report shaped like a real `perf record` of the quick
/// suite: a handful of probes, a few stages, and one unit sample per
/// `(loop × config)` cell.
fn synthetic_report(loops: u32) -> PerfReport {
    let mut r = PerfReport::new();
    r.meta.insert("suite".into(), "synthetic".into());
    for rep in 0..3u64 {
        r.push_sample("sweep.wall_ns", 1_000_000_000 + rep * 7_000_000);
        r.push_sample("corpus.generate.wall_ns", 40_000_000 + rep * 900_000);
        r.push_sample("baseline256.wall_ns", 90_000_000 + rep * 2_000_000);
    }
    for stage in ["widen", "mii", "base-schedule", "schedule"] {
        r.counters
            .insert(format!("store.{stage}.requests"), 6 * u64::from(loops));
    }
    for li in 0..loops {
        for (x, y, z) in [(1, 1, 64), (2, 2, 64), (4, 2, 64), (4, 2, 128)] {
            r.units.push(UnitSample {
                loop_index: li,
                replication: x,
                width: y,
                registers: Some(z),
                wall_ns: u64::from(x * y * li.max(1)) * 10_000,
            });
        }
    }
    r
}

fn bench_perf_ledger(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf_ledger");
    let report = synthetic_report(48);
    let text = report.to_json();

    g.bench_function("report_to_json_48_loops", |b| {
        b.iter(|| black_box(report.to_json()))
    });
    g.bench_function("report_from_json_48_loops", |b| {
        b.iter(|| black_box(PerfReport::from_json(&text).unwrap()))
    });
    g.bench_function("compare_two_reports", |b| {
        let cand = synthetic_report(48);
        b.iter(|| black_box(compare(&report, &cand, &CompareConfig::default())))
    });
    g.bench_function("calibrate_192_units", |b| {
        b.iter(|| black_box(calibrate(&report.units)))
    });
    g.finish();
}

criterion_group!(benches, bench_perf_ledger);
criterion_main!(benches);
