//! Regenerates the four Figure 8 panels (performance/cost effects of RF
//! size, replication, widening, and the equal-peak family).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments::{self, Context};

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    let ctx = Context::quick(25);
    g.bench_function("fig8a_rf_size", |b| {
        b.iter(|| black_box(experiments::fig8a(&ctx)))
    });
    g.bench_function("fig8b_replication", |b| {
        b.iter(|| black_box(experiments::fig8b(&ctx)))
    });
    g.bench_function("fig8c_widening", |b| {
        b.iter(|| black_box(experiments::fig8c(&ctx)))
    });
    g.bench_function("fig8d_equal_peak", |b| {
        b.iter(|| black_box(experiments::fig8d(&ctx)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
