//! Regenerates Figure 3 (spill study) on a reduced corpus and
//! benchmarks the register-constrained scheduling pipeline per loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments::{self, Context};
use widening::machine::{Configuration, CycleModel};
use widening::regalloc::{schedule_with_registers, SpillOptions};
use widening::workload::kernels;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    let ctx = Context::quick(25);
    g.bench_function("fig3_full_grid_25_loops", |b| {
        b.iter(|| black_box(experiments::fig3(&ctx)))
    });
    let fir = kernels::fir5();
    let cfg = Configuration::monolithic(4, 1, 32).unwrap();
    g.bench_function("pressure_pipeline_fir5_4w1_32rf", |b| {
        b.iter(|| {
            black_box(
                schedule_with_registers(
                    fir.ddg(),
                    &cfg,
                    CycleModel::Cycles4,
                    &Default::default(),
                    &SpillOptions::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
