//! Compile-chain throughput on the hot path itself: the modulo
//! scheduler and the cyclic register allocator, isolated from caching,
//! I/O and fleet plumbing.
//!
//! Three tiers, all over the same 60-loop corpus:
//!
//! * `schedule_allocate/*` — the **schedule + allocate hot loop**: the
//!   widened graphs and MII bounds are precomputed outside the timer,
//!   so the measurement is exactly one `ModuloScheduler` run plus
//!   lifetime extraction plus the end-fit allocation per loop. This is
//!   the per-unit cost every sweep consumer pays after the widen/MII
//!   stages hit a cache.
//! * `schedule_allocate_spill/*` — the same loops driven through the
//!   full spill engine against a finite register file, including the
//!   pressure points (`Z = 32`) where spill rounds re-enter the
//!   scheduler several times.
//! * `full_chain/*` — `compile_ddg` end to end (widen → MII →
//!   schedule → allocate → spill) at several `X/Y/Z` design points,
//!   the uncached cold-compile cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::machine::{Configuration, CycleModel};
use widening::pipeline::{compile_ddg, PointSpec};
use widening::regalloc::{
    allocate_in, lifetimes_into, schedule_with_registers, AllocScratch, SpillOptions,
};
use widening::sched::{MiiBounds, ModuloScheduler, SchedScratch, SchedulerOptions};
use widening::transform::widen;
use widening::workload::corpus::{generate, CorpusSpec};
use widening::EvalOptions;

const MODEL: CycleModel = CycleModel::Cycles4;

fn bench_sched_alloc_throughput(c: &mut Criterion) {
    let loops = generate(&CorpusSpec::small(60, 7));

    let mut g = c.benchmark_group("sched_alloc_throughput");
    g.sample_size(10);

    // --- schedule + allocate hot loop (widen/MII precomputed) --------
    for (label, x, y) in [("1w1", 1, 1), ("2w2", 2, 2), ("4w2", 4, 2)] {
        let cfg = Configuration::monolithic(x, y, 256).unwrap();
        let prepared: Vec<_> = loops
            .iter()
            .map(|l| {
                let wide = widen(l.ddg(), y).ddg().clone();
                let bounds = MiiBounds::compute(&wide, &cfg, MODEL);
                (wide, bounds)
            })
            .collect();
        let scheduler = ModuloScheduler::with_options(cfg, MODEL, SchedulerOptions::default());
        // Steady-state form: one warm scratch arena across the whole
        // corpus, as the sweep pipeline runs it.
        let mut sched_scratch = SchedScratch::new();
        let mut alloc_scratch = AllocScratch::new();
        let mut lts = Vec::new();
        g.bench_function(format!("schedule_allocate/{label}"), |b| {
            b.iter(|| {
                let mut regs = 0u64;
                for (wide, bounds) in &prepared {
                    let s = scheduler
                        .schedule_with(wide, bounds, 1, &mut sched_scratch)
                        .expect("corpus loops schedule");
                    lifetimes_into(wide, &s, MODEL, &mut lts);
                    let a = allocate_in(&lts, s.ii(), &mut alloc_scratch);
                    regs += u64::from(a.registers_used());
                }
                black_box(regs)
            })
        });
    }

    // --- schedule + allocate + spill against a finite file -----------
    for (label, x, y, z) in [("2w2_z64", 2, 2, 64), ("4w2_z32", 4, 2, 32)] {
        let cfg = Configuration::monolithic(x, y, z).unwrap();
        let wides: Vec<_> = loops
            .iter()
            .map(|l| widen(l.ddg(), y).ddg().clone())
            .collect();
        g.bench_function(format!("schedule_allocate_spill/{label}"), |b| {
            b.iter(|| {
                // Some loops genuinely cannot fit a tiny file (the
                // paper's §3.2 failures) — the engine's clean Pressure
                // error is part of the measured work, not a bench bug.
                let mut total_ii = 0u64;
                for wide in &wides {
                    match schedule_with_registers(
                        wide,
                        &cfg,
                        MODEL,
                        &SchedulerOptions::default(),
                        &SpillOptions::default(),
                    ) {
                        Ok(r) => total_ii += u64::from(r.schedule.ii()),
                        Err(_) => total_ii += 1,
                    }
                }
                black_box(total_ii)
            })
        });
    }

    // --- full uncached chain at several X/Y/Z design points ----------
    let points = [
        ("1w1_z64", 1, 1, 64),
        ("2w2_z128", 2, 2, 128),
        ("4w2_z256", 4, 2, 256),
    ];
    for (label, x, y, z) in points {
        let cfg = Configuration::monolithic(x, y, z).unwrap();
        let spec = PointSpec::scheduled(&cfg, MODEL, EvalOptions::default());
        g.bench_function(format!("full_chain/{label}"), |b| {
            b.iter(|| {
                let mut ii = 0u64;
                for l in &loops {
                    let compiled = compile_ddg(l.ddg(), &spec).expect("compiles");
                    ii += u64::from(compiled.ii());
                }
                black_box(ii)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sched_alloc_throughput);
criterion_main!(benches);
