//! Regenerates Figure 6 (RF partitioning trade-off) and benchmarks the
//! calibrated timing model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::cost::TimingModel;
use widening::experiments;
use widening::machine::Configuration;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.bench_function("fig6_partition_sweep", |b| {
        b.iter(|| black_box(experiments::fig6()))
    });
    g.bench_function("timing_model_calibration", |b| {
        b.iter(|| black_box(TimingModel::calibrated()))
    });
    let t = TimingModel::calibrated();
    let cfg = Configuration::new(8, 1, 64, 4).unwrap();
    g.bench_function("access_time_query", |b| {
        b.iter(|| black_box(t.relative_access_time(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
