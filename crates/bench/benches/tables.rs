//! Regenerates the paper's Tables 1–6 (the static model computations).
//!
//! The measured closures produce exactly the rows printed by
//! `repro table1 … table6`; timing them demonstrates the models are
//! cheap enough to rebuild from scratch on every query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(20);
    g.bench_function("table1_sia_roadmap", |b| {
        b.iter(|| black_box(experiments::table1()))
    });
    g.bench_function("table2_register_cells", |b| {
        b.iter(|| black_box(experiments::table2()))
    });
    g.bench_function("table3_rf_area", |b| {
        b.iter(|| black_box(experiments::table3()))
    });
    g.bench_function("table4_access_time_fit", |b| {
        b.iter(|| black_box(experiments::table4()))
    });
    g.bench_function("table5_implementability", |b| {
        b.iter(|| black_box(experiments::table5()))
    });
    g.bench_function("table6_cycle_models", |b| {
        b.iter(|| black_box(experiments::table6()))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
