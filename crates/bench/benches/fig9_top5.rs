//! Regenerates Figure 9 (top five configurations per technology
//! generation) on a reduced corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments::{self, Context};

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let ctx = Context::quick(20);
    g.bench_function("fig9_top5_20_loops", |b| {
        b.iter(|| black_box(experiments::fig9(&ctx)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
