//! Ablation benchmarks: scheduler strategy, spill policy and latency
//! adaptation (the design choices DESIGN.md §6 calls out).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use widening::experiments::{self, Context};
use widening::machine::{Configuration, CycleModel};
use widening::sched::{ModuloScheduler, SchedulerOptions, Strategy};
use widening::workload::kernels;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    let ctx = Context::quick(20);
    g.bench_function("ablate_sched_20_loops", |b| {
        b.iter(|| black_box(experiments::ablate_sched(&ctx)))
    });
    g.bench_function("ablate_spill_20_loops", |b| {
        b.iter(|| black_box(experiments::ablate_spill(&ctx)))
    });
    g.bench_function("ablate_latency_20_loops", |b| {
        b.iter(|| black_box(experiments::ablate_latency(&ctx)))
    });
    // Per-strategy scheduling cost on one kernel.
    let mac = kernels::complex_mac();
    let cfg = Configuration::monolithic(2, 1, 256).unwrap();
    for strat in Strategy::ALL {
        g.bench_function(format!("schedule_complex_mac_{}", strat.label()), |b| {
            let s = ModuloScheduler::with_options(
                cfg,
                CycleModel::Cycles4,
                SchedulerOptions {
                    strategy: strat,
                    ..Default::default()
                },
            );
            b.iter(|| black_box(s.schedule(mac.ddg()).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
