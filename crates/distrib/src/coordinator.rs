//! The sweep coordinator: writes the queue, spawns local workers,
//! supervises leases, autoscales the fleet, and collects per-shard
//! reports.
//!
//! The coordinator owns no results — workers publish everything into
//! the shared store — so its job is purely liveness: partition the grid
//! ([`crate::SweepManifest::partition`]), get `workers` processes (or
//! threads) running against the queue, requeue shards whose lease
//! counters stall (the killed-worker path — clock-skew-proof, see
//! [`crate::queue`]), validate completion markers as they appear
//! (an undecodable marker is *incomplete*: the shard is reset and
//! requeued, never merged as garbage), grow the fleet while the
//! remaining-priority-mass estimate says the tail is worth more hands
//! (up to [`CoordinatorConfig::max_workers`]), and respawn a worker if
//! the whole fleet dies. When every shard carries a validated
//! completion marker the sweep is merge-ready.
//!
//! **Autoscaling** reads the same lease stamps the stall detector does:
//! every owner heartbeats the `sweep_priority` mass of its unprocessed
//! units into its claim (thieves likewise into their steal files), and
//! unclaimed shards count at their static manifest mass. While
//! `estimated mass > mass_per_worker × live workers` and the fleet is
//! under `max_workers`, the coordinator spawns one more worker per
//! supervision tick. Scale-down mirrors it: when the estimate says the
//! tail needs fewer hands than are live, the coordinator posts
//! retirement tokens ([`JobQueue::post_retirements`]) and *idle*
//! workers — nothing left to claim or steal — race to claim one and
//! exit early instead of polling until the stragglers finish. Tokens
//! left unclaimed when the fleet needs to grow again are voided
//! (claimed by the coordinator itself) before any new worker spawns,
//! so a newcomer cannot retire on a stale lull. Workers that never see
//! a token still exit on their own once every shard is complete.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use widening_cost::CalibratedModel;
use widening_obs as obs;
use widening_obs::SpanKind;
use widening_pipeline::StageCounts;

use crate::manifest::SweepManifest;
use crate::queue::{JobQueue, LeaseObserver, MASS_UNKNOWN};
use crate::worker::{run_worker, ShardReport, WorkerConfig, WorkerSummary};
use crate::DistribError;

/// How a coordinator runs its fleet.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The shared cache directory (artifact + result exchange). The
    /// queue directory is created under `<cache_dir>/queue/`.
    pub cache_dir: PathBuf,
    /// Local workers to spawn up front.
    pub workers: usize,
    /// Fleet ceiling for autoscaling. Equal to `workers` (the default)
    /// ⇒ a static fleet.
    pub max_workers: usize,
    /// Autoscale threshold: another worker is spawned while the
    /// remaining-mass estimate exceeds `mass_per_worker × live
    /// workers`. `None` derives a threshold from the manifest's total
    /// mass and `max_workers` so a freshly-queued big grid scales to
    /// the ceiling and a nearly-drained one does not.
    pub mass_per_worker: Option<u64>,
    /// Worker threads each worker uses for intra-shard fan-out.
    pub worker_threads: usize,
    /// Shards per worker (finer shards = less work lost per kill, more
    /// queue traffic). The shard count is `workers × shards_per_worker`,
    /// capped by the unit count.
    pub shards_per_worker: usize,
    /// Lease TTL before a silent worker's shard is requeued.
    pub lease_ttl: Duration,
    /// Supervision poll interval.
    pub poll: Duration,
    /// Workers the coordinator may respawn after the whole fleet died.
    pub max_respawns: usize,
    /// Whether workers buffer and publish batch result records (the
    /// default) instead of one per-unit record per unit.
    pub batch_results: bool,
    /// Fault-injection hook: the *first* spawned worker abandons its
    /// work (no completion marker, lease goes silent) after this many
    /// units — the CI chaos knob. `None` in production.
    pub chaos_die_after_units: Option<u64>,
    /// Directory where spawned workers drop their binary span traces
    /// (`worker-<index>.trace.bin`). `None` disables trace collection;
    /// in-process workers record into the caller's global recorder
    /// instead and ignore this.
    pub trace_dir: Option<PathBuf>,
    /// Measured per-unit cost model (`--cost-model`): prices static
    /// shard masses and the autoscale threshold from calibration data
    /// instead of the analytic `sweep_priority`. Workers' heartbeat
    /// mass stamps stay analytic either way — calibrated priorities
    /// are rescaled into the same unit family, so the two estimates
    /// mix consistently. Only ordering/scaling changes; aggregates are
    /// bitwise-equal regardless.
    pub unit_cost: Option<Arc<CalibratedModel>>,
}

impl CoordinatorConfig {
    /// A fleet of `workers` over `cache_dir` with defaults: one thread
    /// per worker, 4 shards per worker, 30 s lease TTL, 20 ms poll, as
    /// many respawns as workers, batch results, no autoscaling.
    #[must_use]
    pub fn new(cache_dir: impl Into<PathBuf>, workers: usize) -> Self {
        let workers = workers.max(1);
        CoordinatorConfig {
            cache_dir: cache_dir.into(),
            workers,
            max_workers: workers,
            mass_per_worker: None,
            worker_threads: 1,
            shards_per_worker: 4,
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(20),
            max_respawns: workers,
            batch_results: true,
            chaos_die_after_units: None,
            trace_dir: None,
            unit_cost: None,
        }
    }

    /// The shard count this configuration implies for `units` work
    /// units.
    #[must_use]
    pub fn shard_count(&self, units: usize) -> usize {
        (self.workers * self.shards_per_worker.max(1))
            .min(units)
            .max(1)
    }

    /// The static priority mass of one manifest shard under this
    /// configuration's cost model: measured when
    /// [`CoordinatorConfig::unit_cost`] is set, analytic otherwise.
    #[must_use]
    pub fn shard_mass(&self, manifest: &SweepManifest, shard: usize) -> u64 {
        match &self.unit_cost {
            Some(model) => manifest.shard_mass_with(shard, |x, y, z| model.priority(x, y, z)),
            None => manifest.shard_mass(shard),
        }
    }

    /// The autoscale threshold in effect for a manifest: the explicit
    /// [`CoordinatorConfig::mass_per_worker`], or half the manifest's
    /// mean per-ceiling-worker mass — so a full queue scales out to
    /// `max_workers` and a mostly-drained one stops asking for hands.
    /// Mass is priced by [`CoordinatorConfig::shard_mass`].
    #[must_use]
    pub fn effective_mass_per_worker(&self, manifest: &SweepManifest) -> u64 {
        self.mass_per_worker.unwrap_or_else(|| {
            let total: u64 = (0..manifest.shards.len())
                .map(|s| self.shard_mass(manifest, s))
                .fold(0, u64::saturating_add);
            (total / (2 * self.max_workers.max(1) as u64)).max(1)
        })
    }
}

/// Everything a launcher needs to start worker `index` against a queue.
#[derive(Debug, Clone)]
pub struct SpawnContext {
    /// Worker index (autoscaled and respawned workers continue the
    /// numbering).
    pub index: usize,
    /// The queue directory.
    pub queue_dir: PathBuf,
    /// The shared cache directory.
    pub cache_dir: PathBuf,
    /// Threads the worker should use.
    pub threads: usize,
    /// Lease TTL the worker should assume.
    pub lease_ttl: Duration,
    /// Whether the worker should publish batch result records.
    pub batch_results: bool,
    /// Chaos hook: abandon after this many units (fault-injection runs
    /// set it on worker 0 only).
    pub die_after_units: Option<u64>,
    /// Where a spawned worker process should write its binary span
    /// trace on exit (`None` when tracing is off; in-process workers
    /// share the caller's recorder and ignore this).
    pub trace_file: Option<PathBuf>,
}

/// How the coordinator materializes a worker.
pub enum Launcher<'a> {
    /// A thread in this process running [`run_worker`] with its own
    /// pipeline (its own memory tier; the disk tier is shared) —
    /// faithful to the multi-process topology minus the `exec`, and
    /// what tests and benches use.
    InProcess,
    /// A child process built by the callback (the CLI passes
    /// `current_exe() worker --queue … --cache-dir …`). Must be
    /// self-terminating: a worker exits when the queue is complete.
    Spawn(&'a dyn Fn(&SpawnContext) -> Command),
}

/// The coordinator-side record of one finished sweep.
#[derive(Debug)]
pub struct SweepRun {
    /// The queue directory the sweep ran over (already removed by
    /// [`run_sweep`]; kept by [`run_on_queue`]).
    pub queue_dir: PathBuf,
    /// Per-shard completion reports, in shard order (a `None` means the
    /// done marker was unreadable — its results are still in the store).
    pub shard_reports: Vec<Option<ShardReport>>,
    /// Fleet-summed stage counters (from the shard reports).
    pub worker_counts: StageCounts,
    /// Total units across all shards.
    pub units: u64,
    /// Units served straight from the result tier.
    pub result_hits: u64,
    /// Units completed by thieves via work stealing.
    pub stolen_units: u64,
    /// Stalled leases the coordinator requeued (≥ 1 whenever a worker
    /// was killed mid-shard), including shards reset because their
    /// completion marker failed to decode.
    pub requeues: u64,
    /// Workers respawned after the fleet died entirely.
    pub respawns: u64,
    /// Workers added by autoscaling (beyond the initial fleet).
    pub scale_ups: u64,
    /// Workers that retired early on a coordinator-posted token
    /// (coordinator-voided tokens are not counted).
    pub scale_downs: u64,
}

enum Handle {
    Thread(JoinHandle<Result<WorkerSummary, DistribError>>),
    Process(Child),
}

impl Handle {
    fn is_alive(&mut self) -> bool {
        match self {
            Handle::Thread(h) => !h.is_finished(),
            // A spawn whose status cannot be read is as good as dead.
            Handle::Process(c) => matches!(c.try_wait(), Ok(None)),
        }
    }

    fn join(self) {
        match self {
            Handle::Thread(h) => {
                let _ = h.join();
            }
            Handle::Process(mut c) => {
                let _ = c.wait();
            }
        }
    }

    /// Tears the worker down on an aborted sweep. Processes are killed
    /// and reaped; in-process threads cannot be killed, but they exit
    /// on their own once the caller retires the queue directory
    /// (workers poll for retirement).
    fn abort(self) {
        match self {
            Handle::Thread(_) => {}
            Handle::Process(mut c) => {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
}

fn spawn(
    launcher: &Launcher<'_>,
    ctx: &SpawnContext,
    poll: Duration,
) -> Result<Handle, DistribError> {
    match launcher {
        Launcher::InProcess => {
            let cfg = WorkerConfig {
                queue_dir: ctx.queue_dir.clone(),
                cache_dir: ctx.cache_dir.clone(),
                threads: ctx.threads,
                lease_ttl: ctx.lease_ttl,
                poll,
                // The coordinator supervises leases; keeping workers
                // out of it makes `SweepRun::requeues` exact.
                requeue_foreign: false,
                tag: format!("inproc-{}-{}", std::process::id(), ctx.index),
                batch_results: ctx.batch_results,
                steal: true,
                surplus_after: 8,
                die_after_units: ctx.die_after_units,
            };
            Ok(Handle::Thread(std::thread::spawn(move || run_worker(&cfg))))
        }
        Launcher::Spawn(build) => {
            let mut cmd = build(ctx);
            cmd.stdin(Stdio::null());
            Ok(Handle::Process(cmd.spawn()?))
        }
    }
}

/// Runs a full distributed sweep: creates a fresh queue under
/// `<cache_dir>/queue/`, drives it with [`run_on_queue`], and removes
/// the queue directory afterwards — success or failure — so failed
/// sweeps cannot accumulate per-invocation directories in a
/// lifecycle-managed cache (results live in the store, not the queue).
///
/// # Errors
///
/// See [`run_on_queue`]; queue creation failures surface as
/// [`DistribError::Io`].
pub fn run_sweep(
    manifest: &SweepManifest,
    cfg: &CoordinatorConfig,
    launcher: &Launcher<'_>,
) -> Result<SweepRun, DistribError> {
    // Unique per invocation: concurrent or repeated sweeps (even of the
    // same manifest) never share claim state — result reuse happens in
    // the content-addressed store, not the queue.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos();
    let queue_dir = cfg.cache_dir.join("queue").join(format!(
        "sweep-{:016x}-{}-{nanos:x}",
        manifest.fingerprint() as u64,
        std::process::id(),
    ));
    let queue = JobQueue::create(&queue_dir, manifest)?;
    // The queue is ephemeral either way: published results live in the
    // content-addressed store, and a failed sweep's error already says
    // what went wrong — leaking per-invocation queue directories into a
    // lifecycle-managed cache would be worse than losing the markers.
    let run = run_on_queue(&queue, cfg, launcher);
    let _ = std::fs::remove_dir_all(&queue_dir);
    run
}

/// Drives an existing queue to completion: spawns the fleet, requeues
/// stalled leases and undecodable completion markers, autoscales while
/// the remaining-mass estimate warrants it, respawns through total
/// fleet loss, and collects the shard reports. The queue directory is
/// left in place (the fault-injection tests pre-claim shards on it).
///
/// # Errors
///
/// [`DistribError::Io`] when a worker cannot be spawned;
/// [`DistribError::QueueUnreadable`] when the queue directory holds no
/// manifest; [`DistribError::WorkersExhausted`] when the fleet died
/// more times than [`CoordinatorConfig::max_respawns`] with shards
/// outstanding.
pub fn run_on_queue(
    queue: &JobQueue,
    cfg: &CoordinatorConfig,
    launcher: &Launcher<'_>,
) -> Result<SweepRun, DistribError> {
    let manifest = JobQueue::open(queue.root())
        .map(|(_, m)| m)
        .ok_or_else(|| DistribError::QueueUnreadable(queue.root().to_path_buf()))?;
    let shard_masses: Vec<u64> = (0..queue.shard_count())
        .map(|s| cfg.shard_mass(&manifest, s))
        .collect();
    let mass_per_worker = cfg.effective_mass_per_worker(&manifest);
    let max_workers = cfg.max_workers.max(cfg.workers).max(1);

    if let Some(dir) = &cfg.trace_dir {
        std::fs::create_dir_all(dir)?;
    }
    let ctx_for = |index: usize| SpawnContext {
        index,
        queue_dir: queue.root().to_path_buf(),
        cache_dir: cfg.cache_dir.clone(),
        threads: cfg.worker_threads.max(1),
        lease_ttl: cfg.lease_ttl,
        batch_results: cfg.batch_results,
        die_after_units: cfg.chaos_die_after_units.filter(|_| index == 0),
        trace_file: cfg
            .trace_dir
            .as_ref()
            .map(|d| d.join(format!("worker-{index}.trace.bin"))),
    };
    // An aborted sweep must not orphan the workers it already started:
    // kill and reap spawned processes before surfacing the error (the
    // caller then retires the queue, which flushes out thread workers).
    let abort_fleet = |handles: Vec<Handle>, err: DistribError| {
        for h in handles {
            h.abort();
        }
        err
    };
    let mut handles: Vec<Handle> = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers.max(1) {
        match spawn(launcher, &ctx_for(i), cfg.poll) {
            Ok(h) => handles.push(h),
            Err(e) => return Err(abort_fleet(handles, e)),
        }
    }
    let mut observer = LeaseObserver::new();
    let mut validated: Vec<bool> = vec![false; queue.shard_count()];
    let mut requeues = 0u64;
    let mut respawns = 0u64;
    let mut scale_ups = 0u64;
    let mut tokens_posted = 0u32;
    let mut tokens_voided = 0u32;
    let mut next_index = handles.len();
    // Claims every outstanding retirement token as the coordinator's
    // own, so a worker spawned after a lull cannot retire on a token
    // posted for the *previous* fleet size.
    let void_tokens = |queue: &JobQueue, voided: &mut u32| {
        while queue.claim_retirement("coordinator-void").is_some() {
            *voided += 1;
        }
    };
    loop {
        // A present-but-undecodable done marker (a torn write from a
        // crashed pre-fsync host, corruption at rest) must never be
        // merged as "complete": reset the shard so it requeues. The
        // published unit results survive in the store — the re-run is
        // mostly result-tier hits.
        for (shard, valid) in validated.iter_mut().enumerate() {
            if *valid || !queue.is_done(shard) {
                continue;
            }
            match queue
                .completion(shard)
                .and_then(|b| ShardReport::decode(&b))
            {
                Some(_) => *valid = true,
                None => {
                    if queue.invalidate_done(shard) {
                        requeues += 1;
                    }
                }
            }
        }
        // Exit only when every shard is done AND its marker passed
        // validation *this side* of appearing — a marker that landed
        // after the pass above waits one tick for its own decode, so
        // an undecodable marker can never slip out as "complete".
        if queue.all_done() && validated.iter().all(|&v| v) {
            break;
        }
        let expired = queue.requeue_expired(&mut observer, cfg.lease_ttl) as u64;
        if expired > 0 {
            eprintln!("distrib: event=lease-expired requeued={expired}");
            obs::instant(SpanKind::LeaseExpire, expired, 0);
        }
        requeues += expired;
        let live = handles
            .iter_mut()
            .map(Handle::is_alive)
            .filter(|&alive| alive)
            .count();
        if live == 0 {
            if queue.all_done() {
                continue; // markers present; validate before exiting
            }
            if respawns as usize >= cfg.max_respawns {
                return Err(abort_fleet(
                    handles,
                    DistribError::WorkersExhausted {
                        remaining: queue.remaining(),
                    },
                ));
            }
            // Replacements start with stalled foreign claims already
            // released above, so they pick the dead fleet's work up.
            void_tokens(queue, &mut tokens_voided);
            respawns += 1;
            eprintln!("distrib: event=respawn worker={next_index}");
            obs::instant(SpanKind::Respawn, next_index as u64, 0);
            match spawn(launcher, &ctx_for(next_index), cfg.poll) {
                Ok(h) => handles.push(h),
                Err(e) => return Err(abort_fleet(handles, e)),
            }
            next_index += 1;
        } else {
            let mass = remaining_mass_estimate(queue, &shard_masses);
            if live < max_workers && mass > mass_per_worker.saturating_mul(live as u64) {
                // Autoscale: one more pair of hands per tick while the
                // estimated remaining mass exceeds the per-worker
                // budget.
                void_tokens(queue, &mut tokens_voided);
                scale_ups += 1;
                eprintln!("distrib: event=scale-up worker={next_index} live={live} mass={mass}");
                obs::instant(SpanKind::ScaleUp, next_index as u64, mass);
                match spawn(launcher, &ctx_for(next_index), cfg.poll) {
                    Ok(h) => handles.push(h),
                    Err(e) => return Err(abort_fleet(handles, e)),
                }
                next_index += 1;
            } else {
                // Scale down: near the drain the mass estimate says how
                // many hands the tail still justifies; post exactly
                // enough tokens that the spare workers (there is always
                // one keeper) can retire instead of idling to the end.
                let needed = usize::try_from(mass.div_ceil(mass_per_worker))
                    .unwrap_or(usize::MAX)
                    .max(1);
                if live > needed {
                    let spare = u32::try_from(live - needed).unwrap_or(u32::MAX);
                    let target = queue.retirements_claimed().saturating_add(spare);
                    if target > tokens_posted {
                        tokens_posted = target;
                        queue.post_retirements(tokens_posted);
                        eprintln!(
                            "distrib: event=scale-down tokens={tokens_posted} live={live} \
                             needed={needed} mass={mass}"
                        );
                        obs::instant(SpanKind::ScaleDown, u64::from(tokens_posted), mass);
                    }
                }
            }
        }
        std::thread::sleep(cfg.poll);
    }
    for h in handles {
        h.join();
    }

    let mut run = SweepRun {
        queue_dir: queue.root().to_path_buf(),
        shard_reports: Vec::with_capacity(queue.shard_count()),
        worker_counts: StageCounts::zero(),
        units: 0,
        result_hits: 0,
        stolen_units: 0,
        requeues,
        respawns,
        scale_ups,
        scale_downs: u64::from(queue.retirements_claimed().saturating_sub(tokens_voided)),
    };
    for shard in 0..queue.shard_count() {
        let report = queue
            .completion(shard)
            .and_then(|b| ShardReport::decode(&b));
        if let Some(r) = &report {
            run.worker_counts = run.worker_counts.plus(&r.counts);
            run.units += u64::from(r.units);
            run.result_hits += u64::from(r.result_hits);
            run.stolen_units += u64::from(r.stolen);
        }
        run.shard_reports.push(report);
    }
    Ok(run)
}

/// The queue's remaining-work estimate: per shard, a validated done
/// marker counts zero, a live claim counts its last heartbeat's mass
/// stamp (plus any thief's), and an unclaimed shard counts its static
/// manifest mass. Fresh claims that have not heartbeated yet
/// ([`MASS_UNKNOWN`]) fall back to the static estimate too.
fn remaining_mass_estimate(queue: &JobQueue, shard_masses: &[u64]) -> u64 {
    let mut total = 0u64;
    for (shard, &static_mass) in shard_masses.iter().enumerate() {
        if queue.is_done(shard) {
            continue;
        }
        let owner = match queue.read_claim(shard) {
            Some(stamp) if stamp.mass != MASS_UNKNOWN => stamp.mass,
            Some(_) | None => static_mass,
        };
        let thief = match queue.read_steal(shard) {
            Some(stamp) if stamp.mass != MASS_UNKNOWN => stamp.mass,
            _ => 0,
        };
        total = total.saturating_add(owner).saturating_add(thief);
    }
    total
}
