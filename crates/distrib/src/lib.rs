//! **widening-distrib** — the distributed sweep engine: sharded
//! multi-process parameter studies over the content-addressed artifact
//! store.
//!
//! Every result in *Widening Resources* is a `(loop × XwY(Z:n))`
//! parameter study, and paper-scale grids (1180 loops × dozens of
//! design points) outgrow a single process. This crate scales the
//! existing [`widening_pipeline::Pipeline`] across **worker processes —
//! and, by extension, hosts sharing a cache directory** — with three
//! pieces:
//!
//! * a [`SweepManifest`] that freezes the corpus, the design points and
//!   a **priority-ordered sharding** of the unit grid: units are ranked
//!   by [`widening_cost::sweep_priority`] (pressure/width-heavy points
//!   first) and dealt round-robin, so no shard is left holding all the
//!   spill-engine-bound stragglers — the LPT trick that cuts tail
//!   latency;
//! * a filesystem [`JobQueue`] with **atomic claim files, monotonic
//!   counter leases and lease-stall requeue**: workers claim shards via
//!   `create_new` and heartbeat a monotonic counter (plus a
//!   remaining-priority-mass estimate) into the claim file; a shard
//!   whose counter stops advancing across a TTL observation window —
//!   on the *observer's* monotonic clock, immune to cross-host
//!   wall-clock skew — is requeued for the survivors. Duplicate
//!   execution after a requeue race is *idempotent by construction*,
//!   because results are content-addressed — two workers publishing the
//!   same unit write identical bytes under identical keys. The same
//!   queue carries the **work-stealing** protocol: owners offer the
//!   tail half of a big shard's priority-ordered unit list as a
//!   write-once *surplus*, and an idle worker claims it atomically,
//!   heartbeats its own steal lease, and completes the stolen units
//!   with a durable sub-report the owner folds in. Steals *halve
//!   recursively*: each fold re-offers half of whatever the owner
//!   still holds as a fresh round-numbered surplus marker (round 0
//!   keeps the legacy names), so idle workers keep converging on a
//!   straggler shard until its remainder is too small to share;
//! * a [`coordinator`](run_sweep) that writes the queue, spawns local
//!   workers (in-process threads for tests and benches, real
//!   `repro worker` processes from the CLI), supervises leases,
//!   validates completion markers (an undecodable marker requeues its
//!   shard instead of merging garbage), **autoscales** the fleet while
//!   the lease stamps' remaining-mass estimate exceeds a per-worker
//!   budget (up to `max_workers`) and **scales down** by posting
//!   retirement tokens that idle workers claim to exit early once the
//!   estimate says the tail needs fewer hands (workers retire
//!   themselves anyway when the queue drains), respawns a worker if
//!   the whole fleet dies, and
//!   collects per-shard progress reports ([`ShardReport`]) whose stage
//!   counters fold into the existing counter tables.
//!
//! Workers buffer their units' [`widening_pipeline::UnitOutcome`]s and
//! publish **one batch result record per shard** (or per stolen
//! sub-shard) into the shared store's result tier
//! ([`widening_pipeline::Exchange`]), keyed by the shard's
//! unit-key-list hash — ~50× fewer publish syscalls than the per-unit
//! tier, which remains as the compatibility fallback. The *merge* of
//! those records into corpus aggregates lives with the evaluator (the
//! `widening` crate), which guarantees the fold is bitwise-equal to a
//! single-process `Evaluator::sweep`.
//!
//! The only shared medium is the cache directory: coordinator and
//! workers never talk over sockets, so "distributed" degrades gracefully
//! from many hosts on a shared filesystem to many processes on one
//! machine to plain threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod manifest;
mod queue;
mod worker;

pub use coordinator::{
    run_on_queue, run_sweep, CoordinatorConfig, Launcher, SpawnContext, SweepRun,
};
pub use manifest::SweepManifest;
pub use queue::{JobQueue, LeaseObserver, LeaseStamp, LeaseWatch, MASS_UNKNOWN};
pub use worker::{run_worker, ShardReport, WorkerConfig, WorkerSummary, BATCH_PARTS};

use std::fmt;
use std::path::PathBuf;

/// Why a distributed sweep (or one of its workers) could not run.
#[derive(Debug)]
pub enum DistribError {
    /// The queue directory holds no readable manifest.
    QueueUnreadable(PathBuf),
    /// The shared cache directory could not be opened for results.
    CacheUnusable(PathBuf),
    /// Creating the queue or spawning a worker failed.
    Io(std::io::Error),
    /// Every worker died and the respawn budget is exhausted while
    /// shards remain unfinished.
    WorkersExhausted {
        /// Shards still incomplete when the coordinator gave up.
        remaining: usize,
    },
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::QueueUnreadable(p) => {
                write!(f, "no readable sweep manifest under {}", p.display())
            }
            DistribError::CacheUnusable(p) => {
                write!(f, "cache directory {} is unusable", p.display())
            }
            DistribError::Io(e) => write!(f, "distributed sweep I/O failed: {e}"),
            DistribError::WorkersExhausted { remaining } => write!(
                f,
                "all workers died with {remaining} shard(s) unfinished and no respawn budget left"
            ),
        }
    }
}

impl std::error::Error for DistribError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistribError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistribError {
    fn from(e: std::io::Error) -> Self {
        DistribError::Io(e)
    }
}
