//! The filesystem job queue: atomic shard claims, mtime leases,
//! lease-expiry requeue and durable completion markers.
//!
//! Layout of a queue directory:
//!
//! ```text
//! <queue>/manifest.bin      the SweepManifest (atomic temp+rename)
//! <queue>/shard-<i>.claim   exists ⇒ shard i is claimed; mtime = lease
//! <queue>/shard-<i>.done    exists ⇒ shard i is complete; payload =
//!                           the worker's encoded ShardReport
//! ```
//!
//! The protocol needs nothing but POSIX rename/create-new atomicity, so
//! it works across processes and across hosts on a shared filesystem:
//!
//! * **claim** — `O_CREAT|O_EXCL` on the claim file; exactly one worker
//!   wins a shard;
//! * **lease** — the claim file's mtime, refreshed by the owner after
//!   every unit. A claim older than the lease TTL with no completion
//!   marker means its worker died mid-shard;
//! * **requeue** — anyone (coordinator or an idle worker) may delete an
//!   expired claim; the next `claim_next` scan re-claims the shard;
//! * **complete** — the report is written to a temp file and renamed,
//!   so a completion marker is always whole.
//!
//! Races are resolved by idempotency, not locking: if a presumed-dead
//! worker was merely slow, two workers may process one shard — but unit
//! results are content-addressed in the shared store, so both publish
//! identical bytes under identical keys and the merge cannot tell the
//! difference. (Clock skew between hosts sharing a directory can cause
//! such spurious requeues; they cost duplicate work, never wrong
//! results.)

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::manifest::SweepManifest;

const MANIFEST_FILE: &str = "manifest.bin";

/// A handle on one sweep's queue directory. Cheap to clone.
#[derive(Debug, Clone)]
pub struct JobQueue {
    root: PathBuf,
    shard_count: usize,
}

impl JobQueue {
    /// Creates a queue directory holding `manifest` and its (initially
    /// unclaimed) shards.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the directory or writing the
    /// manifest.
    pub fn create(root: impl Into<PathBuf>, manifest: &SweepManifest) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        atomic_write(&root, MANIFEST_FILE, &manifest.encode())?;
        Ok(JobQueue {
            root,
            shard_count: manifest.shards.len(),
        })
    }

    /// Opens an existing queue, returning it with its decoded manifest.
    /// `None` when the manifest is missing or fails validation.
    #[must_use]
    pub fn open(root: impl Into<PathBuf>) -> Option<(Self, SweepManifest)> {
        let root = root.into();
        let bytes = fs::read(root.join(MANIFEST_FILE)).ok()?;
        let manifest = SweepManifest::decode(&bytes)?;
        let queue = JobQueue {
            root,
            shard_count: manifest.shards.len(),
        };
        Some((queue, manifest))
    }

    /// The queue directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards in the queue.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    fn claim_path(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard}.claim"))
    }

    fn done_path(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard}.done"))
    }

    /// Atomically claims the lowest-numbered unclaimed, incomplete
    /// shard, stamping `tag` (diagnostic only) into the claim file.
    /// `None` when every shard is claimed or done — which does **not**
    /// mean the sweep is finished: a claim may yet expire and return.
    #[must_use]
    pub fn claim_next(&self, tag: &str) -> Option<usize> {
        for shard in 0..self.shard_count {
            if self.is_done(shard) {
                continue;
            }
            let mut opts = fs::OpenOptions::new();
            opts.write(true).create_new(true);
            if let Ok(mut f) = opts.open(self.claim_path(shard)) {
                let _ = f.write_all(tag.as_bytes());
                return Some(shard);
            }
        }
        None
    }

    /// Refreshes the lease on a claimed shard (rewrites the claim file,
    /// updating its mtime). If the claim was requeued from under a slow
    /// owner this quietly re-creates it — harmless, see the module
    /// documentation on idempotency.
    pub fn renew_lease(&self, shard: usize, tag: &str) {
        let _ = fs::write(self.claim_path(shard), tag.as_bytes());
    }

    /// Marks a shard complete, durably publishing the worker's encoded
    /// report. Atomic: readers see either no marker or a whole one.
    pub fn complete(&self, shard: usize, report: &[u8]) {
        let _ = atomic_write(&self.root, &format!("shard-{shard}.done"), report);
    }

    /// Whether a shard has a completion marker.
    #[must_use]
    pub fn is_done(&self, shard: usize) -> bool {
        self.done_path(shard).exists()
    }

    /// The completion payload of a shard, if any.
    #[must_use]
    pub fn completion(&self, shard: usize) -> Option<Vec<u8>> {
        fs::read(self.done_path(shard)).ok()
    }

    /// Whether every shard is complete.
    #[must_use]
    pub fn all_done(&self) -> bool {
        (0..self.shard_count).all(|s| self.is_done(s))
    }

    /// Whether the queue has been retired: its manifest is gone (a
    /// coordinator removes the whole directory once its sweep ends).
    /// Idle workers exit on retirement instead of polling a vanished
    /// queue forever.
    #[must_use]
    pub fn is_retired(&self) -> bool {
        !self.root.join(MANIFEST_FILE).exists()
    }

    /// Shards without a completion marker.
    #[must_use]
    pub fn remaining(&self) -> usize {
        (0..self.shard_count).filter(|&s| !self.is_done(s)).count()
    }

    /// Requeues every claimed, incomplete shard whose lease is older
    /// than `ttl` (its worker stopped renewing — killed, hung or
    /// unreachable). Returns how many claims were released.
    pub fn requeue_expired(&self, ttl: Duration) -> usize {
        let mut requeued = 0;
        for shard in 0..self.shard_count {
            if self.is_done(shard) {
                continue;
            }
            let path = self.claim_path(shard);
            let Ok(meta) = fs::metadata(&path) else {
                continue; // unclaimed
            };
            let expired = meta
                .modified()
                .ok()
                .and_then(|mtime| mtime.elapsed().ok())
                .is_some_and(|age| age > ttl);
            if expired && fs::remove_file(&path).is_ok() {
                requeued += 1;
            }
        }
        requeued
    }
}

/// Writes `bytes` to `<dir>/<name>` through a uniquely-named temp file
/// and an atomic rename.
fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = fs::File::create(&tmp)?;
    let written = f.write_all(bytes).and_then(|()| f.flush());
    drop(f);
    let renamed = written.and_then(|()| fs::rename(&tmp, dir.join(name)));
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_machine::CycleModel;
    use widening_pipeline::{CompileOptions, PointSpec};
    use widening_workload::kernels;

    fn temp_queue(shards: usize) -> (PathBuf, JobQueue, SweepManifest) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "widening-queue-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        let spec = PointSpec::scheduled(
            &"2w2(64:1)".parse().unwrap(),
            CycleModel::Cycles4,
            CompileOptions::default(),
        );
        let manifest = SweepManifest::partition(kernels::all(), vec![spec], shards);
        let queue = JobQueue::create(&dir, &manifest).unwrap();
        (dir, queue, manifest)
    }

    #[test]
    fn open_round_trips_the_manifest() {
        let (dir, queue, manifest) = temp_queue(3);
        let (reopened, decoded) = JobQueue::open(&dir).expect("opens");
        assert_eq!(reopened.shard_count(), queue.shard_count());
        assert_eq!(decoded, manifest);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn claims_are_exclusive_and_ordered() {
        let (dir, queue, _) = temp_queue(3);
        assert_eq!(queue.claim_next("a"), Some(0));
        assert_eq!(queue.claim_next("b"), Some(1));
        assert_eq!(queue.claim_next("c"), Some(2));
        assert_eq!(queue.claim_next("d"), None);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn completion_skips_and_finishes_the_queue() {
        let (dir, queue, _) = temp_queue(2);
        queue.complete(0, b"report-0");
        assert!(queue.is_done(0));
        assert_eq!(queue.completion(0).as_deref(), Some(&b"report-0"[..]));
        // Done shards are never claimed.
        assert_eq!(queue.claim_next("w"), Some(1));
        assert!(!queue.all_done());
        queue.complete(1, b"report-1");
        assert!(queue.all_done());
        assert_eq!(queue.remaining(), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn expired_leases_requeue_incomplete_shards_only() {
        let (dir, queue, _) = temp_queue(2);
        assert_eq!(queue.claim_next("doomed"), Some(0));
        assert_eq!(queue.claim_next("fine"), Some(1));
        queue.complete(1, b"ok");
        // Nothing expires under a generous TTL.
        assert_eq!(queue.requeue_expired(Duration::from_secs(3600)), 0);
        std::thread::sleep(Duration::from_millis(30));
        // Shard 0's lease (never renewed) expires; shard 1 is done and
        // untouchable.
        assert_eq!(queue.requeue_expired(Duration::from_millis(10)), 1);
        assert_eq!(queue.claim_next("rescuer"), Some(0));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lease_renewal_keeps_a_shard_claimed() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("w"), Some(0));
        std::thread::sleep(Duration::from_millis(30));
        queue.renew_lease(0, "w");
        assert_eq!(queue.requeue_expired(Duration::from_millis(25)), 0);
        let _ = fs::remove_dir_all(dir);
    }
}
