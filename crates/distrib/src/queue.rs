//! The filesystem job queue: atomic shard claims, **monotonic
//! counter leases**, lease-stall requeue, work-stealing surplus/steal
//! markers and durable completion markers.
//!
//! Layout of a queue directory:
//!
//! ```text
//! <queue>/manifest.bin       the SweepManifest (atomic temp+rename)
//! <queue>/shard-<i>.claim    exists ⇒ shard i is claimed; payload =
//!                            a lease stamp (heartbeat counter +
//!                            remaining-priority-mass estimate)
//! <queue>/shard-<i>.surplus  the owner's steal offer: the tail half
//!                            of the shard's unit list, write-once
//! <queue>/shard-<i>.steal    exists ⇒ a thief owns the surplus units;
//!                            payload = the thief's lease stamp
//! <queue>/shard-<i>.sub.done the thief's encoded sub-shard report
//! <queue>/shard-<i>.*.r<k>   round k ≥ 1 of the same three steal
//!                            markers (recursive halving: each re-offer
//!                            opens a fresh write-once round; round 0
//!                            keeps the unsuffixed names)
//! <queue>/shard-<i>.done     exists ⇒ shard i is complete; payload =
//!                            the worker's encoded ShardReport
//! <queue>/scale.down         scale-down watermark: total retirement
//!                            tokens the coordinator has posted
//! <queue>/retire-<k>.claim   exists ⇒ token k is claimed (an idle
//!                            worker retired, or the coordinator
//!                            voided the token)
//! ```
//!
//! The protocol needs nothing but POSIX rename/create-new atomicity, so
//! it works across processes and across hosts on a shared filesystem:
//!
//! * **claim** — `O_CREAT|O_EXCL` on the claim file; exactly one worker
//!   wins a shard;
//! * **lease** — a *monotonic heartbeat counter* inside the claim file,
//!   rewritten (atomic temp+rename) by the owner on a TTL/4 cadence. A
//!   lease is live while its counter keeps advancing and **expired**
//!   when the counter fails to advance across a TTL observation window
//!   measured on the *observer's own monotonic clock*
//!   ([`LeaseObserver`]). No wall clock is ever compared across hosts:
//!   a claim stamped by a clock-skewed host — mtime in the future,
//!   counter absurdly large — expires exactly like any other once it
//!   stops advancing. (The previous protocol compared claim-file mtimes
//!   against the observer's wall clock; a skew-ahead host's claim then
//!   read as never-expiring and wedged the sweep on a dead worker.)
//! * **requeue** — anyone holding a [`LeaseObserver`] (the coordinator,
//!   or an idle worker) may delete a stalled claim; the next
//!   `claim_next` scan re-claims the shard;
//! * **steal** — the owner of a large shard publishes the tail half of
//!   its priority-ordered unit list as a write-once *surplus* marker;
//!   an idle worker claims it with `O_CREAT|O_EXCL` on the steal file
//!   and heartbeats its own counter into that file while it works the
//!   stolen units, completing them with a durable sub-shard report.
//!   Each marker is write-once, but the protocol is *rounded*: when a
//!   thief finishes round k while the owner still holds enough
//!   unprocessed units, the owner re-offers the tail half of its
//!   remainder as round k + 1 (fresh `.r<k+1>`-suffixed marker names,
//!   so republishing never races a thief's read of an older offer) —
//!   recursive halving that converges every idle worker on the last
//!   straggler shard;
//! * **scale-down** — the coordinator posts a monotone count of
//!   *retirement tokens* ([`JobQueue::post_retirements`]); a worker
//!   that is idle with nothing to claim or steal takes one token with
//!   `O_CREAT|O_EXCL` ([`JobQueue::claim_retirement`]) and exits early,
//!   freeing its core for co-located fleets;
//! * **complete** — reports are written to a temp file, `fsync`ed and
//!   renamed, so a completion marker is always whole *and durable*: a
//!   host crash right after the rename can no longer surface an empty
//!   or truncated marker. A marker that still fails to decode (torn by
//!   an older writer, corrupted at rest) is treated by the coordinator
//!   as **incomplete** — [`JobQueue::invalidate_done`] resets the shard
//!   for requeue instead of merging garbage.
//!
//! Races are resolved by idempotency, not locking: if a presumed-dead
//! worker was merely slow, two workers may process one shard — but unit
//! results are content-addressed in the shared store, so both publish
//! identical bytes under identical keys and the merge cannot tell the
//! difference. Spurious requeues and late steals cost duplicate work,
//! never wrong results.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use widening_pipeline::codec::{self, Reader, Writer};

use crate::manifest::SweepManifest;

const MANIFEST_FILE: &str = "manifest.bin";

/// Magic + version prefix of a lease stamp (claim / steal files).
const LEASE_MAGIC: [u8; 4] = *b"WLSE";
const LEASE_VERSION: u32 = 1;

/// Magic + version prefix of a surplus (steal-offer) marker.
const SURPLUS_MAGIC: [u8; 4] = *b"WSUR";
const SURPLUS_VERSION: u32 = 1;

/// Magic + version prefix of the scale-down watermark file.
const RETIRE_MAGIC: [u8; 4] = *b"WRET";
const RETIRE_VERSION: u32 = 1;

/// Remaining-mass value meaning "not measured yet" (a claim stamped at
/// creation, before the owner's first heartbeat). Consumers fall back
/// to the manifest's static estimate.
pub const MASS_UNKNOWN: u64 = u64::MAX;

/// One heartbeat observation: the monotonic counter a lease owner keeps
/// advancing, plus its current remaining-work estimate (the
/// `sweep_priority` mass of units not yet processed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseStamp {
    /// Monotonic heartbeat counter. Only *advancement* carries meaning;
    /// the absolute value never does (a future-stamped counter from a
    /// skewed or restarted host is indistinguishable from any other
    /// starting point).
    pub counter: u64,
    /// Remaining `sweep_priority` mass behind this lease, or
    /// [`MASS_UNKNOWN`].
    pub mass: u64,
}

impl LeaseStamp {
    fn encode(&self, tag: &str) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&LEASE_MAGIC);
        w.u32(LEASE_VERSION);
        w.u64(self.counter);
        w.u64(self.mass);
        w.bytes(tag.as_bytes());
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != LEASE_MAGIC || r.u32()? != LEASE_VERSION {
            return None;
        }
        Some(LeaseStamp {
            counter: r.u64()?,
            mass: r.u64()?,
        })
    }
}

/// Stall detector for one lease file, on the observer's own monotonic
/// clock. Feed it observations; it reports expiry when the observed
/// value stops changing for longer than the TTL.
#[derive(Debug, Default, Clone, Copy)]
pub struct LeaseWatch {
    last: Option<(u64, Instant)>,
}

impl LeaseWatch {
    /// A watch with no observation yet.
    #[must_use]
    pub fn new() -> Self {
        LeaseWatch::default()
    }

    /// Feeds one observation (any stable digest of the lease file —
    /// usually the heartbeat counter; a raw-byte hash for files that do
    /// not parse, so garbage still expires when it sits still). Returns
    /// `true` when the value has not changed across a window longer
    /// than `ttl` on this observer's monotonic clock.
    pub fn observe(&mut self, value: u64, ttl: Duration) -> bool {
        let now = Instant::now();
        match self.last {
            Some((prev, since)) if prev == value => now.duration_since(since) > ttl,
            _ => {
                self.last = Some((value, now));
                false
            }
        }
    }

    /// Forgets the observation history (the watched file vanished or
    /// was reset).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

/// Per-shard [`LeaseWatch`]es for a whole queue: the state an observer
/// (coordinator or idle worker) threads through repeated
/// [`JobQueue::requeue_expired`] calls. Clock-skew-proof by
/// construction — nothing in here ever reads a file mtime or compares
/// wall clocks across hosts.
#[derive(Debug, Default)]
pub struct LeaseObserver {
    claims: HashMap<usize, LeaseWatch>,
}

impl LeaseObserver {
    /// A fresh observer with no history. The first TTL window after
    /// construction never expires anything — stalls must be *observed*,
    /// not inferred from on-disk state of unknown age.
    #[must_use]
    pub fn new() -> Self {
        LeaseObserver::default()
    }
}

/// A handle on one sweep's queue directory. Cheap to clone.
#[derive(Debug, Clone)]
pub struct JobQueue {
    root: PathBuf,
    shard_count: usize,
}

impl JobQueue {
    /// Creates a queue directory holding `manifest` and its (initially
    /// unclaimed) shards.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the directory or writing the
    /// manifest.
    pub fn create(root: impl Into<PathBuf>, manifest: &SweepManifest) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        atomic_write(&root, MANIFEST_FILE, &manifest.encode(), true)?;
        Ok(JobQueue {
            root,
            shard_count: manifest.shards.len(),
        })
    }

    /// Opens an existing queue, returning it with its decoded manifest.
    /// `None` when the manifest is missing or fails validation.
    #[must_use]
    pub fn open(root: impl Into<PathBuf>) -> Option<(Self, SweepManifest)> {
        let root = root.into();
        let bytes = fs::read(root.join(MANIFEST_FILE)).ok()?;
        let manifest = SweepManifest::decode(&bytes)?;
        let queue = JobQueue {
            root,
            shard_count: manifest.shards.len(),
        };
        Some((queue, manifest))
    }

    /// The queue directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards in the queue.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    fn claim_path(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard}.claim"))
    }

    fn done_path(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard}.done"))
    }

    /// A steal-marker file name for `round`: round 0 keeps the legacy
    /// unsuffixed name (wire compatibility with pre-halving fleets),
    /// later rounds append `.r<round>`.
    fn round_name(shard: usize, base: &str, round: u32) -> String {
        if round == 0 {
            format!("shard-{shard}.{base}")
        } else {
            format!("shard-{shard}.{base}.r{round}")
        }
    }

    fn surplus_path(&self, shard: usize, round: u32) -> PathBuf {
        self.root.join(Self::round_name(shard, "surplus", round))
    }

    fn steal_path(&self, shard: usize, round: u32) -> PathBuf {
        self.root.join(Self::round_name(shard, "steal", round))
    }

    fn sub_done_path(&self, shard: usize, round: u32) -> PathBuf {
        self.root.join(Self::round_name(shard, "sub.done", round))
    }

    fn retire_watermark_path(&self) -> PathBuf {
        self.root.join("scale.down")
    }

    fn retire_claim_path(&self, token: u32) -> PathBuf {
        self.root.join(format!("retire-{token}.claim"))
    }

    /// Atomically claims the lowest-numbered unclaimed, incomplete
    /// shard, stamping an initial lease (counter 0, mass unknown) plus
    /// `tag` (diagnostic only) into the claim file. `None` when every
    /// shard is claimed or done — which does **not** mean the sweep is
    /// finished: a claim may yet stall and return.
    #[must_use]
    pub fn claim_next(&self, tag: &str) -> Option<usize> {
        let initial = LeaseStamp {
            counter: 0,
            mass: MASS_UNKNOWN,
        };
        for shard in 0..self.shard_count {
            if self.is_done(shard) {
                continue;
            }
            let mut opts = fs::OpenOptions::new();
            opts.write(true).create_new(true);
            if let Ok(mut f) = opts.open(self.claim_path(shard)) {
                let _ = f.write_all(&initial.encode(tag));
                return Some(shard);
            }
        }
        None
    }

    /// Renews the lease on a claimed shard: atomically rewrites the
    /// claim file with the owner's next heartbeat stamp. If the claim
    /// was requeued from under a slow owner this quietly re-creates it
    /// — harmless, see the module documentation on idempotency.
    pub fn renew_lease(&self, shard: usize, tag: &str, stamp: LeaseStamp) {
        let name = format!("shard-{shard}.claim");
        let _ = atomic_write(&self.root, &name, &stamp.encode(tag), false);
    }

    /// The last lease stamp written for a shard's claim, if the claim
    /// exists and parses.
    #[must_use]
    pub fn read_claim(&self, shard: usize) -> Option<LeaseStamp> {
        LeaseStamp::decode(&fs::read(self.claim_path(shard)).ok()?)
    }

    /// Marks a shard complete, durably publishing the worker's encoded
    /// report. Atomic and fsynced: readers see either no marker or a
    /// whole one, even across a host crash.
    pub fn complete(&self, shard: usize, report: &[u8]) {
        let _ = atomic_write(&self.root, &format!("shard-{shard}.done"), report, true);
    }

    /// Whether a shard has a completion marker.
    #[must_use]
    pub fn is_done(&self, shard: usize) -> bool {
        self.done_path(shard).exists()
    }

    /// The completion payload of a shard, if any.
    #[must_use]
    pub fn completion(&self, shard: usize) -> Option<Vec<u8>> {
        fs::read(self.done_path(shard)).ok()
    }

    /// Resets a shard whose completion marker failed to decode (torn by
    /// a pre-fsync writer, corrupted at rest): removes the marker and
    /// every claim/steal artifact so the shard re-enters the claimable
    /// pool. The published unit results are content-addressed and
    /// survive — the re-run is mostly result-tier hits. Returns whether
    /// a marker was actually removed.
    pub fn invalidate_done(&self, shard: usize) -> bool {
        let removed = fs::remove_file(self.done_path(shard)).is_ok();
        if removed {
            let _ = fs::remove_file(self.claim_path(shard));
            // Steal rounds are published contiguously from 0, so the
            // sweep stops at the first round with no artifacts.
            for round in 0.. {
                let gone = [
                    fs::remove_file(self.steal_path(shard, round)),
                    fs::remove_file(self.surplus_path(shard, round)),
                    fs::remove_file(self.sub_done_path(shard, round)),
                ];
                if gone.iter().all(Result::is_err) {
                    break;
                }
            }
        }
        removed
    }

    /// Whether every shard is complete.
    #[must_use]
    pub fn all_done(&self) -> bool {
        (0..self.shard_count).all(|s| self.is_done(s))
    }

    /// Whether the queue has been retired: its manifest is gone (a
    /// coordinator removes the whole directory once its sweep ends).
    /// Idle workers exit on retirement instead of polling a vanished
    /// queue forever.
    #[must_use]
    pub fn is_retired(&self) -> bool {
        !self.root.join(MANIFEST_FILE).exists()
    }

    /// Shards without a completion marker.
    #[must_use]
    pub fn remaining(&self) -> usize {
        (0..self.shard_count).filter(|&s| !self.is_done(s)).count()
    }

    /// Requeues every claimed, incomplete shard whose lease counter has
    /// failed to advance across a full `ttl` window of `observer`'s
    /// monotonic clock (its worker stopped heartbeating — killed, hung
    /// or unreachable). Wall-clock skew between hosts is irrelevant:
    /// only counter movement is compared, never timestamps. Returns how
    /// many claims were released.
    pub fn requeue_expired(&self, observer: &mut LeaseObserver, ttl: Duration) -> usize {
        let mut requeued = 0;
        for shard in 0..self.shard_count {
            if self.is_done(shard) {
                observer.claims.remove(&shard);
                continue;
            }
            let path = self.claim_path(shard);
            let Ok(bytes) = fs::read(&path) else {
                observer.claims.remove(&shard); // unclaimed
                continue;
            };
            let observation = lease_observation(&bytes);
            let watch = observer.claims.entry(shard).or_default();
            if watch.observe(observation, ttl) && fs::remove_file(&path).is_ok() {
                watch.reset();
                requeued += 1;
            }
        }
        requeued
    }

    // -- work stealing -------------------------------------------------

    /// Publishes round 0's steal offer (see
    /// [`JobQueue::publish_surplus_round`]).
    pub fn publish_surplus(&self, shard: usize, split: u32, units: &[u32]) -> bool {
        self.publish_surplus_round(shard, 0, split, units)
    }

    /// Publishes one round's steal offer for a claimed shard: the unit
    /// ids from `split` (an index into the shard's own unit list) to
    /// the end of the round's range. Write-once *per round* —
    /// republishing a round would race a thief's read of the old
    /// offer, so each re-offer opens a fresh round instead. Returns
    /// whether an offer for this round (this one or an earlier
    /// owner's) is now on disk.
    pub fn publish_surplus_round(
        &self,
        shard: usize,
        round: u32,
        split: u32,
        units: &[u32],
    ) -> bool {
        if self.surplus_path(shard, round).exists() {
            return true;
        }
        let mut w = Writer::new();
        w.bytes(&SURPLUS_MAGIC);
        w.u32(SURPLUS_VERSION);
        w.u32(split);
        w.len(units.len());
        for &u in units {
            w.u32(u);
        }
        atomic_write(
            &self.root,
            &Self::round_name(shard, "surplus", round),
            &w.into_bytes(),
            true,
        )
        .is_ok()
    }

    /// Round 0's steal offer (see [`JobQueue::read_surplus_round`]).
    #[must_use]
    pub fn read_surplus(&self, shard: usize) -> Option<(u32, Vec<u32>)> {
        self.read_surplus_round(shard, 0)
    }

    /// The steal offer published for one round of a shard, if any: the
    /// split index and the offered unit ids.
    #[must_use]
    pub fn read_surplus_round(&self, shard: usize, round: u32) -> Option<(u32, Vec<u32>)> {
        let bytes = fs::read(self.surplus_path(shard, round)).ok()?;
        let mut r = Reader::new(&bytes);
        if r.take(4)? != SURPLUS_MAGIC || r.u32()? != SURPLUS_VERSION {
            return None;
        }
        let split = r.u32()?;
        let n = r.len()?;
        let mut units = Vec::with_capacity(n);
        for _ in 0..n {
            units.push(r.u32()?);
        }
        r.exhausted().then_some((split, units))
    }

    /// The highest round with a surplus offer on disk, if any. Rounds
    /// are published contiguously from 0 and only the latest can be
    /// unclaimed, so thieves probe exactly this round.
    #[must_use]
    pub fn latest_surplus_round(&self, shard: usize) -> Option<u32> {
        if !self.surplus_path(shard, 0).exists() {
            return None;
        }
        let mut round = 0;
        while self.surplus_path(shard, round + 1).exists() {
            round += 1;
        }
        Some(round)
    }

    /// Whether round 0's surplus has been claimed by a thief.
    #[must_use]
    pub fn steal_claimed(&self, shard: usize) -> bool {
        self.steal_claimed_round(shard, 0)
    }

    /// Whether one round's surplus has been claimed by a thief.
    #[must_use]
    pub fn steal_claimed_round(&self, shard: usize, round: u32) -> bool {
        self.steal_path(shard, round).exists()
    }

    /// Claims round 0's steal offer (see
    /// [`JobQueue::claim_steal_round`]).
    #[must_use]
    pub fn claim_steal(&self, shard: usize, tag: &str) -> Option<Vec<u32>> {
        self.claim_steal_round(shard, 0, tag)
    }

    /// Atomically claims one round's steal offer (`O_CREAT|O_EXCL` on
    /// the round's steal file — exactly one thief wins), returning the
    /// offered units. `None` when the offer is already claimed, the
    /// shard is done, or no offer exists.
    #[must_use]
    pub fn claim_steal_round(&self, shard: usize, round: u32, tag: &str) -> Option<Vec<u32>> {
        if self.is_done(shard) || !self.surplus_path(shard, round).exists() {
            return None;
        }
        let initial = LeaseStamp {
            counter: 0,
            mass: MASS_UNKNOWN,
        };
        let mut opts = fs::OpenOptions::new();
        opts.write(true).create_new(true);
        let mut f = opts.open(self.steal_path(shard, round)).ok()?;
        let _ = f.write_all(&initial.encode(tag));
        drop(f);
        match self.read_surplus_round(shard, round) {
            Some((_, units)) if !units.is_empty() => Some(units),
            // The offer vanished (owner completed) or is unreadable:
            // release the steal claim and walk away.
            _ => {
                let _ = fs::remove_file(self.steal_path(shard, round));
                None
            }
        }
    }

    /// Renews a thief's lease on its round-0 stolen sub-shard.
    pub fn renew_steal(&self, shard: usize, tag: &str, stamp: LeaseStamp) {
        self.renew_steal_round(shard, 0, tag, stamp);
    }

    /// Renews a thief's lease on one round's stolen sub-shard.
    pub fn renew_steal_round(&self, shard: usize, round: u32, tag: &str, stamp: LeaseStamp) {
        let name = Self::round_name(shard, "steal", round);
        let _ = atomic_write(&self.root, &name, &stamp.encode(tag), false);
    }

    /// Round 0's stall observation (see
    /// [`JobQueue::steal_observation_round`]).
    #[must_use]
    pub fn steal_observation(&self, shard: usize) -> Option<u64> {
        self.steal_observation_round(shard, 0)
    }

    /// The raw stall observation for one round's steal file: the lease
    /// counter when it parses, a content hash otherwise, `None` when
    /// the round's steal is not claimed. Owners feed this into a
    /// [`LeaseWatch`] to decide whether their thief died.
    #[must_use]
    pub fn steal_observation_round(&self, shard: usize, round: u32) -> Option<u64> {
        let bytes = fs::read(self.steal_path(shard, round)).ok()?;
        Some(lease_observation(&bytes))
    }

    /// The last lease stamp a still-working thief wrote for a shard,
    /// if any parses (used by the coordinator's remaining-mass
    /// estimate). Looks at the latest steal round; a round whose
    /// sub-report already landed contributes nothing — its mass is
    /// done, not remaining.
    #[must_use]
    pub fn read_steal(&self, shard: usize) -> Option<LeaseStamp> {
        let round = self.latest_surplus_round(shard)?;
        if self.sub_completion_round(shard, round).is_some() {
            return None;
        }
        LeaseStamp::decode(&fs::read(self.steal_path(shard, round)).ok()?)
    }

    /// Durably publishes a thief's round-0 sub-shard completion report.
    pub fn complete_sub(&self, shard: usize, report: &[u8]) {
        self.complete_sub_round(shard, 0, report);
    }

    /// Durably publishes a thief's sub-shard completion report for one
    /// steal round.
    pub fn complete_sub_round(&self, shard: usize, round: u32, report: &[u8]) {
        let _ = atomic_write(
            &self.root,
            &Self::round_name(shard, "sub.done", round),
            report,
            true,
        );
    }

    /// Round 0's sub-shard completion payload, if any.
    #[must_use]
    pub fn sub_completion(&self, shard: usize) -> Option<Vec<u8>> {
        self.sub_completion_round(shard, 0)
    }

    /// The sub-shard completion payload for one steal round, if any.
    #[must_use]
    pub fn sub_completion_round(&self, shard: usize, round: u32) -> Option<Vec<u8>> {
        fs::read(self.sub_done_path(shard, round)).ok()
    }

    /// Removes round 0's surplus offer (see
    /// [`JobQueue::retract_surplus_round`]).
    pub fn retract_surplus(&self, shard: usize) {
        self.retract_surplus_round(shard, 0);
    }

    /// Removes one round's surplus offer (the owner completed without
    /// it ever being stolen — a late thief would only duplicate
    /// finished work).
    pub fn retract_surplus_round(&self, shard: usize, round: u32) {
        let _ = fs::remove_file(self.surplus_path(shard, round));
    }

    // -- scale-down ----------------------------------------------------

    /// Posts the scale-down watermark: the total number of retirement
    /// tokens ever issued for this queue. Monotone — the coordinator
    /// only raises it; lowering cannot un-retire a worker that already
    /// read a token.
    pub fn post_retirements(&self, total: u32) {
        let mut w = Writer::new();
        w.bytes(&RETIRE_MAGIC);
        w.u32(RETIRE_VERSION);
        w.u32(total);
        let _ = atomic_write(&self.root, "scale.down", &w.into_bytes(), false);
    }

    /// The posted retirement-token total (0 when none posted).
    #[must_use]
    pub fn retirement_tokens(&self) -> u32 {
        let Ok(bytes) = fs::read(self.retire_watermark_path()) else {
            return 0;
        };
        let mut r = Reader::new(&bytes);
        if r.take(4) != Some(&RETIRE_MAGIC) || r.u32() != Some(RETIRE_VERSION) {
            return 0;
        }
        r.u32().unwrap_or(0)
    }

    /// Atomically claims one posted retirement token (`O_CREAT|O_EXCL`
    /// on the token's claim file — each token retires exactly one
    /// worker), returning the token index. `None` when every posted
    /// token is claimed or none were posted.
    #[must_use]
    pub fn claim_retirement(&self, tag: &str) -> Option<u32> {
        for token in 0..self.retirement_tokens() {
            let mut opts = fs::OpenOptions::new();
            opts.write(true).create_new(true);
            if let Ok(mut f) = opts.open(self.retire_claim_path(token)) {
                let _ = f.write_all(tag.as_bytes());
                return Some(token);
            }
        }
        None
    }

    /// How many posted retirement tokens have been claimed.
    #[must_use]
    pub fn retirements_claimed(&self) -> u32 {
        (0..self.retirement_tokens())
            .filter(|&t| self.retire_claim_path(t).exists())
            .count() as u32
    }
}

/// The stall-detection digest of a lease file's bytes: the heartbeat
/// counter when the stamp parses, a raw content hash otherwise — so a
/// garbage or torn claim file still *expires* once it sits still,
/// instead of wedging the shard forever.
fn lease_observation(bytes: &[u8]) -> u64 {
    match LeaseStamp::decode(bytes) {
        Some(stamp) => stamp.counter,
        None => codec::fnv128(bytes) as u64,
    }
}

/// Writes `bytes` to `<dir>/<name>` through a uniquely-named temp file
/// and an atomic rename. With `durable`, the temp file is `fsync`ed
/// before the rename — a crash can then never surface a present-but-
/// truncated file under the final name (rename durability without data
/// durability is exactly how empty `shard-N.done` markers were born).
fn atomic_write(dir: &Path, name: &str, bytes: &[u8], durable: bool) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = fs::File::create(&tmp)?;
    let mut written = f.write_all(bytes).and_then(|()| f.flush());
    if durable {
        written = written.and_then(|()| f.sync_all());
    }
    drop(f);
    let renamed = written.and_then(|()| fs::rename(&tmp, dir.join(name)));
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_machine::CycleModel;
    use widening_pipeline::{CompileOptions, PointSpec};
    use widening_workload::kernels;

    fn temp_queue(shards: usize) -> (PathBuf, JobQueue, SweepManifest) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "widening-queue-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        let spec = PointSpec::scheduled(
            &"2w2(64:1)".parse().unwrap(),
            CycleModel::Cycles4,
            CompileOptions::default(),
        );
        let manifest = SweepManifest::partition(kernels::all(), vec![spec], shards);
        let queue = JobQueue::create(&dir, &manifest).unwrap();
        (dir, queue, manifest)
    }

    fn stamp(counter: u64) -> LeaseStamp {
        LeaseStamp {
            counter,
            mass: MASS_UNKNOWN,
        }
    }

    #[test]
    fn open_round_trips_the_manifest() {
        let (dir, queue, manifest) = temp_queue(3);
        let (reopened, decoded) = JobQueue::open(&dir).expect("opens");
        assert_eq!(reopened.shard_count(), queue.shard_count());
        assert_eq!(decoded, manifest);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn claims_are_exclusive_and_ordered() {
        let (dir, queue, _) = temp_queue(3);
        assert_eq!(queue.claim_next("a"), Some(0));
        assert_eq!(queue.claim_next("b"), Some(1));
        assert_eq!(queue.claim_next("c"), Some(2));
        assert_eq!(queue.claim_next("d"), None);
        // Fresh claims carry the initial stamp.
        assert_eq!(queue.read_claim(0), Some(stamp(0)));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn completion_skips_and_finishes_the_queue() {
        let (dir, queue, _) = temp_queue(2);
        queue.complete(0, b"report-0");
        assert!(queue.is_done(0));
        assert_eq!(queue.completion(0).as_deref(), Some(&b"report-0"[..]));
        // Done shards are never claimed.
        assert_eq!(queue.claim_next("w"), Some(1));
        assert!(!queue.all_done());
        queue.complete(1, b"report-1");
        assert!(queue.all_done());
        assert_eq!(queue.remaining(), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stalled_leases_requeue_incomplete_shards_only() {
        let (dir, queue, _) = temp_queue(2);
        assert_eq!(queue.claim_next("doomed"), Some(0));
        assert_eq!(queue.claim_next("fine"), Some(1));
        queue.complete(1, b"ok");
        let ttl = Duration::from_millis(20);
        let mut obs = LeaseObserver::new();
        // First observation only opens the window — nothing expires.
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 0);
        std::thread::sleep(Duration::from_millis(30));
        // Shard 0's counter (never advanced) stalls; shard 1 is done
        // and untouchable.
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 1);
        assert_eq!(queue.claim_next("rescuer"), Some(0));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lease_renewal_keeps_a_shard_claimed() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("w"), Some(0));
        let ttl = Duration::from_millis(25);
        let mut obs = LeaseObserver::new();
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 0);
        std::thread::sleep(Duration::from_millis(30));
        // The counter advanced inside the window: the lease is live no
        // matter how much wall time passed.
        queue.renew_lease(0, "w", stamp(1));
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 0);
        std::thread::sleep(Duration::from_millis(30));
        queue.renew_lease(0, "w", stamp(2));
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn future_stamped_claims_still_expire() {
        // The cross-host clock-skew case the mtime protocol wedged on: a
        // claim whose counter (and mtime) lie absurdly "in the future"
        // must expire exactly like any other once it stops advancing.
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("skewed"), Some(0));
        queue.renew_lease(0, "skewed", stamp(u64::MAX - 1));
        // Push the claim file's mtime a year ahead, as a skew-ahead
        // host's writes would.
        let claim = dir.join("shard-0.claim");
        let future = std::time::SystemTime::now() + Duration::from_secs(365 * 24 * 3600);
        fs::File::options()
            .append(true)
            .open(&claim)
            .unwrap()
            .set_modified(future)
            .unwrap();
        let ttl = Duration::from_millis(20);
        let mut obs = LeaseObserver::new();
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 0);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            queue.requeue_expired(&mut obs, ttl),
            1,
            "a future-stamped stalled claim must requeue"
        );
        assert_eq!(queue.claim_next("rescuer"), Some(0));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn garbage_claim_files_expire_instead_of_wedging() {
        let (dir, queue, _) = temp_queue(1);
        // A torn or foreign-format claim file: no parseable counter.
        fs::write(dir.join("shard-0.claim"), b"\x00\xffnot-a-lease").unwrap();
        let ttl = Duration::from_millis(15);
        let mut obs = LeaseObserver::new();
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 0);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(queue.requeue_expired(&mut obs, ttl), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn invalidate_done_resets_the_shard() {
        let (dir, queue, _) = temp_queue(2);
        assert_eq!(queue.claim_next("w"), Some(0));
        queue.publish_surplus(0, 1, &[3, 5]);
        queue.complete(0, b"\x01garbage-that-wont-decode");
        assert!(queue.is_done(0));
        assert!(queue.invalidate_done(0));
        assert!(!queue.is_done(0));
        assert!(queue.read_surplus(0).is_none(), "surplus reset too");
        // The shard is claimable again (its stale claim was removed).
        assert_eq!(queue.claim_next("again"), Some(0));
        assert!(!queue.invalidate_done(1), "no marker, nothing removed");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn steal_protocol_is_exclusive_and_write_once() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("owner"), Some(0));
        assert!(queue.claim_steal(0, "too-early").is_none(), "no offer yet");
        assert!(queue.publish_surplus(0, 4, &[9, 11, 13]));
        // Write-once: a second publish cannot change the offer.
        assert!(queue.publish_surplus(0, 1, &[1]));
        assert_eq!(queue.read_surplus(0), Some((4, vec![9, 11, 13])));
        // Exactly one thief wins.
        assert_eq!(queue.claim_steal(0, "thief-a"), Some(vec![9, 11, 13]));
        assert!(queue.steal_claimed(0));
        assert!(queue.claim_steal(0, "thief-b").is_none());
        // The thief heartbeats its own lease; the owner reads it.
        queue.renew_steal(0, "thief-a", stamp(7));
        assert_eq!(queue.steal_observation(0), Some(7));
        queue.complete_sub(0, b"sub-report");
        assert_eq!(queue.sub_completion(0).as_deref(), Some(&b"sub-report"[..]));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn retracted_surplus_stops_late_thieves() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("owner"), Some(0));
        assert!(queue.publish_surplus(0, 2, &[5, 6]));
        queue.retract_surplus(0);
        assert!(queue.claim_steal(0, "late-thief").is_none());
        assert!(!queue.steal_claimed(0), "failed steal leaves no residue");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn done_shards_reject_steals() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("owner"), Some(0));
        assert!(queue.publish_surplus(0, 2, &[5, 6]));
        queue.complete(0, b"done");
        assert!(queue.claim_steal(0, "thief").is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn steal_rounds_halve_recursively_with_legacy_round_zero_names() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.claim_next("owner"), Some(0));
        assert!(queue.latest_surplus_round(0).is_none());

        // Round 0 keeps the legacy unsuffixed file names on disk, so
        // pre-halving workers interoperate.
        assert!(queue.publish_surplus_round(0, 0, 8, &[9, 11, 13, 15]));
        assert!(dir.join("shard-0.surplus").exists());
        assert_eq!(queue.latest_surplus_round(0), Some(0));
        assert_eq!(
            queue.claim_steal_round(0, 0, "thief-a"),
            Some(vec![9, 11, 13, 15])
        );
        assert!(dir.join("shard-0.steal").exists());
        queue.complete_sub_round(0, 0, b"sub-0");

        // The thief finished; the owner re-offers its remaining tail as
        // a fresh write-once round.
        assert!(queue.publish_surplus_round(0, 1, 4, &[5, 7]));
        assert!(dir.join("shard-0.surplus.r1").exists());
        assert_eq!(queue.latest_surplus_round(0), Some(1));
        assert!(
            !queue.steal_claimed_round(0, 1),
            "round 1 opens unclaimed even though round 0's steal file persists"
        );
        assert_eq!(queue.claim_steal_round(0, 1, "thief-b"), Some(vec![5, 7]));
        assert!(queue.claim_steal_round(0, 1, "thief-c").is_none());
        // Per-round leases and sub-reports never collide across rounds.
        queue.renew_steal_round(0, 1, "thief-b", stamp(3));
        assert_eq!(queue.steal_observation_round(0, 1), Some(3));
        queue.complete_sub_round(0, 1, b"sub-1");
        assert_eq!(
            queue.sub_completion_round(0, 0).as_deref(),
            Some(&b"sub-0"[..])
        );
        assert_eq!(
            queue.sub_completion_round(0, 1).as_deref(),
            Some(&b"sub-1"[..])
        );

        // read_steal tracks the latest round and goes quiet once that
        // round's sub-report lands (the mass is done, not remaining).
        assert!(queue.read_steal(0).is_none());

        // invalidate_done clears every round's artifacts.
        queue.complete(0, b"\x01garbage");
        assert!(queue.invalidate_done(0));
        assert!(queue.latest_surplus_round(0).is_none());
        assert!(!queue.steal_claimed_round(0, 1));
        assert!(queue.sub_completion_round(0, 1).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn retirement_tokens_are_claimed_exclusively() {
        let (dir, queue, _) = temp_queue(1);
        assert_eq!(queue.retirement_tokens(), 0);
        assert!(queue.claim_retirement("eager").is_none(), "none posted");

        queue.post_retirements(2);
        assert_eq!(queue.retirement_tokens(), 2);
        let a = queue.claim_retirement("worker-a");
        let b = queue.claim_retirement("worker-b");
        assert!(a.is_some() && b.is_some() && a != b);
        assert!(queue.claim_retirement("worker-c").is_none(), "pool drained");
        assert_eq!(queue.retirements_claimed(), 2);

        // The watermark is monotone: raising it opens exactly the new
        // tokens.
        queue.post_retirements(3);
        assert_eq!(queue.claim_retirement("worker-c"), Some(2));
        assert_eq!(queue.retirements_claimed(), 3);
        let _ = fs::remove_dir_all(dir);
    }
}
