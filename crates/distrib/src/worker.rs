//! The sweep worker: claims shards, runs the staged pipeline over
//! their units, steals surplus work when idle, and publishes batched
//! results into the shared store.
//!
//! A worker is launched with nothing but a queue directory and a cache
//! directory (`repro worker --queue … --cache-dir …`, or an in-process
//! thread). It reads the manifest, builds its own [`Pipeline`] over the
//! manifest corpus with the shared persistent store — so compiled stage
//! artifacts are exchanged with every other worker through the disk
//! tier — and loops over three behaviours:
//!
//! * **own a shard** — claim it, offer the tail half of its
//!   priority-ordered unit list as a steal *surplus* (when the shard is
//!   big enough to share), compile the units front-to-back while a
//!   heartbeat thread advances the claim's monotonic lease counter and
//!   remaining-mass estimate, and durably complete the shard with a
//!   [`ShardReport`]. Stealing is *recursive*: each time a thief's
//!   sub-report for the offered tail lands while the owner still holds
//!   enough unprocessed units, the owner folds the report in and
//!   re-offers the tail half of its remainder as the next round's
//!   surplus — halving that converges every idle worker on the last
//!   straggler shard;
//! * **steal** — with every shard claimed and none stalled, take a
//!   surplus shard's offered tail via the atomically-claimed steal
//!   file, heartbeat a lease of its own while working the stolen units,
//!   and complete them with a durable sub-shard report the owner folds
//!   into the shard's — instead of spinning on `claim_next`;
//! * **idle** — requeue stalled foreign leases (unless a coordinator
//!   reserved that job), retire early when the coordinator posted a
//!   scale-down token (remaining mass near zero, nothing stealable),
//!   and poll.
//!
//! Results are **batched**: outcomes are buffered per shard (or per
//! stolen sub-shard) and published as one batch record keyed by the
//! shard's unit-key-list hash — one publish per shard instead of one
//! per `(loop × config)` unit, ~50× fewer result-tier syscalls on big
//! grids. Units already covered by a batch record or the per-unit tier
//! are skipped (re-runs and requeued shards cost lookups, not
//! compiles); the legacy per-unit publishing mode remains available
//! ([`WorkerConfig::batch_results`]` = false`) for mixed fleets and
//! the publish-cost benchmark.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use widening_obs as obs;
use widening_obs::SpanKind;
use widening_pipeline::codec::{self, Reader, Writer};
use widening_pipeline::exchange::{
    batch_result_key, decode_unit_batch, decode_unit_outcome, encode_unit_batch,
    encode_unit_outcome, unit_result_key, BATCH_KIND, RESULT_KIND,
};
use widening_pipeline::{Exchange, Pipeline, StageCounts, StoreConfig, UnitOutcome};

use crate::manifest::SweepManifest;
use crate::queue::{JobQueue, LeaseObserver, LeaseStamp, LeaseWatch};
use crate::DistribError;

/// Version of the [`ShardReport`] encoding.
const REPORT_VERSION: u32 = 3;

/// Batch part tag of the shard owner's record.
const PART_OWNER: u8 = 0;
/// Batch part tag of a thief's stolen-sub-shard record (steal round 0).
const PART_THIEF: u8 = 1;
/// Distinct thief batch-part tags: steal rounds 0..MAX_THIEF_PARTS-1
/// each get their own record; deeper rounds (vanishingly small tails)
/// share the last tag. A shared tag can overwrite a sibling round's
/// record, which costs a result-tier recompute on replay — never
/// correctness, because unit results are content-addressed.
const MAX_THIEF_PARTS: u32 = 8;

/// How many batch-record parts a shard can publish under: the owner's
/// part 0 plus one per thief round (capped). Merge-side readers probe
/// every part below this bound.
pub const BATCH_PARTS: u8 = PART_THIEF + MAX_THIEF_PARTS as u8;

/// The batch part tag for a thief's record at a given steal round.
fn thief_part(round: u32) -> u8 {
    PART_THIEF + round.min(MAX_THIEF_PARTS - 1) as u8
}

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The queue directory (manifest + claim/done markers).
    pub queue_dir: PathBuf,
    /// The shared cache directory (stage artifacts + unit results).
    pub cache_dir: PathBuf,
    /// Worker threads for intra-shard fan-out.
    pub threads: usize,
    /// Lease TTL: how long another worker's heartbeat counter must sit
    /// still before this worker (idling, out of claimable shards)
    /// requeues its shard, and how long an owner waits on a silent
    /// thief before reclaiming its stolen units.
    pub lease_ttl: Duration,
    /// Idle poll interval while waiting for stragglers or requeues.
    pub poll: Duration,
    /// Whether an idle worker may requeue *other* workers' stalled
    /// leases. On by default so a coordinator-less fleet still drains a
    /// queue whose members die; a coordinator turns it off for the
    /// workers it supervises, making itself the single (and countable)
    /// requeuer.
    pub requeue_foreign: bool,
    /// Diagnostic tag stamped into claim files.
    pub tag: String,
    /// Publish one batch result record per shard / sub-shard instead of
    /// one per-unit record per unit (the default). Off = the legacy
    /// per-unit publishing protocol.
    pub batch_results: bool,
    /// Whether this worker offers its shards' tails for stealing and
    /// steals others' surplus when idle.
    pub steal: bool,
    /// Minimum shard size (in units) worth offering a surplus for.
    pub surplus_after: usize,
    /// Fault-injection hook: abandon everything (without completing the
    /// current shard — exactly what SIGKILL leaves behind) after
    /// processing this many units. `None` in production.
    pub die_after_units: Option<u64>,
}

impl WorkerConfig {
    /// A worker over `queue_dir` and `cache_dir` with defaults: one
    /// thread, 30 s lease TTL, 50 ms poll, pid-based tag, batched
    /// results, stealing on for shards of 8+ units.
    #[must_use]
    pub fn new(queue_dir: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> Self {
        WorkerConfig {
            queue_dir: queue_dir.into(),
            cache_dir: cache_dir.into(),
            threads: 1,
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(50),
            requeue_foreign: true,
            tag: format!("pid-{}", std::process::id()),
            batch_results: true,
            steal: true,
            surplus_after: 8,
            die_after_units: None,
        }
    }
}

/// What one worker did over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards this worker completed as owner.
    pub shards_completed: usize,
    /// Units processed (compiled or replayed) as shard owner.
    pub units: usize,
    /// Units served straight from the result tier (no compile at all).
    pub result_hits: usize,
    /// Surplus offers this worker stole.
    pub steals: usize,
    /// Units processed as a thief.
    pub stolen_units: usize,
    /// The worker pipeline's cumulative stage counters.
    pub counts: StageCounts,
}

/// One shard's completion report, published through the queue's done
/// marker so the coordinator can fold per-shard progress into the
/// existing stage-counter table. (Thieves publish the same shape as
/// their sub-shard report, with `shard` naming the robbed shard and
/// `stolen = 0`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Units the shard held.
    pub units: u32,
    /// Units served from the result tier without compiling.
    pub result_hits: u32,
    /// Units completed by a thief (folded in from its sub-report).
    pub stolen: u32,
    /// Stage-counter delta attributable to this shard.
    pub counts: StageCounts,
}

impl ShardReport {
    /// Encodes the report as a self-versioned record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(REPORT_VERSION);
        w.u32(self.shard);
        w.u32(self.units);
        w.u32(self.result_hits);
        w.u32(self.stolen);
        let c = &self.counts;
        for v in [
            c.widen_runs,
            c.widen_requests,
            c.widen_disk_hits,
            c.mii_runs,
            c.mii_requests,
            c.mii_disk_hits,
            c.base_schedule_runs,
            c.base_schedule_requests,
            c.base_schedule_disk_hits,
            c.schedule_runs,
            c.schedule_requests,
            c.schedule_disk_hits,
            c.schedule_evictions,
            c.schedule_resident_bytes,
            c.lower_runs,
            c.lower_requests,
            c.lower_disk_hits,
        ] {
            w.u64(v);
        }
        w.into_bytes()
    }

    /// Decodes a report; `None` on version skew or truncation.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.u32()? != REPORT_VERSION {
            return None;
        }
        let (shard, units, result_hits, stolen) = (r.u32()?, r.u32()?, r.u32()?, r.u32()?);
        let counts = StageCounts {
            widen_runs: r.u64()?,
            widen_requests: r.u64()?,
            widen_disk_hits: r.u64()?,
            mii_runs: r.u64()?,
            mii_requests: r.u64()?,
            mii_disk_hits: r.u64()?,
            base_schedule_runs: r.u64()?,
            base_schedule_requests: r.u64()?,
            base_schedule_disk_hits: r.u64()?,
            schedule_runs: r.u64()?,
            schedule_requests: r.u64()?,
            schedule_disk_hits: r.u64()?,
            schedule_evictions: r.u64()?,
            schedule_resident_bytes: r.u64()?,
            lower_runs: r.u64()?,
            lower_requests: r.u64()?,
            lower_disk_hits: r.u64()?,
        };
        r.exhausted().then_some(ShardReport {
            shard,
            units,
            result_hits,
            stolen,
            counts,
        })
    }
}

/// Everything a worker's shard/steal runs share.
struct WorkerState<'a> {
    cfg: &'a WorkerConfig,
    queue: &'a JobQueue,
    manifest: &'a SweepManifest,
    exchange: &'a Exchange,
    pipeline: &'a Pipeline,
    fingerprints: &'a [u128],
    /// Units processed so far (the chaos hook's odometer).
    processed: AtomicU64,
    /// Set once the chaos hook trips: every loop unwinds immediately,
    /// completing nothing — the closest an in-process worker gets to
    /// SIGKILL.
    poison: AtomicBool,
}

impl WorkerState<'_> {
    fn poisoned(&self) -> bool {
        self.poison.load(Ordering::Relaxed)
    }

    /// Ticks the odometer; returns `true` when the chaos hook trips.
    fn note_processed(&self) -> bool {
        let total = self.processed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cfg.die_after_units.is_some_and(|limit| total >= limit) {
            self.poison.store(true, Ordering::Relaxed);
        }
        self.poisoned()
    }

    fn unit_key(&self, unit: u32) -> Vec<u8> {
        let li = self.manifest.loop_of(unit);
        let spec = &self.manifest.specs[self.manifest.spec_of(unit)];
        unit_result_key(self.fingerprints[li], spec)
    }

    /// Resolves one unit: batch prefill, then the per-unit result tier,
    /// then a live compile (published per-unit in legacy mode).
    fn unit_outcome(
        &self,
        unit: u32,
        prefill: &HashMap<u32, UnitOutcome>,
        hits: &AtomicUsize,
    ) -> UnitOutcome {
        if let Some(o) = prefill.get(&unit) {
            hits.fetch_add(1, Ordering::Relaxed);
            return *o;
        }
        let key = self.unit_key(unit);
        if let Some(o) = self
            .exchange
            .get(RESULT_KIND, &key)
            .and_then(|b| decode_unit_outcome(&b))
        {
            hits.fetch_add(1, Ordering::Relaxed);
            return o;
        }
        let li = self.manifest.loop_of(unit);
        let spec = &self.manifest.specs[self.manifest.spec_of(unit)];
        let _unit_span = obs::span(
            SpanKind::SweepUnit,
            li as u64,
            obs::pack_point(spec.replication, spec.width, spec.registers),
        );
        let outcome = UnitOutcome::of(&self.pipeline.compile(li, spec));
        if !self.cfg.batch_results {
            self.exchange
                .put(RESULT_KIND, &key, &encode_unit_outcome(&outcome));
        }
        outcome
    }

    /// Loads a shard's existing batch records (owner and thief parts)
    /// into a unit → outcome map, restricted to `wanted` units. Batch
    /// mode only; the legacy mode reads the per-unit tier exactly as it
    /// always did.
    fn batch_prefill(&self, shard: usize, wanted: &[u32]) -> HashMap<u32, UnitOutcome> {
        let mut map = HashMap::new();
        if !self.cfg.batch_results {
            return map;
        }
        let keys = self.manifest.shard_unit_keys(shard, self.fingerprints);
        let wanted: HashSet<u32> = wanted.iter().copied().collect();
        for part in PART_OWNER..BATCH_PARTS {
            let Some(bytes) = self
                .exchange
                .get(BATCH_KIND, &batch_result_key(&keys, part))
            else {
                continue;
            };
            for (unit, outcome) in decode_unit_batch(&bytes).unwrap_or_default() {
                if wanted.contains(&unit) {
                    map.insert(unit, outcome);
                }
            }
        }
        map
    }

    /// Publishes the batch record for `(shard, part)` covering
    /// `entries` (unit id → outcome), sorted so identical coverage is
    /// byte-identical.
    fn publish_batch(&self, shard: usize, part: u8, mut entries: Vec<(u32, UnitOutcome)>) {
        if !self.cfg.batch_results || entries.is_empty() {
            return;
        }
        entries.sort_by_key(|&(unit, _)| unit);
        let keys = self.manifest.shard_unit_keys(shard, self.fingerprints);
        self.exchange.put(
            BATCH_KIND,
            &batch_result_key(&keys, part),
            &encode_unit_batch(&entries),
        );
    }

    /// Scans for a stealable surplus: an incomplete shard whose latest
    /// steal round holds an unclaimed offer (earlier rounds are always
    /// claimed — a new round only opens after the previous one
    /// resolved). Returns the round and the stolen units on success.
    fn find_steal(&self) -> Option<(usize, u32, Vec<u32>)> {
        for shard in 0..self.queue.shard_count() {
            if self.queue.is_done(shard) {
                continue;
            }
            let Some(round) = self.queue.latest_surplus_round(shard) else {
                continue;
            };
            if self.queue.steal_claimed_round(shard, round) {
                continue;
            }
            if let Some(units) = self.queue.claim_steal_round(shard, round, &self.cfg.tag) {
                eprintln!(
                    "distrib: event=steal-claim shard={shard} round={round} units={} tag={}",
                    units.len(),
                    self.cfg.tag
                );
                obs::instant(SpanKind::StealClaim, shard as u64, units.len() as u64);
                return Some((shard, round, units));
            }
        }
        None
    }
}

/// The heartbeat cadence for a lease TTL: a quarter of the TTL leaves
/// ample margin, clamped so tests with millisecond TTLs still beat and
/// long TTLs don't leave multi-minute observation gaps.
fn heartbeat_interval(ttl: Duration) -> Duration {
    (ttl / 4).clamp(Duration::from_millis(5), Duration::from_secs(5))
}

/// Sleeps up to `interval` in small steps, returning early when `stop`
/// flips — so heartbeat threads exit promptly at shard completion.
fn chopped_sleep(interval: Duration, stop: &AtomicBool) {
    let mut slept = Duration::ZERO;
    while slept < interval && !stop.load(Ordering::Relaxed) {
        let step = Duration::from_millis(10).min(interval - slept);
        std::thread::sleep(step);
        slept += step;
    }
}

/// How one owned-shard (or stolen-sub-shard) run ended.
enum RunEnd {
    /// Everything processed; counters for the summary.
    Completed {
        result_hits: usize,
        stolen: u32,
        thief_counts: StageCounts,
    },
    /// The chaos hook tripped (or the queue was retired mid-shard):
    /// abandon without completing — the lease goes silent and someone
    /// else requeues the work.
    Abandoned,
}

/// The owner-side lifecycle of a shard's offered tail, advanced round
/// by round as thieves claim and complete it (recursive halving).
struct TailState {
    /// Round number of the current offer.
    round: u32,
    /// An offer for `round` is on disk and unresolved.
    offered: bool,
    /// That offer has been claimed by a thief.
    claimed: bool,
    /// Units completed by thieves across all resolved rounds.
    stolen: u32,
    /// Stage counters folded in from thieves' sub-reports.
    thief_counts: StageCounts,
}

/// Runs one owned shard to completion: offer a surplus, compile with a
/// counter heartbeat, honour a thief's claim on the offered tail (fold
/// its sub-report and re-offer the remaining tail half as the next
/// round — recursive halving; reclaim its units if its lease stalls),
/// publish the owner batch and the durable done marker.
fn run_owned_shard(state: &WorkerState<'_>, shard: usize) -> RunEnd {
    let cfg = state.cfg;
    let queue = state.queue;
    let units = &state.manifest.shards[shard];
    let n = units.len();
    let _shard_span = obs::span(SpanKind::WorkerShard, shard as u64, n as u64);

    // Two boundaries fence the owner's unit range. `hard_end` is the
    // start of the resolved region: everything at or past it was
    // completed by thieves of already-folded rounds, and the owner
    // never enters it. `soft_split` is the start of the *open* round's
    // offer, binding only once a thief claims it (`steal_live`); until
    // then the offer is just an option and the owner keeps compiling
    // into it.
    let hits = AtomicUsize::new(0);
    let hard_end = AtomicUsize::new(n);
    let soft_split = AtomicUsize::new(n);
    let steal_live = AtomicBool::new(false);
    let tail = Mutex::new(TailState {
        round: 0,
        offered: false,
        claimed: false,
        stolen: 0,
        thief_counts: StageCounts::zero(),
    });

    // The initial steal offer: the tail half of the priority-ordered
    // list (cheap units — the owner keeps the heavy head it starts
    // on). A re-claimed shard inherits the previous owner's offer
    // chain instead, so in-flight thieves stay coherent: resolved
    // rounds fold in from their durable sub-reports and the open round
    // resumes where the dead owner left it.
    if cfg.steal {
        if let Some(latest) = queue.latest_surplus_round(shard) {
            let mut t = tail.lock().expect("tail lock");
            for round in 0..latest {
                if let Some(report) = queue
                    .sub_completion_round(shard, round)
                    .and_then(|b| ShardReport::decode(&b))
                {
                    t.stolen += report.units;
                    t.thief_counts = t.thief_counts.plus(&report.counts);
                    hits.fetch_add(report.result_hits as usize, Ordering::Relaxed);
                }
            }
            if let Some((s, _)) = queue.read_surplus_round(shard, latest) {
                t.round = latest;
                t.offered = true;
                soft_split.store((s as usize).min(n), Ordering::Relaxed);
                // The open round's offer ends where the previous
                // round's began (rounds bite off the tail, so round
                // k + 1 sits strictly below round k's split).
                let hi = if latest == 0 {
                    n
                } else {
                    queue
                        .read_surplus_round(shard, latest - 1)
                        .map_or(n, |(p, _)| (p as usize).min(n))
                };
                hard_end.store(hi, Ordering::Relaxed);
                if queue.steal_claimed_round(shard, latest) {
                    t.claimed = true;
                    steal_live.store(true, Ordering::Relaxed);
                }
            }
        } else if n >= cfg.surplus_after.max(2) {
            let s = n - n / 2;
            if queue.publish_surplus_round(shard, 0, s as u32, &units[s..]) {
                tail.lock().expect("tail lock").offered = true;
                soft_split.store(s, Ordering::Relaxed);
                obs::instant(SpanKind::StealOffer, shard as u64, (n - s) as u64);
            }
        }
    }

    // Suffix priority mass, for the lease's remaining-work stamp:
    // `suffix[i]` = mass of `units[i..]`.
    let mut suffix = vec![0u64; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1].saturating_add(state.manifest.unit_priority(units[i]));
    }

    let before = state.pipeline.stage_counts();
    let prefill = state.batch_prefill(shard, units);
    let slots: Vec<Mutex<Option<UnitOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    let work = || loop {
        if state.poisoned() {
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        if i >= hard_end.load(Ordering::Relaxed)
            || (steal_live.load(Ordering::Relaxed) && i >= soft_split.load(Ordering::Relaxed))
        {
            continue; // a thief owns (or owned) this range
        }
        let outcome = state.unit_outcome(units[i], &prefill, &hits);
        *slots[i].lock().expect("slot lock") = Some(outcome);
        if state.note_processed() {
            break;
        }
    };
    let work = &work;

    // Advances the open offer's lifecycle (called from the heartbeat
    // thread each beat, and from the post-work wait loop): notice a
    // thief's claim, fold its durable sub-report when it lands, and —
    // while this owner still holds enough unprocessed units — re-offer
    // the tail half of the remainder as the next round's surplus.
    // Recursive halving: idle workers keep converging on a straggler
    // shard until its remainder is too small to share.
    let poll_tail = || {
        let mut t = tail.lock().expect("tail lock");
        if !t.offered {
            return;
        }
        if !t.claimed && queue.steal_claimed_round(shard, t.round) {
            t.claimed = true;
            steal_live.store(true, Ordering::Relaxed);
        }
        if !t.claimed {
            return;
        }
        let Some(report) = queue
            .sub_completion_round(shard, t.round)
            .and_then(|b| ShardReport::decode(&b))
        else {
            return;
        };
        t.stolen += report.units;
        t.thief_counts = t.thief_counts.plus(&report.counts);
        hits.fetch_add(report.result_hits as usize, Ordering::Relaxed);
        obs::instant(SpanKind::StealFold, shard as u64, u64::from(report.units));
        // The folded range joins the resolved region; the offer slot
        // is free again.
        let resolved = soft_split.load(Ordering::Relaxed);
        hard_end.store(resolved, Ordering::Relaxed);
        steal_live.store(false, Ordering::Relaxed);
        t.claimed = false;
        t.offered = false;
        // `cursor` counts grabbed units, so everything in
        // [cursor, resolved) is untouched — re-offer its tail half.
        let c = cursor.load(Ordering::Relaxed).min(resolved);
        let remaining = resolved - c;
        if remaining >= cfg.surplus_after.max(2) {
            let s = c + (remaining - remaining / 2);
            if queue.publish_surplus_round(shard, t.round + 1, s as u32, &units[s..resolved]) {
                t.round += 1;
                t.offered = true;
                soft_split.store(s, Ordering::Relaxed);
                eprintln!(
                    "distrib: event=steal-reoffer shard={shard} round={} units={} tag={}",
                    t.round,
                    resolved - s,
                    cfg.tag
                );
                obs::instant(SpanKind::StealOffer, shard as u64, (resolved - s) as u64);
            }
        } else {
            soft_split.store(resolved, Ordering::Relaxed);
        }
    };

    let mut unclaimed_offer: Option<u32> = None;
    let end = std::thread::scope(|scope| {
        // Time-based heartbeat on its own thread: liveness must not
        // depend on unit granularity — one pressure-starved unit can
        // legitimately out-compile any sane TTL, and tying renewal to
        // unit completion would let a *live* worker's lease stall
        // mid-unit (spurious requeue, duplicate shard).
        scope.spawn(|| {
            let interval = heartbeat_interval(cfg.lease_ttl);
            let mut beat = 0u64;
            while !stop.load(Ordering::Relaxed) {
                beat += 1;
                if cfg.steal {
                    poll_tail();
                }
                let c = cursor.load(Ordering::Relaxed).min(n);
                // A live steal's mass belongs to the thief's lease, and
                // the resolved region past `hard_end` is someone else's
                // finished work — neither counts against this owner.
                let e = if steal_live.load(Ordering::Relaxed) {
                    soft_split.load(Ordering::Relaxed)
                } else {
                    hard_end.load(Ordering::Relaxed)
                };
                let mass = suffix[c.min(e)].saturating_sub(suffix[e]);
                queue.renew_lease(
                    shard,
                    &cfg.tag,
                    LeaseStamp {
                        counter: beat,
                        mass,
                    },
                );
                obs::instant(SpanKind::Heartbeat, shard as u64, mass);
                chopped_sleep(interval, &stop);
            }
        });

        let extra: Vec<_> = (1..cfg.threads.max(1)).map(|_| scope.spawn(work)).collect();
        work();
        for h in extra {
            let _ = h.join();
        }

        if state.poisoned() {
            stop.store(true, Ordering::Relaxed);
            return RunEnd::Abandoned;
        }

        // Settle the open round: fold its durable sub-report — or
        // reclaim its units when its lease counter stalls for a full
        // TTL (the thief died mid-steal). Earlier rounds were folded by
        // `poll_tail` as their reports landed; with the cursor drained
        // no new round can be offered, so this loop converges.
        if cfg.steal {
            let mut watch = LeaseWatch::new();
            loop {
                poll_tail();
                let (round, offered, claimed) = {
                    let t = tail.lock().expect("tail lock");
                    (t.round, t.offered, t.claimed)
                };
                if !offered {
                    break;
                }
                if !claimed {
                    // Nobody bit; the offer dies with the shard (the
                    // marker is retracted after the completion lands).
                    unclaimed_offer = Some(round);
                    break;
                }
                let lo = soft_split.load(Ordering::Relaxed);
                let hi = hard_end.load(Ordering::Relaxed);
                let missing = (lo..hi).any(|i| slots[i].lock().expect("slot lock").is_none());
                if !missing {
                    // This owner raced past the claim and resolved the
                    // whole range itself; the thief's late report is
                    // redundant (results are content-addressed).
                    break;
                }
                if queue.is_retired() {
                    stop.store(true, Ordering::Relaxed);
                    return RunEnd::Abandoned;
                }
                let stalled = match queue.steal_observation_round(shard, round) {
                    // Steal file gone (or unreadable sub-report raced
                    // in): reclaim immediately.
                    None => true,
                    Some(obs) => watch.observe(obs, cfg.lease_ttl),
                };
                if stalled {
                    // Reclaim the stolen range ourselves. Sequential:
                    // this is the rare thief-death path, and the
                    // heartbeat thread is still renewing our lease.
                    for i in lo..hi {
                        if state.poisoned() {
                            stop.store(true, Ordering::Relaxed);
                            return RunEnd::Abandoned;
                        }
                        let filled = slots[i].lock().expect("slot lock").is_some();
                        if !filled {
                            let outcome = state.unit_outcome(units[i], &prefill, &hits);
                            *slots[i].lock().expect("slot lock") = Some(outcome);
                            if state.note_processed() {
                                stop.store(true, Ordering::Relaxed);
                                return RunEnd::Abandoned;
                            }
                        }
                    }
                    let mut t = tail.lock().expect("tail lock");
                    t.claimed = false;
                    t.offered = false;
                    steal_live.store(false, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(cfg.poll);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let (stolen, thief_counts) = {
            let t = tail.lock().expect("tail lock");
            (t.stolen, t.thief_counts)
        };
        RunEnd::Completed {
            result_hits: hits.load(Ordering::Relaxed),
            stolen,
            thief_counts,
        }
    });

    let RunEnd::Completed {
        result_hits,
        stolen,
        thief_counts,
    } = end
    else {
        return RunEnd::Abandoned;
    };

    // Publish the owner batch (everything this worker resolved) and the
    // durable completion marker carrying fleet-foldable counters.
    let entries: Vec<(u32, UnitOutcome)> = (0..n)
        .filter_map(|i| slots_get(&slots, i).map(|o| (units[i], o)))
        .collect();
    state.publish_batch(shard, PART_OWNER, entries);
    let report = ShardReport {
        shard: shard as u32,
        units: n as u32,
        result_hits: result_hits as u32,
        stolen,
        counts: state
            .pipeline
            .stage_counts()
            .minus(&before)
            .plus(&thief_counts),
    };
    queue.complete(shard, &report.encode());
    if let Some(round) = unclaimed_offer {
        if !queue.steal_claimed_round(shard, round) {
            queue.retract_surplus_round(shard, round);
        }
    }
    RunEnd::Completed {
        result_hits,
        stolen,
        thief_counts,
    }
}

fn slots_get(slots: &[Mutex<Option<UnitOutcome>>], i: usize) -> Option<UnitOutcome> {
    *slots[i].lock().expect("slot lock")
}

/// Works a stolen sub-shard: heartbeat the steal lease, resolve the
/// stolen units, publish the thief batch and the durable sub-report the
/// owner folds into its shard completion. Returns the units processed.
fn run_stolen(
    state: &WorkerState<'_>,
    shard: usize,
    round: u32,
    stolen_units: &[u32],
) -> Option<usize> {
    let cfg = state.cfg;
    let queue = state.queue;
    let n = stolen_units.len();
    let _steal_span = obs::span(SpanKind::WorkerSteal, shard as u64, n as u64);
    let mut suffix = vec![0u64; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1].saturating_add(state.manifest.unit_priority(stolen_units[i]));
    }
    let prefill = state.batch_prefill(shard, stolen_units);
    let slots: Vec<Mutex<Option<UnitOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let hits = AtomicUsize::new(0);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let abandoned = AtomicBool::new(false);

    let work = || loop {
        if state.poisoned() || abandoned.load(Ordering::Relaxed) {
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        // The owner may have presumed us dead, reclaimed the tail
        // and completed the shard — stop wasting work if so.
        if queue.is_done(shard) {
            abandoned.store(true, Ordering::Relaxed);
            break;
        }
        let outcome = state.unit_outcome(stolen_units[i], &prefill, &hits);
        *slots[i].lock().expect("slot lock") = Some(outcome);
        if state.note_processed() {
            break;
        }
    };
    let work = &work;

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let interval = heartbeat_interval(cfg.lease_ttl);
            let mut beat = 0u64;
            while !stop.load(Ordering::Relaxed) {
                beat += 1;
                let c = cursor.load(Ordering::Relaxed).min(n);
                queue.renew_steal_round(
                    shard,
                    round,
                    &cfg.tag,
                    LeaseStamp {
                        counter: beat,
                        mass: suffix[c],
                    },
                );
                obs::instant(SpanKind::Heartbeat, shard as u64, suffix[c]);
                chopped_sleep(interval, &stop);
            }
        });
        let extra: Vec<_> = (1..cfg.threads.max(1)).map(|_| scope.spawn(work)).collect();
        work();
        for h in extra {
            let _ = h.join();
        }
        stop.store(true, Ordering::Relaxed);
    });

    if state.poisoned() || abandoned.load(Ordering::Relaxed) {
        return None;
    }
    let entries: Vec<(u32, UnitOutcome)> = (0..n)
        .filter_map(|i| slots_get(&slots, i).map(|o| (stolen_units[i], o)))
        .collect();
    state.publish_batch(shard, thief_part(round), entries);
    let report = ShardReport {
        shard: shard as u32,
        units: n as u32,
        result_hits: hits.load(Ordering::Relaxed) as u32,
        stolen: 0,
        counts: StageCounts::zero(),
    };
    queue.complete_sub_round(shard, round, &report.encode());
    Some(n)
}

/// Runs a worker until the queue is fully complete. Returns a summary
/// of the work done.
///
/// The worker never exits while *any* shard lacks a completion marker:
/// out of claimable shards it steals published surplus tails, requeues
/// stalled foreign leases (unless a coordinator reserved that job), and
/// idles — so a fleet of standalone workers (no coordinator at all)
/// still drains a queue whose members die, as long as one survives.
///
/// # Errors
///
/// [`DistribError::QueueUnreadable`] when the queue directory holds no
/// valid manifest; [`DistribError::CacheUnusable`] when the shared
/// cache directory cannot be opened for publishing results.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, DistribError> {
    // Name this worker's trace track after its tag so the merged fleet
    // timeline shows `inproc-…-0`, `pid-…` etc. instead of `thread-N`.
    obs::set_thread_label(&cfg.tag);
    let (queue, manifest) = JobQueue::open(&cfg.queue_dir)
        .ok_or_else(|| DistribError::QueueUnreadable(cfg.queue_dir.clone()))?;
    let exchange = Exchange::open(&cfg.cache_dir)
        .ok_or_else(|| DistribError::CacheUnusable(cfg.cache_dir.clone()))?;
    let pipeline = Pipeline::with_config(
        Arc::new(manifest.loops.clone()),
        StoreConfig::persistent(&cfg.cache_dir),
    );
    // Result keys reuse the pipeline's fingerprint table (present for
    // persistent stores); the fallback only runs if the disk tier
    // failed to open, in which case keys must still be derivable.
    let fingerprints: Vec<u128> = manifest
        .loops
        .iter()
        .enumerate()
        .map(|(li, l)| {
            pipeline
                .content_fingerprint(li)
                .unwrap_or_else(|| codec::ddg_fingerprint(l.ddg()))
        })
        .collect();
    let state = WorkerState {
        cfg,
        queue: &queue,
        manifest: &manifest,
        exchange: &exchange,
        pipeline: &pipeline,
        fingerprints: &fingerprints,
        processed: AtomicU64::new(0),
        poison: AtomicBool::new(false),
    };

    let mut summary = WorkerSummary {
        shards_completed: 0,
        units: 0,
        result_hits: 0,
        steals: 0,
        stolen_units: 0,
        counts: StageCounts::zero(),
    };
    let mut observer = LeaseObserver::new();
    loop {
        if state.poisoned() {
            break;
        }
        if let Some(shard) = queue.claim_next(&cfg.tag) {
            match run_owned_shard(&state, shard) {
                RunEnd::Completed { result_hits, .. } => {
                    summary.shards_completed += 1;
                    summary.units += manifest.shards[shard].len();
                    summary.result_hits += result_hits;
                }
                RunEnd::Abandoned => break,
            }
            continue;
        }
        if queue.is_retired() {
            break;
        }
        if queue.all_done() {
            // Standalone fleets have no coordinator to validate
            // completion markers: before accepting the queue as
            // drained, a self-healing worker resets any marker that
            // does not decode (a torn pre-fsync write) so it re-runs
            // instead of shipping garbage to the merge. Supervised
            // workers leave that judgement to the coordinator.
            if !cfg.requeue_foreign {
                break;
            }
            let mut reset = false;
            for shard in 0..queue.shard_count() {
                let garbage = queue
                    .completion(shard)
                    .is_some_and(|b| ShardReport::decode(&b).is_none());
                if garbage && queue.invalidate_done(shard) {
                    reset = true;
                }
            }
            if !reset {
                break;
            }
            continue;
        }
        if cfg.steal {
            if let Some((shard, round, stolen_units)) = state.find_steal() {
                if let Some(done) = run_stolen(&state, shard, round, &stolen_units) {
                    summary.steals += 1;
                    summary.stolen_units += done;
                }
                if state.poisoned() {
                    break;
                }
                continue;
            }
        }
        // Idle with nothing to claim and nothing to steal: if the
        // coordinator posted retirement tokens (the remaining mass no
        // longer justifies this many workers), grab one and exit early
        // instead of polling until the stragglers finish.
        if let Some(token) = queue.claim_retirement(&cfg.tag) {
            eprintln!("distrib: event=retire token={token} tag={}", cfg.tag);
            obs::instant(SpanKind::ScaleDown, u64::from(token), 0);
            break;
        }
        // Someone else holds the remaining shards. If their lease
        // counters stall, put their shards back up for grabs (unless a
        // coordinator reserved that job for itself).
        if cfg.requeue_foreign {
            queue.requeue_expired(&mut observer, cfg.lease_ttl);
        }
        std::thread::sleep(cfg.poll);
    }
    summary.counts = pipeline.stage_counts();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_report_round_trips() {
        let report = ShardReport {
            shard: 3,
            units: 120,
            result_hits: 7,
            stolen: 21,
            counts: StageCounts::zero().plus(&StageCounts {
                widen_runs: 40,
                widen_requests: 360,
                widen_disk_hits: 2,
                mii_runs: 80,
                mii_requests: 360,
                mii_disk_hits: 1,
                base_schedule_runs: 100,
                base_schedule_requests: 300,
                base_schedule_disk_hits: 0,
                schedule_runs: 110,
                schedule_requests: 360,
                schedule_disk_hits: 9,
                schedule_evictions: 5,
                schedule_resident_bytes: 1 << 20,
                lower_runs: 12,
                lower_requests: 48,
                lower_disk_hits: 3,
            }),
        };
        let bytes = report.encode();
        assert_eq!(ShardReport::decode(&bytes), Some(report));
        assert_eq!(ShardReport::decode(&bytes[..bytes.len() - 1]), None);
        // Version skew is a decode failure, not a misread.
        let mut skew = bytes;
        skew[0] ^= 0xff;
        assert_eq!(ShardReport::decode(&skew), None);
    }
}
