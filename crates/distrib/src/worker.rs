//! The sweep worker: claims shards, runs the staged pipeline over
//! their units, and publishes per-unit results into the shared store.
//!
//! A worker is launched with nothing but a queue directory and a cache
//! directory (`repro worker --queue … --cache-dir …`, or an in-process
//! thread). It reads the manifest, builds its own [`Pipeline`] over the
//! manifest corpus with the shared persistent store — so compiled stage
//! artifacts are exchanged with every other worker through the disk
//! tier — and loops: claim a shard, compile its units (units whose
//! result is already published are skipped: re-runs and requeued shards
//! cost lookups, not compiles), publish one [`UnitOutcome`] per unit,
//! renew the lease as it goes, and durably mark the shard complete with
//! a [`ShardReport`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use widening_pipeline::codec::{self, Reader, Writer};
use widening_pipeline::exchange::{
    decode_unit_outcome, encode_unit_outcome, unit_result_key, RESULT_KIND,
};
use widening_pipeline::{pool, Exchange, Pipeline, StageCounts, StoreConfig, UnitOutcome};

use crate::queue::JobQueue;
use crate::DistribError;

/// Version of the [`ShardReport`] encoding.
const REPORT_VERSION: u32 = 1;

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The queue directory (manifest + claim/done markers).
    pub queue_dir: PathBuf,
    /// The shared cache directory (stage artifacts + unit results).
    pub cache_dir: PathBuf,
    /// Worker threads for intra-shard fan-out.
    pub threads: usize,
    /// Lease TTL: how stale another shard's claim must be before this
    /// worker (idling, out of claimable shards) requeues it.
    pub lease_ttl: Duration,
    /// Idle poll interval while waiting for stragglers or requeues.
    pub poll: Duration,
    /// Whether an idle worker may requeue *other* workers' expired
    /// leases. On by default so a coordinator-less fleet still drains a
    /// queue whose members die; a coordinator turns it off for the
    /// workers it supervises, making itself the single (and countable)
    /// requeuer.
    pub requeue_foreign: bool,
    /// Diagnostic tag stamped into claim files.
    pub tag: String,
}

impl WorkerConfig {
    /// A worker over `queue_dir` and `cache_dir` with defaults: one
    /// thread, 30 s lease TTL, 50 ms poll, pid-based tag.
    #[must_use]
    pub fn new(queue_dir: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> Self {
        WorkerConfig {
            queue_dir: queue_dir.into(),
            cache_dir: cache_dir.into(),
            threads: 1,
            lease_ttl: Duration::from_secs(30),
            poll: Duration::from_millis(50),
            requeue_foreign: true,
            tag: format!("pid-{}", std::process::id()),
        }
    }
}

/// What one worker did over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards this worker completed.
    pub shards_completed: usize,
    /// Units processed (compiled or replayed).
    pub units: usize,
    /// Units served straight from the result tier (no compile at all).
    pub result_hits: usize,
    /// The worker pipeline's cumulative stage counters.
    pub counts: StageCounts,
}

/// One shard's completion report, published through the queue's done
/// marker so the coordinator can fold per-shard progress into the
/// existing stage-counter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Units the shard held.
    pub units: u32,
    /// Units served from the result tier without compiling.
    pub result_hits: u32,
    /// Stage-counter delta attributable to this shard.
    pub counts: StageCounts,
}

impl ShardReport {
    /// Encodes the report as a self-versioned record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(REPORT_VERSION);
        w.u32(self.shard);
        w.u32(self.units);
        w.u32(self.result_hits);
        let c = &self.counts;
        for v in [
            c.widen_runs,
            c.widen_requests,
            c.widen_disk_hits,
            c.mii_runs,
            c.mii_requests,
            c.mii_disk_hits,
            c.base_schedule_runs,
            c.base_schedule_requests,
            c.base_schedule_disk_hits,
            c.schedule_runs,
            c.schedule_requests,
            c.schedule_disk_hits,
            c.schedule_evictions,
            c.schedule_resident_bytes,
        ] {
            w.u64(v);
        }
        w.into_bytes()
    }

    /// Decodes a report; `None` on version skew or truncation.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.u32()? != REPORT_VERSION {
            return None;
        }
        let (shard, units, result_hits) = (r.u32()?, r.u32()?, r.u32()?);
        let counts = StageCounts {
            widen_runs: r.u64()?,
            widen_requests: r.u64()?,
            widen_disk_hits: r.u64()?,
            mii_runs: r.u64()?,
            mii_requests: r.u64()?,
            mii_disk_hits: r.u64()?,
            base_schedule_runs: r.u64()?,
            base_schedule_requests: r.u64()?,
            base_schedule_disk_hits: r.u64()?,
            schedule_runs: r.u64()?,
            schedule_requests: r.u64()?,
            schedule_disk_hits: r.u64()?,
            schedule_evictions: r.u64()?,
            schedule_resident_bytes: r.u64()?,
        };
        r.exhausted().then_some(ShardReport {
            shard,
            units,
            result_hits,
            counts,
        })
    }
}

/// Runs a worker until the queue is fully complete. Returns a summary
/// of the work done.
///
/// The worker never exits while *any* shard lacks a completion marker:
/// out of claimable shards it idles, requeuing expired foreign leases —
/// so a fleet of standalone workers (no coordinator at all) still
/// drains a queue whose members die, as long as one survives.
///
/// # Errors
///
/// [`DistribError::QueueUnreadable`] when the queue directory holds no
/// valid manifest; [`DistribError::CacheUnusable`] when the shared
/// cache directory cannot be opened for publishing results.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, DistribError> {
    let (queue, manifest) = JobQueue::open(&cfg.queue_dir)
        .ok_or_else(|| DistribError::QueueUnreadable(cfg.queue_dir.clone()))?;
    let exchange = Exchange::open(&cfg.cache_dir)
        .ok_or_else(|| DistribError::CacheUnusable(cfg.cache_dir.clone()))?;
    let pipeline = Pipeline::with_config(
        Arc::new(manifest.loops.clone()),
        StoreConfig::persistent(&cfg.cache_dir),
    );
    // Result keys reuse the pipeline's fingerprint table (present for
    // persistent stores); the fallback only runs if the disk tier
    // failed to open, in which case keys must still be derivable.
    let fingerprints: Vec<u128> = manifest
        .loops
        .iter()
        .enumerate()
        .map(|(li, l)| {
            pipeline
                .content_fingerprint(li)
                .unwrap_or_else(|| codec::ddg_fingerprint(l.ddg()))
        })
        .collect();

    let mut summary = WorkerSummary {
        shards_completed: 0,
        units: 0,
        result_hits: 0,
        counts: StageCounts::zero(),
    };
    loop {
        let Some(shard) = queue.claim_next(&cfg.tag) else {
            if queue.all_done() {
                break;
            }
            // A coordinator retires the queue directory when its sweep
            // ends; a standalone worker mid-poll at that moment must
            // exit instead of spinning on the vanished queue forever.
            if queue.is_retired() {
                break;
            }
            // Someone else holds the remaining shards. If their leases
            // go stale, put their shards back up for grabs (unless a
            // coordinator reserved that job for itself).
            if cfg.requeue_foreign {
                queue.requeue_expired(cfg.lease_ttl);
            }
            std::thread::sleep(cfg.poll);
            continue;
        };
        let before = pipeline.stage_counts();
        let units = &manifest.shards[shard];
        let hits = AtomicUsize::new(0);
        // Time-based heartbeat on its own thread: liveness must not
        // depend on unit granularity — one pressure-starved unit can
        // legitimately out-compile any sane TTL, and tying renewal to
        // unit completion would let a *live* worker's lease expire
        // mid-unit (spurious requeue, duplicate shard). A quarter of
        // the TTL leaves ample margin; the sleep is chopped fine so the
        // heartbeat exits promptly when the shard completes.
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let interval =
                    (cfg.lease_ttl / 4).clamp(Duration::from_millis(5), Duration::from_secs(5));
                while !done.load(Ordering::Relaxed) {
                    queue.renew_lease(shard, &cfg.tag);
                    let mut slept = Duration::ZERO;
                    while slept < interval && !done.load(Ordering::Relaxed) {
                        let step = Duration::from_millis(10).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                }
            });
            pool::par_map(units.len(), cfg.threads, |i| {
                let unit = units[i];
                let li = manifest.loop_of(unit);
                let spec = &manifest.specs[manifest.spec_of(unit)];
                let key = unit_result_key(fingerprints[li], spec);
                let published = exchange
                    .get(RESULT_KIND, &key)
                    .and_then(|bytes| decode_unit_outcome(&bytes));
                if published.is_some() {
                    hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    let outcome = UnitOutcome::of(&pipeline.compile(li, spec));
                    exchange.put(RESULT_KIND, &key, &encode_unit_outcome(&outcome));
                }
            });
            done.store(true, Ordering::Relaxed);
        });
        let result_hits = hits.into_inner();
        let report = ShardReport {
            shard: shard as u32,
            units: units.len() as u32,
            result_hits: result_hits as u32,
            counts: pipeline.stage_counts().minus(&before),
        };
        queue.complete(shard, &report.encode());
        summary.shards_completed += 1;
        summary.units += units.len();
        summary.result_hits += result_hits;
    }
    summary.counts = pipeline.stage_counts();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_report_round_trips() {
        let report = ShardReport {
            shard: 3,
            units: 120,
            result_hits: 7,
            counts: StageCounts::zero().plus(&StageCounts {
                widen_runs: 40,
                widen_requests: 360,
                widen_disk_hits: 2,
                mii_runs: 80,
                mii_requests: 360,
                mii_disk_hits: 1,
                base_schedule_runs: 100,
                base_schedule_requests: 300,
                base_schedule_disk_hits: 0,
                schedule_runs: 110,
                schedule_requests: 360,
                schedule_disk_hits: 9,
                schedule_evictions: 5,
                schedule_resident_bytes: 1 << 20,
            }),
        };
        let bytes = report.encode();
        assert_eq!(ShardReport::decode(&bytes), Some(report));
        assert_eq!(ShardReport::decode(&bytes[..bytes.len() - 1]), None);
    }
}
