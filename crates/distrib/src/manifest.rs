//! The sweep manifest: the frozen inputs of one distributed parameter
//! study, plus its priority-ordered sharding of the unit grid.

use widening_cost::{sweep_mass, sweep_priority};
use widening_ir::{Loop, LoopBuilder};
use widening_pipeline::codec::{self, Reader, Writer};
use widening_pipeline::exchange::{decode_point_spec, encode_point_spec, unit_result_key};
use widening_pipeline::PointSpec;

/// Bump on any change to the manifest encoding: stale queues then read
/// as unreadable instead of mis-decoding.
const MANIFEST_VERSION: u32 = 1;
const MAGIC: [u8; 4] = *b"WSWP";

/// Everything a worker needs to run its share of a sweep: the corpus,
/// the design points, and which `(loop × design point)` units each
/// shard owns. Workers are launched with nothing but a queue directory
/// — the manifest makes them self-contained, so a worker on another
/// host needs no corpus flags, only the shared filesystem.
///
/// A **unit** is `spec_index * loops.len() + loop_index`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepManifest {
    /// The corpus, in evaluation order (the merge folds results in this
    /// order, which is what makes distributed aggregates bitwise-equal
    /// to a single-process sweep).
    pub loops: Vec<Loop>,
    /// The design points, in caller order.
    pub specs: Vec<PointSpec>,
    /// Unit ids per shard. Every unit appears in exactly one shard.
    pub shards: Vec<Vec<u32>>,
}

impl SweepManifest {
    /// Builds a manifest partitioning the `loops × specs` grid into
    /// `shard_count` shards, two-axis:
    ///
    /// * **loop-major sharding** — a loop's entire design-point column
    ///   lands in one shard (loops dealt round-robin), so its widened
    ///   graphs, MII bounds and base schedules are computed by exactly
    ///   one worker instead of being raced by all of them through the
    ///   disk tier;
    /// * **priority-ordered units** — within each shard, units run
    ///   heaviest design point first ([`sweep_priority`]: pressure- and
    ///   width-heavy points lead, peak points trail), the
    ///   longest-processing-time ordering that cuts tail latency. Ties
    ///   keep corpus order.
    #[must_use]
    pub fn partition(loops: Vec<Loop>, specs: Vec<PointSpec>, shard_count: usize) -> Self {
        Self::partition_with(loops, specs, shard_count, sweep_priority)
    }

    /// [`SweepManifest::partition`] with a caller-supplied priority
    /// function — how a measured [`widening_cost::CalibratedModel`]
    /// replaces the analytic surrogate for LPT ordering. The sharding
    /// *shape* (loop-major round-robin) is priority-independent; only
    /// the within-shard unit order changes, so aggregates remain
    /// bitwise-equal under any priority.
    #[must_use]
    pub fn partition_with(
        loops: Vec<Loop>,
        specs: Vec<PointSpec>,
        shard_count: usize,
        priority: impl Fn(u32, u32, Option<u32>) -> u64,
    ) -> Self {
        let n = loops.len() as u32;
        // Design points, heaviest first (stable: ties keep input order).
        let mut spec_order: Vec<u32> = (0..specs.len() as u32).collect();
        spec_order.sort_by_key(|&si| {
            let spec = &specs[si as usize];
            std::cmp::Reverse(priority(spec.replication, spec.width, spec.registers))
        });
        let shard_count = shard_count.max(1).min(loops.len().max(1));
        let mut shards = vec![Vec::new(); shard_count];
        for (s, shard) in shards.iter_mut().enumerate() {
            for &si in &spec_order {
                for li in (s as u32..n).step_by(shard_count) {
                    shard.push(si * n + li);
                }
            }
        }
        SweepManifest {
            loops,
            specs,
            shards,
        }
    }

    /// Total units in the grid.
    #[must_use]
    pub fn unit_count(&self) -> usize {
        self.loops.len() * self.specs.len()
    }

    /// The corpus index of a unit.
    #[must_use]
    pub fn loop_of(&self, unit: u32) -> usize {
        unit as usize % self.loops.len()
    }

    /// The design-point index of a unit.
    #[must_use]
    pub fn spec_of(&self, unit: u32) -> usize {
        unit as usize / self.loops.len()
    }

    /// The compile-cost priority of one unit
    /// ([`widening_cost::sweep_priority`] of its design point).
    #[must_use]
    pub fn unit_priority(&self, unit: u32) -> u64 {
        let spec = &self.specs[self.spec_of(unit)];
        sweep_priority(spec.replication, spec.width, spec.registers)
    }

    /// The total priority mass of an arbitrary unit list (a shard, a
    /// stolen tail, a suffix of either) — the remaining-work estimate
    /// lease stamps and the autoscaler trade in.
    #[must_use]
    pub fn units_mass(&self, units: &[u32]) -> u64 {
        sweep_mass(units.iter().map(|&u| {
            let spec = &self.specs[self.spec_of(u)];
            (spec.replication, spec.width, spec.registers)
        }))
    }

    /// The static priority mass of one shard's full unit list.
    #[must_use]
    pub fn shard_mass(&self, shard: usize) -> u64 {
        self.units_mass(&self.shards[shard])
    }

    /// [`SweepManifest::units_mass`] under a caller-supplied priority
    /// function (e.g. a measured [`widening_cost::CalibratedModel`]).
    /// Saturating, like the analytic mass.
    #[must_use]
    pub fn units_mass_with(
        &self,
        units: &[u32],
        priority: impl Fn(u32, u32, Option<u32>) -> u64,
    ) -> u64 {
        units
            .iter()
            .map(|&u| {
                let spec = &self.specs[self.spec_of(u)];
                priority(spec.replication, spec.width, spec.registers)
            })
            .fold(0u64, u64::saturating_add)
    }

    /// [`SweepManifest::shard_mass`] under a caller-supplied priority
    /// function.
    #[must_use]
    pub fn shard_mass_with(
        &self,
        shard: usize,
        priority: impl Fn(u32, u32, Option<u32>) -> u64,
    ) -> u64 {
        self.units_mass_with(&self.shards[shard], priority)
    }

    /// The content-addressed result key of every unit in a shard's
    /// list, in list order — the material both batch publication and
    /// the batch-consuming merge derive their record keys from.
    /// `fingerprints` is the per-loop graph fingerprint table, parallel
    /// to [`SweepManifest::loops`].
    #[must_use]
    pub fn shard_unit_keys(&self, shard: usize, fingerprints: &[u128]) -> Vec<Vec<u8>> {
        self.shards[shard]
            .iter()
            .map(|&u| unit_result_key(fingerprints[self.loop_of(u)], &self.specs[self.spec_of(u)]))
            .collect()
    }

    /// Content fingerprint of the whole manifest (used to name queue
    /// directories so unrelated sweeps never collide).
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        codec::fnv128(&self.encode())
    }

    /// Encodes the manifest as a self-versioned record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u32(MANIFEST_VERSION);
        w.len(self.loops.len());
        for l in &self.loops {
            let name = l.name().as_bytes();
            w.len(name.len());
            w.bytes(name);
            w.u64(l.trip_count());
            w.u64(l.weight().to_bits());
            codec::encode_ddg(&mut w, l.ddg());
        }
        w.len(self.specs.len());
        for spec in &self.specs {
            encode_point_spec(&mut w, spec);
        }
        w.len(self.shards.len());
        for shard in &self.shards {
            w.len(shard.len());
            for &u in shard {
                w.u32(u);
            }
        }
        w.into_bytes()
    }

    /// Decodes and validates a manifest: every graph re-runs full
    /// validation, loop statistics must be sane (decoding can never
    /// panic a worker), and the sharding must cover every unit exactly
    /// once. `None` on any mismatch.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC || r.u32()? != MANIFEST_VERSION {
            return None;
        }
        let nloops = r.len()?;
        let mut loops = Vec::with_capacity(nloops);
        for _ in 0..nloops {
            let name_len = r.len()?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?;
            let trip = r.u64()?;
            let weight = f64::from_bits(r.u64()?);
            if trip == 0 || !weight.is_finite() || weight <= 0.0 {
                return None;
            }
            let ddg = codec::decode_ddg(&mut r)?;
            loops.push(
                LoopBuilder::new(name, ddg)
                    .trip_count(trip)
                    .weight(weight)
                    .build(),
            );
        }
        let nspecs = r.len()?;
        let mut specs = Vec::with_capacity(nspecs);
        for _ in 0..nspecs {
            specs.push(decode_point_spec(&mut r)?);
        }
        let nshards = r.len()?;
        let total = nloops.checked_mul(nspecs)?;
        let mut seen = vec![false; total];
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let len = r.len()?;
            let mut shard = Vec::with_capacity(len);
            for _ in 0..len {
                let u = r.u32()?;
                let slot = seen.get_mut(u as usize)?;
                if std::mem::replace(slot, true) {
                    return None; // unit in two shards
                }
                shard.push(u);
            }
            shards.push(shard);
        }
        if !r.exhausted() || seen.iter().any(|covered| !covered) {
            return None;
        }
        Some(SweepManifest {
            loops,
            specs,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_machine::CycleModel;
    use widening_pipeline::CompileOptions;
    use widening_workload::kernels;

    fn specs() -> Vec<PointSpec> {
        ["1w1(256:1)", "8w1(32:1)", "4w2(64:1)"]
            .iter()
            .map(|s| {
                PointSpec::scheduled(
                    &s.parse().unwrap(),
                    CycleModel::Cycles4,
                    CompileOptions::default(),
                )
            })
            .collect()
    }

    #[test]
    fn round_trips_and_validates() {
        let m = SweepManifest::partition(kernels::all(), specs(), 3);
        let bytes = m.encode();
        let back = SweepManifest::decode(&bytes).expect("decodes");
        assert_eq!(back, m);
        // Any single-byte corruption decodes to None or an equal value,
        // never panics; truncation always fails.
        assert!(SweepManifest::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut skew = bytes.clone();
        skew[5] ^= 0xff; // version
        assert!(SweepManifest::decode(&skew).is_none());
    }

    #[test]
    fn partition_covers_every_unit_exactly_once() {
        let m = SweepManifest::partition(kernels::all(), specs(), 5);
        let mut seen = vec![0u32; m.unit_count()];
        for shard in &m.shards {
            for &u in shard {
                seen[u as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // Loop-major balance: shard sizes differ by at most one loop's
        // worth of units.
        let (min, max) = m.shards.iter().fold((usize::MAX, 0), |(lo, hi), s| {
            (lo.min(s.len()), hi.max(s.len()))
        });
        assert!(max - min <= m.specs.len());
    }

    #[test]
    fn sharding_is_loop_major() {
        // A loop's whole design-point column must stay in one shard, so
        // exactly one worker ever derives its widen/MII/base stages.
        let m = SweepManifest::partition(kernels::all(), specs(), 5);
        for (s, shard) in m.shards.iter().enumerate() {
            for &u in shard {
                let li = m.loop_of(u);
                assert_eq!(li % m.shards.len(), s, "loop {li} leaked across shards");
            }
        }
    }

    #[test]
    fn heavy_units_lead_every_shard() {
        // 8w1(32:1) outranks 4w2(64:1) outranks 1w1(256:1): each
        // shard's unit list must be priority-sorted, heaviest first.
        let m = SweepManifest::partition(kernels::all(), specs(), 4);
        for shard in &m.shards {
            let prios: Vec<u64> = shard
                .iter()
                .map(|&u| {
                    let s = &m.specs[m.spec_of(u)];
                    widening_cost::sweep_priority(s.replication, s.width, s.registers)
                })
                .collect();
            assert!(prios.windows(2).all(|w| w[0] >= w[1]), "{prios:?}");
        }
        // And the overall heaviest spec is the pressure-starved 8w1(32).
        let first = m.shards[0][0];
        assert_eq!(m.spec_of(first), 1);
    }

    #[test]
    fn partition_with_reorders_units_but_not_membership() {
        let default = SweepManifest::partition(kernels::all(), specs(), 3);
        // An inverted priority flips each shard's spec order...
        let inverted = SweepManifest::partition_with(kernels::all(), specs(), 3, |x, y, z| {
            u64::MAX - widening_cost::sweep_priority(x, y, z)
        });
        for (d, i) in default.shards.iter().zip(&inverted.shards) {
            let mut ds = d.clone();
            let mut is = i.clone();
            ds.sort_unstable();
            is.sort_unstable();
            // ...while every shard keeps exactly the same unit set.
            assert_eq!(ds, is);
            assert_ne!(d.first(), i.first(), "order actually changed");
        }
        // A constant priority keeps submission (spec) order — ties are
        // stable.
        let flat = SweepManifest::partition_with(kernels::all(), specs(), 3, |_, _, _| 7);
        assert_eq!(flat.spec_of(flat.shards[0][0]), 0);
    }
}
