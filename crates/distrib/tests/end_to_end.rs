//! End-to-end coordinator/worker runs over a shared cache directory
//! (in-process workers: own pipelines and memory tiers, shared disk).

use std::path::PathBuf;
use std::time::Duration;

use widening_distrib::{
    run_on_queue, run_sweep, CoordinatorConfig, JobQueue, Launcher, SweepManifest,
};
use widening_machine::CycleModel;
use widening_pipeline::codec::ddg_fingerprint;
use widening_pipeline::exchange::{
    batch_result_key, decode_unit_batch, decode_unit_outcome, unit_result_key, BATCH_KIND,
    RESULT_KIND,
};
use widening_pipeline::{CompileOptions, Exchange, PointSpec, UnitOutcome};
use widening_workload::corpus::{generate, CorpusSpec};

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "widening-distrib-e2e-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn specs() -> Vec<PointSpec> {
    ["1w1(64:1)", "2w2(64:1)", "4w2(128:1)"]
        .iter()
        .map(|s| {
            PointSpec::scheduled(
                &s.parse().unwrap(),
                CycleModel::Cycles4,
                CompileOptions::default(),
            )
        })
        .collect()
}

/// Every unit's result must be recoverable from the exchange after a
/// run — from the batch tier (what workers publish by default) or the
/// per-unit fallback tier, exactly the two tiers the merge consults.
fn assert_all_results_published(
    cache: &std::path::Path,
    manifest: &SweepManifest,
) -> Vec<UnitOutcome> {
    let ex = Exchange::open(cache).expect("cache opens");
    let fingerprints: Vec<u128> = manifest
        .loops
        .iter()
        .map(|l| ddg_fingerprint(l.ddg()))
        .collect();
    let mut batched = std::collections::HashMap::new();
    for shard in 0..manifest.shards.len() {
        let keys = manifest.shard_unit_keys(shard, &fingerprints);
        for part in [0u8, 1u8] {
            if let Some(bytes) = ex.get(BATCH_KIND, &batch_result_key(&keys, part)) {
                batched.extend(decode_unit_batch(&bytes).expect("batch decodes"));
            }
        }
    }
    let n = manifest.loops.len() as u32;
    let mut outcomes = Vec::new();
    for (si, spec) in manifest.specs.iter().enumerate() {
        for (li, l) in manifest.loops.iter().enumerate() {
            let unit = si as u32 * n + li as u32;
            let outcome = batched.get(&unit).copied().or_else(|| {
                let key = unit_result_key(fingerprints[li], spec);
                ex.get(RESULT_KIND, &key)
                    .and_then(|bytes| decode_unit_outcome(&bytes))
            });
            outcomes.push(
                outcome.unwrap_or_else(|| panic!("missing result for {} at spec {si}", l.name())),
            );
        }
    }
    outcomes
}

#[test]
fn fleet_completes_and_publishes_every_unit() {
    let cache = temp_dir("fleet");
    let loops = generate(&CorpusSpec::small(14, 3));
    let manifest = SweepManifest::partition(loops, specs(), 6);
    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.shards_per_worker = 3;
    let run = run_sweep(&manifest, &cfg, &Launcher::InProcess).expect("sweep completes");
    assert_eq!(run.units as usize, manifest.unit_count());
    assert_eq!(run.shard_reports.iter().flatten().count(), 6);
    assert_eq!(run.respawns, 0);
    // The queue is ephemeral; the results are not.
    assert!(!run.queue_dir.exists());
    let outcomes = assert_all_results_published(&cache, &manifest);
    assert!(outcomes.iter().all(|o| matches!(o, UnitOutcome::Ok { .. })));
    // Workers actually compiled (this was a cold store).
    assert!(run.worker_counts.schedule_runs > 0);
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn second_fleet_replays_results_without_compiling() {
    let cache = temp_dir("warm");
    let loops = generate(&CorpusSpec::small(10, 5));
    let manifest = SweepManifest::partition(loops, specs(), 4);
    let cfg = CoordinatorConfig::new(&cache, 2);
    let cold = run_sweep(&manifest, &cfg, &Launcher::InProcess).expect("cold sweep");
    assert_eq!(cold.result_hits, 0);
    let warm = run_sweep(&manifest, &cfg, &Launcher::InProcess).expect("warm sweep");
    assert_eq!(warm.result_hits, warm.units, "every unit replayed");
    assert_eq!(warm.worker_counts.live_runs(), 0, "no stage executed");
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn killed_workers_shard_is_requeued_and_finished_by_the_fleet() {
    let cache = temp_dir("requeue");
    let loops = generate(&CorpusSpec::small(12, 7));
    let manifest = SweepManifest::partition(loops, specs(), 4);

    // A doomed worker claims a shard and dies without renewing its
    // lease (the moral equivalent of SIGKILL mid-shard).
    let queue_dir = cache.join("queue").join("faulty");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    let doomed = queue.claim_next("doomed-worker").expect("claims");

    let mut cfg = CoordinatorConfig::new(&cache, 2);
    cfg.lease_ttl = Duration::from_millis(100);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("fleet survives");
    assert!(run.requeues >= 1, "expired lease must be requeued");
    assert!(queue.is_done(doomed), "the abandoned shard was finished");
    assert!(queue.all_done());
    assert_all_results_published(&cache, &manifest);
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn ghost_holding_every_shard_is_fully_requeued() {
    // A ghost claims ALL shards and dies. The lone live worker can
    // claim nothing until the coordinator (the sole requeuer for its
    // fleet) expires both leases — the coordinator's requeue counter is
    // therefore exactly 2.
    let cache = temp_dir("ghost");
    let loops = generate(&CorpusSpec::small(6, 11));
    let manifest = SweepManifest::partition(loops, specs(), 2);
    let queue_dir = cache.join("queue").join("ghosted");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    assert_eq!(queue.claim_next("ghost"), Some(0));
    assert_eq!(queue.claim_next("ghost"), Some(1));

    let mut cfg = CoordinatorConfig::new(&cache, 1);
    cfg.lease_ttl = Duration::from_millis(80);
    let run = run_on_queue(&queue, &cfg, &Launcher::InProcess).expect("completes");
    assert_eq!(run.requeues, 2);
    assert!(queue.all_done());
    assert_all_results_published(&cache, &manifest);
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn idle_worker_exits_when_the_queue_is_retired() {
    // A standalone worker idling on shards held by someone else must
    // exit — not spin forever — when the coordinator retires (deletes)
    // the queue directory.
    let cache = temp_dir("retire");
    let loops = generate(&CorpusSpec::small(4, 2));
    let manifest = SweepManifest::partition(loops, specs(), 1);
    let queue_dir = cache.join("queue").join("retiring");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");
    // A ghost holds the only shard, so the worker can never claim.
    assert_eq!(queue.claim_next("ghost"), Some(0));

    let mut cfg = widening_distrib::WorkerConfig::new(&queue_dir, &cache);
    cfg.poll = Duration::from_millis(10);
    cfg.requeue_foreign = false;
    let handle = std::thread::spawn(move || widening_distrib::run_worker(&cfg));
    std::thread::sleep(Duration::from_millis(60));
    assert!(!handle.is_finished(), "worker should be idling");
    std::fs::remove_dir_all(&queue_dir).expect("retire the queue");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !handle.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "worker kept polling a retired queue"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let summary = handle.join().unwrap().expect("clean exit");
    assert_eq!(summary.shards_completed, 0);
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn fleet_that_keeps_dying_exhausts_the_respawn_budget() {
    // Process workers that exit immediately without doing any work: the
    // coordinator respawns up to its budget, then reports exhaustion
    // with every shard still outstanding.
    let cache = temp_dir("exhaust");
    let loops = generate(&CorpusSpec::small(4, 13));
    let manifest = SweepManifest::partition(loops, specs(), 2);
    let queue_dir = cache.join("queue").join("dying");
    let queue = JobQueue::create(&queue_dir, &manifest).expect("queue");

    let mut cfg = CoordinatorConfig::new(&cache, 1);
    cfg.max_respawns = 3;
    let useless = |_ctx: &widening_distrib::SpawnContext| {
        let mut cmd = std::process::Command::new("true");
        cmd.stdout(std::process::Stdio::null());
        cmd
    };
    let err = run_on_queue(&queue, &cfg, &Launcher::Spawn(&useless))
        .expect_err("must give up eventually");
    match err {
        widening_distrib::DistribError::WorkersExhausted { remaining } => {
            assert_eq!(remaining, 2);
        }
        other => panic!("unexpected error {other}"),
    }
    let _ = std::fs::remove_dir_all(cache);
}
