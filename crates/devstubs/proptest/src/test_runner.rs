//! Deterministic runner state: configuration and the test RNG.

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A property failure raised from a test body (`Err(TestCaseError::..)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// A rejected case (treated as a failure by the stub: there is no
    /// retry machinery).
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary value.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a), so each
    /// property gets a distinct but reproducible stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
