//! The `Strategy` trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking; a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Maps and filters: retries generation until `f` returns `Some`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.base.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    items: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(items: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = items.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { items, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.items {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked at construction")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any` — the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
