//! A small, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `proptest` cannot be vendored. This stand-in implements
//! exactly the surface the workspace's property tests use — strategies
//! over ranges, tuples, collections and mapped/filtered combinators, the
//! `proptest!` / `prop_oneof!` / `prop_assert*` macros and a
//! deterministic runner — with the same semantics minus shrinking:
//! a failing case panics with the generated input's debug formatting
//! instead of a minimised counterexample.
//!
//! Determinism: every test function derives its RNG seed from its module
//! path and name, so failures reproduce across runs and machines.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for collection strategies: a fixed length or a
    /// half-open/inclusive range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` re-exports used by the workspace tests.
pub mod prelude {
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
}

/// `proptest!` — runs each contained test function over `cases`
/// generated inputs (default 256, or the `#![proptest_config(..)]`
/// override). No shrinking: a failure panics with the offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // Bodies may `return Err(TestCaseError::..)` like real
                    // proptest; plain bodies fall through to `Ok`.
                    let __result = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("property {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `prop_oneof!` — picks one of several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// `prop_assert!` — asserts inside a property; panics on failure (the
/// stub has no shrinking phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!` — equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!` — inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
