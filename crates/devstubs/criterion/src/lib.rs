//! A small, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this stand-in
//! implements the surface the workspace benches use: `Criterion`,
//! benchmark groups, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple best-of-samples
//! wall-clock measurement printed to stdout — enough to track relative
//! regressions locally, with the same bench source compiling unchanged
//! against real criterion when a registry is available.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Timed samples per benchmark (each sample runs the closure until
    /// ~1ms has elapsed, then normalises).
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings { sample_size: 10 }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.settings, f);
        self
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.settings, f);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    /// Best observed nanoseconds per iteration, filled by `iter`.
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, keeping the best sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1ms?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().as_nanos().max(1);
        let per_sample = ((1_000_000 / once) as usize).clamp(1, 10_000);

        let mut best = f64::INFINITY;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) {
    let mut b = Bencher {
        settings,
        best_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.best_ns_per_iter.is_nan() {
        println!("bench {id:<40} (no measurement)");
    } else {
        println!("bench {id:<40} {:>14.1} ns/iter", b.best_ns_per_iter);
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
