//! Workload for the *Widening Resources* (MICRO 1998) reproduction.
//!
//! The paper evaluates 1180 software-pipelined inner loops from the
//! Perfect Club (extracted with the Ictíneo tool; 78% of the benchmark
//! suite's execution time). Those loops are not redistributable, so this
//! crate provides:
//!
//! * [`corpus`] — a deterministic synthetic surrogate with the same
//!   *aggregate* characteristics (operation mix, recurrences, strides,
//!   trip counts), calibrated against the paper's Figure 2 curves;
//! * [`kernels`] — a dozen classic numerical inner loops (DAXPY, dot
//!   product, stencils, recurrences, …) with known properties, used by
//!   tests and examples.
//!
//! # Example
//!
//! ```
//! use widening_workload::{corpus, kernels};
//!
//! let loops = corpus::generate(&corpus::CorpusSpec::small(25, 42));
//! assert_eq!(loops.len(), 25);
//!
//! let daxpy = kernels::daxpy();
//! assert_eq!(daxpy.ddg().num_nodes(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod kernels;
mod rng;

pub use corpus::{generate, perfect_club_surrogate, CorpusSpec, PAPER_LOOP_COUNT};
pub use rng::Rng;
