//! Classic numerical inner loops as concrete dependence graphs.
//!
//! These serve three purposes: executable documentation (each kernel is
//! the DDG a compiler front end would emit), anchors for tests (their
//! MII/compactability values are known by inspection), and building
//! blocks for the examples.

use widening_ir::{DdgBuilder, Loop, LoopBuilder, OpKind};

/// `y[i] = a*x[i] + y[i]` — the BLAS-1 workhorse; fully compactable.
#[must_use]
pub fn daxpy() -> Loop {
    let mut b = DdgBuilder::new();
    let x = b.load(1);
    let y = b.load(1);
    let m = b.op(OpKind::FMul);
    let a = b.op(OpKind::FAdd);
    let s = b.store(1);
    b.flow(x, m);
    b.flow(m, a);
    b.flow(y, a);
    b.flow(a, s);
    LoopBuilder::new("daxpy", b.build().expect("valid"))
        .trip_count(512)
        .build()
}

/// `s += x[i] * y[i]` — dot product: a multiply stream feeding a
/// distance-1 sum recurrence.
#[must_use]
pub fn dot_product() -> Loop {
    let mut b = DdgBuilder::new();
    let x = b.load(1);
    let y = b.load(1);
    let m = b.op(OpKind::FMul);
    let acc = b.op(OpKind::FAdd);
    b.flow(x, m);
    b.flow(y, m);
    b.flow(m, acc);
    b.carried_flow(acc, acc, 1);
    LoopBuilder::new("dot_product", b.build().expect("valid"))
        .trip_count(1024)
        .build()
}

/// `y[i] = a*x[i] + b*z[i] + c` — STREAM-triad-like, fully compactable.
#[must_use]
pub fn triad() -> Loop {
    let mut b = DdgBuilder::new();
    let x = b.load(1);
    let z = b.load(1);
    let m1 = b.op(OpKind::FMul);
    let m2 = b.op(OpKind::FMul);
    let a1 = b.op(OpKind::FAdd);
    let a2 = b.op(OpKind::FAdd);
    let s = b.store(1);
    b.flow(x, m1);
    b.flow(z, m2);
    b.flow(m1, a1);
    b.flow(m2, a1);
    b.flow(a1, a2);
    b.flow(a2, s);
    LoopBuilder::new("triad", b.build().expect("valid"))
        .trip_count(512)
        .build()
}

/// `y[i] = (x[i-1] + x[i] + x[i+1]) / 3` — 3-point stencil: three
/// shifted unit-stride loads (modeled as independent streams), adds and
/// a multiply by the reciprocal.
#[must_use]
pub fn stencil3() -> Loop {
    let mut b = DdgBuilder::new();
    let xm = b.load(1);
    let x0 = b.load(1);
    let xp = b.load(1);
    let a1 = b.op(OpKind::FAdd);
    let a2 = b.op(OpKind::FAdd);
    let m = b.op(OpKind::FMul);
    let s = b.store(1);
    b.flow(xm, a1);
    b.flow(x0, a1);
    b.flow(a1, a2);
    b.flow(xp, a2);
    b.flow(a2, m);
    b.flow(m, s);
    LoopBuilder::new("stencil3", b.build().expect("valid"))
        .trip_count(400)
        .build()
}

/// Inner loop of column-major matrix–vector product:
/// `y[i] += A[i][j] * x[j]` walking a column — the matrix access has a
/// row-length stride and cannot ride a wide bus.
#[must_use]
pub fn matvec_column(row_stride: i64) -> Loop {
    let mut b = DdgBuilder::new();
    let aij = b.load(row_stride);
    let xj = b.load(1);
    let m = b.op(OpKind::FMul);
    let acc = b.op(OpKind::FAdd);
    b.flow(aij, m);
    b.flow(xj, m);
    b.flow(m, acc);
    b.carried_flow(acc, acc, 1);
    LoopBuilder::new("matvec_column", b.build().expect("valid"))
        .trip_count(256)
        .build()
}

/// `x[i] = a[i] / b[i]` — a divide stream; unpipelined units dominate.
#[must_use]
pub fn vector_divide() -> Loop {
    let mut b = DdgBuilder::new();
    let a = b.load(1);
    let d = b.load(1);
    let q = b.op(OpKind::FDiv);
    let s = b.store(1);
    b.flow(a, q);
    b.flow(d, q);
    b.flow(q, s);
    LoopBuilder::new("vector_divide", b.build().expect("valid"))
        .trip_count(128)
        .build()
}

/// `n[i] = sqrt(x[i]² + y[i]²)` — 2-D vector norm with a square root.
#[must_use]
pub fn norm2() -> Loop {
    let mut b = DdgBuilder::new();
    let x = b.load(1);
    let y = b.load(1);
    let mx = b.op(OpKind::FMul);
    let my = b.op(OpKind::FMul);
    let a = b.op(OpKind::FAdd);
    let r = b.op(OpKind::FSqrt);
    let s = b.store(1);
    b.flow(x, mx);
    b.flow(x, mx);
    b.flow(y, my);
    b.flow(mx, a);
    b.flow(my, a);
    b.flow(a, r);
    b.flow(r, s);
    LoopBuilder::new("norm2", b.build().expect("valid"))
        .trip_count(200)
        .build()
}

/// `x[i] = a*x[i-1] + b` — first-order linear recurrence: the
/// archetypal recurrence-bound loop; no amount of hardware helps.
#[must_use]
pub fn linear_recurrence() -> Loop {
    let mut b = DdgBuilder::new();
    let m = b.op(OpKind::FMul);
    let a = b.op(OpKind::FAdd);
    let s = b.store(1);
    b.flow(m, a);
    b.flow(a, s);
    b.carried_flow(a, m, 1);
    LoopBuilder::new("linear_recurrence", b.build().expect("valid"))
        .trip_count(300)
        .build()
}

/// Horner evaluation step `p = p*x + c[i]` — recurrence through a
/// multiply and an add.
#[must_use]
pub fn horner() -> Loop {
    let mut b = DdgBuilder::new();
    let c = b.load(1);
    let m = b.op(OpKind::FMul);
    let a = b.op(OpKind::FAdd);
    b.flow(m, a);
    b.flow(c, a);
    b.carried_flow(a, m, 1);
    LoopBuilder::new("horner", b.build().expect("valid"))
        .trip_count(64)
        .build()
}

/// Complex multiply-accumulate on split arrays:
/// `(cr, ci) += (ar, ai) * (br, bi)` — rich ILP plus two sum
/// recurrences.
#[must_use]
pub fn complex_mac() -> Loop {
    let mut b = DdgBuilder::new();
    let ar = b.load(1);
    let ai = b.load(1);
    let br = b.load(1);
    let bi = b.load(1);
    let m1 = b.op(OpKind::FMul); // ar*br
    let m2 = b.op(OpKind::FMul); // ai*bi
    let m3 = b.op(OpKind::FMul); // ar*bi
    let m4 = b.op(OpKind::FMul); // ai*br
    let re = b.op(OpKind::FSub);
    let im = b.op(OpKind::FAdd);
    let accr = b.op(OpKind::FAdd);
    let acci = b.op(OpKind::FAdd);
    b.flow(ar, m1);
    b.flow(br, m1);
    b.flow(ai, m2);
    b.flow(bi, m2);
    b.flow(ar, m3);
    b.flow(bi, m3);
    b.flow(ai, m4);
    b.flow(br, m4);
    b.flow(m1, re);
    b.flow(m2, re);
    b.flow(m3, im);
    b.flow(m4, im);
    b.flow(re, accr);
    b.flow(im, acci);
    b.carried_flow(accr, accr, 1);
    b.carried_flow(acci, acci, 1);
    LoopBuilder::new("complex_mac", b.build().expect("valid"))
        .trip_count(256)
        .build()
}

/// Five-tap FIR filter `y[i] = Σ c_k · x[i+k]` — load-heavy,
/// compactable, register-hungry.
#[must_use]
pub fn fir5() -> Loop {
    let mut b = DdgBuilder::new();
    let taps: Vec<_> = (0..5).map(|_| b.load(1)).collect();
    let mut acc = None;
    for &t in &taps {
        let m = b.op(OpKind::FMul);
        b.flow(t, m);
        acc = Some(match acc {
            None => m,
            Some(prev) => {
                let a = b.op(OpKind::FAdd);
                b.flow(prev, a);
                b.flow(m, a);
                a
            }
        });
    }
    let s = b.store(1);
    b.flow(acc.expect("nonempty"), s);
    LoopBuilder::new("fir5", b.build().expect("valid"))
        .trip_count(480)
        .build()
}

/// Gather-style indirection `y[i] = x[idx[i]]` modeled as a unit-stride
/// index load plus a never-compactable data load.
#[must_use]
pub fn gather_scale() -> Loop {
    let mut b = DdgBuilder::new();
    let idx = b.load(1);
    let x = b.add_op(widening_ir::Op::memory(OpKind::Load, 1).never_compactable());
    let m = b.op(OpKind::FMul);
    let s = b.store(1);
    b.flow(idx, x);
    b.flow(x, m);
    b.flow(m, s);
    LoopBuilder::new("gather_scale", b.build().expect("valid"))
        .trip_count(150)
        .build()
}

/// All named kernels, in a stable order.
#[must_use]
pub fn all() -> Vec<Loop> {
    vec![
        daxpy(),
        dot_product(),
        triad(),
        stencil3(),
        matvec_column(64),
        vector_divide(),
        norm2(),
        linear_recurrence(),
        horner(),
        complex_mac(),
        fir5(),
        gather_scale(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::DdgStats;

    #[test]
    fn all_kernels_are_valid_and_named_uniquely() {
        let ks = all();
        assert_eq!(ks.len(), 12);
        let mut names: Vec<&str> = ks.iter().map(Loop::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn recurrence_kernels_have_recurrences() {
        for k in [dot_product(), linear_recurrence(), horner(), complex_mac()] {
            assert!(
                !k.ddg().recurrence_nodes().is_empty(),
                "{} should have a recurrence",
                k.name()
            );
        }
        for k in [daxpy(), triad(), stencil3(), fir5()] {
            assert!(
                k.ddg().recurrence_nodes().is_empty(),
                "{} should be recurrence-free",
                k.name()
            );
        }
    }

    #[test]
    fn strided_kernel_has_non_unit_stride() {
        let k = matvec_column(64);
        let stats = DdgStats::of(k.ddg());
        assert!(stats.unit_stride_fraction().unwrap() < 1.0);
    }

    #[test]
    fn divide_kernels_use_unpipelined_units() {
        assert_eq!(DdgStats::of(vector_divide().ddg()).unpipelined_ops, 1);
        assert_eq!(DdgStats::of(norm2().ddg()).unpipelined_ops, 1);
    }

    #[test]
    fn kernel_shapes() {
        let st = DdgStats::of(daxpy().ddg());
        assert_eq!((st.loads, st.stores, st.fpu_ops), (2, 1, 2));
        let st = DdgStats::of(complex_mac().ddg());
        assert_eq!((st.loads, st.fpu_ops), (4, 8));
        let st = DdgStats::of(fir5().ddg());
        assert_eq!((st.loads, st.stores, st.fpu_ops), (5, 1, 9));
    }
}
