//! The Perfect-Club-surrogate corpus generator.
//!
//! The paper's workload is 1180 inner loops extracted from the Perfect
//! Club with Ictíneo, covering 78% of the benchmarks' execution time. We
//! cannot redistribute those loops, so we generate a synthetic corpus
//! whose *aggregate* properties — operation mix, recurrence prevalence
//! and tightness, stride distribution, loop size, trip counts — are
//! tuned so the headline ILP curves (paper Figure 2) have the published
//! shape: pure replication keeps scaling to ~11× before flattening, pure
//! widening saturates near 5×, `2wY` near 8× (see DESIGN.md §3 and
//! EXPERIMENTS.md).
//!
//! The generator is fully deterministic: the same [`CorpusSpec`] always
//! produces the same loops, bit for bit.

use widening_ir::{DdgBuilder, Loop, LoopBuilder, NodeId, OpKind};

use crate::rng::Rng;

/// Number of loops in the paper's workbench.
pub const PAPER_LOOP_COUNT: usize = 1180;

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Number of loops to generate.
    pub loops: usize,
    /// PRNG seed; two specs differing only in seed give statistically
    /// equivalent but distinct corpora.
    pub seed: u64,
    /// Class weights: fully vectorizable streams.
    pub vector_weight: f64,
    /// Class weights: vectorizable computation over strided memory.
    pub strided_weight: f64,
    /// Class weights: reductions (sum/product accumulators).
    pub reduction_weight: f64,
    /// Class weights: tight multi-operation recurrences.
    pub recurrence_weight: f64,
    /// Class weights: loops containing divides / square roots.
    pub divsqrt_weight: f64,
    /// Smallest / largest number of FPU operations per loop body.
    pub fpu_ops_range: (u64, u64),
    /// Probability that a memory access is unit stride in the strided
    /// class.
    pub strided_unit_fraction: f64,
}

impl Default for CorpusSpec {
    /// The paper-calibrated surrogate (see EXPERIMENTS.md for the
    /// resulting aggregate statistics).
    fn default() -> Self {
        CorpusSpec {
            loops: PAPER_LOOP_COUNT,
            seed: 0x1998_0C0D_E5A1_D0C5,
            vector_weight: 0.56,
            strided_weight: 0.14,
            reduction_weight: 0.14,
            recurrence_weight: 0.06,
            divsqrt_weight: 0.10,
            fpu_ops_range: (6, 72),
            strided_unit_fraction: 0.25,
        }
    }
}

impl CorpusSpec {
    /// A small corpus for tests and quick experiments: same mix, fewer
    /// loops.
    #[must_use]
    pub fn small(loops: usize, seed: u64) -> Self {
        CorpusSpec {
            loops,
            seed,
            ..CorpusSpec::default()
        }
    }
}

/// Generates the corpus described by `spec`.
#[must_use]
pub fn generate(spec: &CorpusSpec) -> Vec<Loop> {
    let mut rng = Rng::new(spec.seed);
    let weights = [
        spec.vector_weight,
        spec.strided_weight,
        spec.reduction_weight,
        spec.recurrence_weight,
        spec.divsqrt_weight,
    ];
    (0..spec.loops)
        .map(|i| {
            let class = rng.weighted(&weights);
            let name = match class {
                0 => format!("vec_{i:04}"),
                1 => format!("strided_{i:04}"),
                2 => format!("reduce_{i:04}"),
                3 => format!("recur_{i:04}"),
                _ => format!("divsqrt_{i:04}"),
            };
            let g = LoopGen {
                rng: &mut rng,
                spec,
            };
            let ddg = match class {
                0 => g.vector_loop(false),
                1 => g.vector_loop(true),
                2 => g.reduction_loop(),
                3 => g.recurrence_loop(),
                _ => g.divsqrt_loop(),
            };
            let trip = trip_count(&mut rng);
            let weight = loop_weight(&mut rng);
            LoopBuilder::new(name, ddg)
                .trip_count(trip)
                .weight(weight)
                .build()
        })
        .collect()
}

/// The default 1180-loop surrogate.
#[must_use]
pub fn perfect_club_surrogate() -> Vec<Loop> {
    generate(&CorpusSpec::default())
}

/// Trip counts: mostly tens-to-hundreds of iterations, occasionally
/// thousands (vector lengths of numerical codes).
fn trip_count(rng: &mut Rng) -> u64 {
    match rng.weighted(&[0.25, 0.5, 0.2, 0.05]) {
        0 => rng.range(8, 40),
        1 => rng.range(40, 250),
        2 => rng.range(250, 1200),
        _ => rng.range(1200, 8000),
    }
}

/// Invocation weights: a heavy tail so a minority of loops dominates
/// execution time, as in real programs.
fn loop_weight(rng: &mut Rng) -> f64 {
    let u = rng.next_f64();
    // Pareto-ish: most weights near 1, a few 10-100×.
    (1.0 - u).powf(-0.65)
}

struct LoopGen<'a> {
    rng: &'a mut Rng,
    spec: &'a CorpusSpec,
}

impl LoopGen<'_> {
    /// A vectorizable expression-tree loop: loads feed a random
    /// fan-in-2 DAG of adds/multiplies ending in one or two stores.
    fn vector_loop(mut self, strided: bool) -> widening_ir::Ddg {
        let fpu_ops = self
            .rng
            .skewed(self.spec.fpu_ops_range.0, self.spec.fpu_ops_range.1);
        let loads = (fpu_ops / 2 + 1).clamp(1, 32);
        let mut b = DdgBuilder::new();
        let mut values: Vec<NodeId> = (0..loads)
            .map(|_| {
                let stride = if strided { self.pick_stride() } else { 1 };
                b.load(stride)
            })
            .collect();
        // A minority of "vectorizable" loops still contains an indirect
        // access (table lookups, indexed boundary terms) that no wide
        // bus can compact — §2's versatility argument.
        if self.rng.chance(0.15) {
            for _ in 0..self.rng.range(1, 2) {
                let idx = *values.first().expect("at least one load");
                let gather = b.add_op(widening_ir::Op::memory(OpKind::Load, 1).never_compactable());
                b.flow(idx, gather);
                values.push(gather);
            }
        }
        for _ in 0..fpu_ops {
            let kind = if self.rng.chance(0.55) {
                OpKind::FMul
            } else {
                OpKind::FAdd
            };
            let v = b.op(kind);
            // Operand locality: numerical expressions chain recent
            // values (a*x+b style), keeping the dataflow narrow; only
            // occasional operands reach further back. This is what keeps
            // large loop bodies schedulable in small register files.
            let n = values.len() as u64;
            let recent = n - 1 - self.rng.below(4.min(n));
            let far_window = 12.min(n);
            let far = n - 1 - self.rng.below(far_window);
            b.flow(values[recent as usize], v);
            if far != recent || self.rng.chance(0.5) {
                b.flow(values[far as usize], v);
            }
            values.push(v);
        }
        let stores = if self.rng.chance(0.3) { 2 } else { 1 };
        for _ in 0..stores {
            let stride = if strided { self.pick_stride() } else { 1 };
            let s = b.store(stride);
            let v = values[values.len() - 1 - self.rng.below(3.min(values.len() as u64)) as usize];
            b.flow(v, s);
        }
        b.build().expect("generated vector loop is valid")
    }

    /// A reduction: a vectorizable stream feeding one (sometimes two)
    /// accumulators with distance-1 (occasionally higher) recurrences.
    fn reduction_loop(self) -> widening_ir::Ddg {
        let fpu_ops = self
            .rng
            .skewed(self.spec.fpu_ops_range.0, self.spec.fpu_ops_range.1 / 2);
        let loads = (fpu_ops / 2 + 1).clamp(1, 16);
        let mut b = DdgBuilder::new();
        let mut values: Vec<NodeId> = (0..loads).map(|_| b.load(1)).collect();
        for _ in 0..fpu_ops {
            let kind = if self.rng.chance(0.6) {
                OpKind::FMul
            } else {
                OpKind::FAdd
            };
            let v = b.op(kind);
            let n = values.len() as u64;
            let recent = n - 1 - self.rng.below(4.min(n));
            let far = n - 1 - self.rng.below(12.min(n));
            b.flow(values[recent as usize], v);
            if far != recent || self.rng.chance(0.5) {
                b.flow(values[far as usize], v);
            }
            values.push(v);
        }
        let accs = if self.rng.chance(0.25) { 2 } else { 1 };
        for _ in 0..accs {
            let acc = b.op(OpKind::FAdd);
            b.flow(values[values.len() - 1 - self.rng.below(2) as usize], acc);
            // Partial-sum interleaving shows up as distance > 1.
            let dist = *[1u32, 1, 2, 4]
                .get(self.rng.below(4) as usize)
                .expect("in range");
            b.carried_flow(acc, acc, dist);
        }
        b.build().expect("generated reduction loop is valid")
    }

    /// A recurrence-bound loop: a chain of 2–4 operations closed at
    /// distance 1 (Livermore-style linear recurrences), plus a bit of
    /// vectorizable side work.
    fn recurrence_loop(self) -> widening_ir::Ddg {
        let chain_len = self.rng.range(2, 3);
        let mut b = DdgBuilder::new();
        let c = b.load(1);
        let first = b.op(OpKind::FMul);
        b.flow(c, first);
        let mut prev = first;
        for _ in 1..chain_len {
            let kind = if self.rng.chance(0.5) {
                OpKind::FAdd
            } else {
                OpKind::FMul
            };
            let v = b.op(kind);
            b.flow(prev, v);
            prev = v;
        }
        b.carried_flow(prev, first, 1);
        let st = b.store(1);
        b.flow(prev, st);
        // Vectorizable side work alongside the recurrence (real loops
        // rarely consist of the recurrence alone).
        for _ in 0..self.rng.range(1, 6) {
            let l = b.load(1);
            let m = b.op(OpKind::FMul);
            let s = b.store(1);
            b.flow(l, m);
            b.flow(m, s);
        }
        b.build().expect("generated recurrence loop is valid")
    }

    /// A loop with unpipelined operations: normalisations, Cholesky-ish
    /// inner steps.
    fn divsqrt_loop(self) -> widening_ir::Ddg {
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let y = b.load(1);
        let m = b.op(OpKind::FMul);
        b.flow(x, m);
        b.flow(y, m);
        let slow = if self.rng.chance(0.5) {
            let d = b.op(OpKind::FDiv);
            b.flow(m, d);
            b.flow(x, d);
            d
        } else {
            let r = b.op(OpKind::FSqrt);
            b.flow(m, r);
            r
        };
        let st = b.store(1);
        b.flow(slow, st);
        // Often paired with a vectorizable tail.
        for _ in 0..self.rng.range(0, 4) {
            let l = b.load(1);
            let a = b.op(OpKind::FAdd);
            let s = b.store(1);
            b.flow(l, a);
            b.flow(slow, a);
            b.flow(a, s);
        }
        b.build().expect("generated div/sqrt loop is valid")
    }

    fn pick_stride(&mut self) -> i64 {
        if self.rng.chance(self.spec.strided_unit_fraction) {
            1
        } else {
            *[2i64, 4, 8, 64, 128]
                .get(self.rng.below(5) as usize)
                .expect("in range")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::DdgStats;

    #[test]
    fn deterministic_generation() {
        let a = generate(&CorpusSpec::small(50, 7));
        let b = generate(&CorpusSpec::small(50, 7));
        assert_eq!(a, b);
        let c = generate(&CorpusSpec::small(50, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn default_spec_produces_1180_loops() {
        let spec = CorpusSpec::default();
        assert_eq!(spec.loops, PAPER_LOOP_COUNT);
        // Generating the full corpus is fast (< seconds) and must not
        // panic anywhere.
        let loops = generate(&spec);
        assert_eq!(loops.len(), 1180);
    }

    #[test]
    fn corpus_mixes_classes() {
        let loops = generate(&CorpusSpec::small(400, 3));
        let with_rec = loops
            .iter()
            .filter(|l| !l.ddg().recurrence_nodes().is_empty())
            .count();
        let with_div = loops
            .iter()
            .filter(|l| DdgStats::of(l.ddg()).unpipelined_ops > 0)
            .count();
        let frac_rec = with_rec as f64 / 400.0;
        let frac_div = with_div as f64 / 400.0;
        // reduction + recurrence weights ≈ 0.20 of the corpus.
        assert!(
            (0.12..0.32).contains(&frac_rec),
            "recurrence fraction {frac_rec}"
        );
        assert!(
            (0.04..0.20).contains(&frac_div),
            "div/sqrt fraction {frac_div}"
        );
    }

    #[test]
    fn loops_have_sane_shapes() {
        for l in generate(&CorpusSpec::small(200, 11)) {
            let st = DdgStats::of(l.ddg());
            assert!(st.ops >= 3, "{}: too small", l.name());
            assert!(st.ops <= 140, "{}: too large ({})", l.name(), st.ops);
            assert!(st.memory_ops >= 1, "{}: no memory traffic", l.name());
            assert!(l.trip_count() >= 8);
            assert!(l.weight() >= 1.0);
        }
    }

    #[test]
    fn strided_class_has_non_unit_strides() {
        let loops = generate(&CorpusSpec::small(300, 5));
        let strided: Vec<_> = loops
            .iter()
            .filter(|l| l.name().starts_with("strided_"))
            .collect();
        assert!(!strided.is_empty());
        let any_non_unit = strided.iter().any(|l| {
            DdgStats::of(l.ddg())
                .unit_stride_fraction()
                .is_some_and(|f| f < 1.0)
        });
        assert!(any_non_unit);
    }

    #[test]
    fn weights_have_heavy_tail() {
        let loops = generate(&CorpusSpec::small(1000, 2));
        let mut ws: Vec<f64> = loops.iter().map(Loop::weight).collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ws[500];
        let p99 = ws[990];
        assert!(median < 3.0, "median {median}");
        assert!(p99 > 5.0, "p99 {p99}");
    }
}
