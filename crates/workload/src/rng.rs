//! Self-contained deterministic PRNG (`xoshiro256**` seeded via
//! SplitMix64).
//!
//! The corpus must be bit-stable forever — results in EXPERIMENTS.md are
//! tied to it — so we do not depend on an external RNG crate whose
//! stream might change across major versions (substitution documented in
//! DESIGN.md §3).

/// A deterministic `xoshiro256**` generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative rejection-free mapping (slightly biased for
        // astronomically large bounds; irrelevant for corpus sizes).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks an index according to a weight table.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// A geometric-flavoured integer in `[lo, hi]` biased toward `lo`
    /// (loop bodies are mostly small, occasionally large).
    pub fn skewed(&mut self, lo: u64, hi: u64) -> u64 {
        let u = self.next_f64();
        let span = (hi - lo) as f64;
        lo + (span * u * u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn weighted_prefers_heavy_bucket() {
        let mut r = Rng::new(3);
        let mut counts = [0u32; 2];
        for _ in 0..1000 {
            counts[r.weighted(&[9.0, 1.0])] += 1;
        }
        assert!(counts[0] > 800, "{counts:?}");
        assert!(counts[1] > 20, "{counts:?}");
    }

    #[test]
    fn chance_rates() {
        let mut r = Rng::new(4);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn skewed_bias_toward_low() {
        let mut r = Rng::new(5);
        let vals: Vec<u64> = (0..2000).map(|_| r.skewed(2, 42)).collect();
        assert!(vals.iter().all(|&v| (2..=42).contains(&v)));
        let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
        assert!(mean < 22.0, "mean {mean} should sit below the midpoint");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let _ = Rng::new(0).below(0);
    }
}
