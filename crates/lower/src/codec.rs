//! A versioned, self-contained binary codec for [`WideProgram`], so the
//! pipeline's disk tier can persist lowered programs next to schedules
//! and allocations.
//!
//! The format is little-endian and total on decode: every length,
//! index and discriminant is bounds-checked against the header tables,
//! and any truncation, trailing garbage or out-of-range reference
//! returns `None` instead of panicking. Bump [`PROGRAM_VERSION`] on any
//! shape change — old artifacts then decode to `None` and the stage
//! re-lowers.

use widening_ir::OpKind;

use crate::program::{Inst, InstOp, OperandDesc, ReadMode, WideProgram};

/// Version tag leading every encoded program.
pub const PROGRAM_VERSION: u16 = 1;

/// Encodes `program` into a self-describing byte buffer.
#[must_use]
pub fn encode_program(program: &WideProgram) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.approx_bytes());
    put_u16(&mut out, PROGRAM_VERSION);
    for v in [
        program.y,
        program.ii,
        program.k,
        program.max_t,
        program.num_original,
        program.num_final,
        program.ring_depth,
        program.registers,
        program.spill_ops,
    ] {
        put_u32(&mut out, v);
    }
    out.push(u8::from(program.track_owners));
    put_u32(&mut out, program.rows.len() as u32);
    for &r in &program.rows {
        put_u32(&mut out, r);
    }
    put_u32(&mut out, program.insts.len() as u32);
    for inst in &program.insts {
        put_u32(&mut out, inst.node);
        match inst.op {
            InstOp::Compute {
                original,
                op,
                produces,
                first_lane,
                lanes,
                ops_start,
                ops_per_lane,
                lt,
            } => {
                out.push(0);
                put_u32(&mut out, original);
                out.push(op_code(op));
                out.push(u8::from(produces));
                for v in [first_lane, lanes, ops_start, ops_per_lane, lt] {
                    put_u32(&mut out, v);
                }
            }
            InstOp::SpillStore => out.push(1),
            InstOp::SpillReload { distance, lt } => {
                out.push(2);
                put_u32(&mut out, distance);
                put_u32(&mut out, lt);
            }
        }
    }
    put_u32(&mut out, program.operands.len() as u32);
    for od in &program.operands {
        for v in [
            od.src,
            od.distance,
            od.neg_until,
            od.producer,
            od.lane,
            od.delta,
            od.lt,
        ] {
            put_u32(&mut out, v);
        }
        out.push(match od.mode {
            ReadMode::Strict => 0,
            ReadMode::ForwardCheck => 1,
            ReadMode::SpillServed => 2,
            ReadMode::SpillForward => 3,
        });
    }
    put_u32(&mut out, program.reg_table.len() as u32);
    for &r in &program.reg_table {
        put_u32(&mut out, r);
    }
    put_u32(&mut out, program.mem_nodes.len() as u32);
    for &(v, is_load) in &program.mem_nodes {
        put_u32(&mut out, v);
        out.push(u8::from(is_load));
    }
    out
}

/// Decodes a program previously produced by [`encode_program`].
/// Returns `None` on any version, shape or bounds mismatch.
#[must_use]
pub fn decode_program(bytes: &[u8]) -> Option<WideProgram> {
    let mut r = Reader { bytes, pos: 0 };
    if r.u16()? != PROGRAM_VERSION {
        return None;
    }
    let y = r.u32()?;
    let ii = r.u32()?;
    let k = r.u32()?;
    let max_t = r.u32()?;
    let num_original = r.u32()?;
    let num_final = r.u32()?;
    let ring_depth = r.u32()?;
    let registers = r.u32()?;
    let spill_ops = r.u32()?;
    if y == 0 || ii == 0 || k == 0 || ring_depth == 0 || !ring_depth.is_power_of_two() {
        return None;
    }
    let track_owners = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };

    let num_rows = r.len_of(4)?;
    if num_rows != max_t as usize + 2 {
        return None;
    }
    let mut rows = Vec::with_capacity(num_rows);
    for _ in 0..num_rows {
        rows.push(r.u32()?);
    }
    if rows.windows(2).any(|w| w[0] > w[1]) || rows.first() != Some(&0) {
        return None;
    }

    let num_insts = r.len_of(5)?;
    if *rows.last()? != num_insts as u32 {
        return None;
    }
    let mut insts = Vec::with_capacity(num_insts);
    for _ in 0..num_insts {
        let node = r.u32()?;
        if node >= num_final {
            return None;
        }
        let op = match r.u8()? {
            0 => {
                let original = r.u32()?;
                let op = op_kind(r.u8()?)?;
                let produces = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let first_lane = r.u32()?;
                let lanes = r.u32()?;
                let ops_start = r.u32()?;
                let ops_per_lane = r.u32()?;
                let lt = r.u32()?;
                if original >= num_original || lanes == 0 || first_lane + lanes > y {
                    return None;
                }
                InstOp::Compute {
                    original,
                    op,
                    produces,
                    first_lane,
                    lanes,
                    ops_start,
                    ops_per_lane,
                    lt,
                }
            }
            1 => InstOp::SpillStore,
            2 => InstOp::SpillReload {
                distance: r.u32()?,
                lt: r.u32()?,
            },
            _ => return None,
        };
        insts.push(Inst { node, op });
    }

    let num_ops = r.len_of(29)?;
    let mut operands = Vec::with_capacity(num_ops);
    for _ in 0..num_ops {
        let src = r.u32()?;
        let distance = r.u32()?;
        let neg_until = r.u32()?;
        let producer = r.u32()?;
        let lane = r.u32()?;
        let delta = r.u32()?;
        let lt = r.u32()?;
        let mode = match r.u8()? {
            0 => ReadMode::Strict,
            1 => ReadMode::ForwardCheck,
            2 => ReadMode::SpillServed,
            3 => ReadMode::SpillForward,
            _ => return None,
        };
        if src >= num_original || producer >= num_final || lane >= y {
            return None;
        }
        operands.push(OperandDesc {
            src,
            distance,
            neg_until,
            producer,
            lane,
            delta,
            lt,
            mode,
        });
    }

    let table_len = r.len_of(4)?;
    let mut reg_table = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let reg = r.u32()?;
        if reg >= registers {
            return None;
        }
        reg_table.push(reg);
    }
    if table_len % k as usize != 0 {
        return None;
    }
    let num_lifetimes = (table_len / k as usize) as u32;

    let num_mem = r.len_of(5)?;
    let mut mem_nodes = Vec::with_capacity(num_mem);
    for _ in 0..num_mem {
        let v = r.u32()?;
        let is_load = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        if v >= num_original || mem_nodes.last().is_some_and(|&(p, _)| p >= v) {
            return None;
        }
        mem_nodes.push((v, is_load));
    }
    if r.pos != r.bytes.len() {
        return None;
    }

    // Cross-table references: every lifetime and operand range an
    // instruction or descriptor names must exist.
    let lt_ok = |lt: u32| lt == u32::MAX || lt < num_lifetimes;
    for inst in &insts {
        match inst.op {
            InstOp::Compute {
                lanes,
                ops_start,
                ops_per_lane,
                lt,
                produces,
                ..
            } => {
                let span = (lanes as u64) * u64::from(ops_per_lane);
                if u64::from(ops_start) + span > operands.len() as u64
                    || !lt_ok(lt)
                    || (produces && lt == u32::MAX)
                {
                    return None;
                }
            }
            InstOp::SpillReload { lt, .. } => {
                if lt >= num_lifetimes {
                    return None;
                }
            }
            InstOp::SpillStore => {}
        }
    }
    for od in &operands {
        let needs_lt = od.mode == ReadMode::ForwardCheck;
        if (needs_lt && od.lt >= num_lifetimes) || (!needs_lt && od.lt != u32::MAX) {
            return None;
        }
    }

    Some(WideProgram {
        y,
        ii,
        k,
        max_t,
        num_original,
        num_final,
        ring_depth,
        registers,
        spill_ops,
        track_owners,
        rows,
        insts,
        operands,
        reg_table,
        mem_nodes,
    })
}

fn op_code(kind: OpKind) -> u8 {
    OpKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL") as u8
}

fn op_kind(code: u8) -> Option<OpKind> {
    OpKind::ALL.get(code as usize).copied()
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u16(&mut self) -> Option<u16> {
        let s = self.bytes.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(s.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }

    /// Reads an element count whose elements occupy at least
    /// `min_elem_bytes` each, rejecting counts the remaining input
    /// cannot possibly hold (so corrupt lengths never drive huge
    /// allocations).
    fn len_of(&mut self, min_elem_bytes: usize) -> Option<usize> {
        let len = self.u32()? as usize;
        if len > (self.bytes.len() - self.pos) / min_elem_bytes {
            return None;
        }
        Some(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> WideProgram {
        use widening_ir::{DdgBuilder, OpKind};
        use widening_machine::CycleModel;

        // Build a real program through the real pipeline pieces.
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let m = b.op(OpKind::FMul);
        let s = b.store(1);
        b.flow(x, m);
        b.flow(m, s);
        let g = b.build().unwrap();
        let outcome = widening_transform::widen(&g, 2);
        let result = widening_regalloc::schedule_with_registers(
            outcome.ddg(),
            &"2w2(64:1)"
                .parse::<widening_machine::Configuration>()
                .unwrap(),
            CycleModel::Cycles4,
            &Default::default(),
            &Default::default(),
        )
        .unwrap();
        crate::lower(&g, &outcome, &result)
    }

    #[test]
    fn roundtrip_is_identity() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).expect("roundtrip decodes");
        assert_eq!(p, q);
    }

    #[test]
    fn version_and_truncation_are_rejected() {
        let p = sample_program();
        let mut bytes = encode_program(&p);
        assert!(decode_program(&bytes[..bytes.len() - 1]).is_none());
        bytes[0] = bytes[0].wrapping_add(1);
        assert!(decode_program(&bytes).is_none());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let p = sample_program();
        let mut bytes = encode_program(&p);
        bytes.push(0);
        assert!(decode_program(&bytes).is_none());
    }

    #[test]
    fn corrupt_indices_are_rejected() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let mut rejected = 0usize;
        // Flip each byte to 0xFF in turn; decode must never panic and
        // must reject structurally-damaging flips.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            if b[i] == 0xFF {
                continue;
            }
            b[i] = 0xFF;
            if decode_program(&b).is_none() {
                rejected += 1;
            }
        }
        assert!(rejected > 0);
    }
}
