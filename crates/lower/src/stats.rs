//! Dynamic execution counters and the result of one wide execution —
//! the common currency of every execution backend.

use crate::memory::Memory;

/// Dynamic counters from one wide-datapath execution. Both the
/// interpreting simulator and the lowered-bytecode backend fill this in,
/// and a correct lowering matches the interpreter **bitwise** on every
/// field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Exact dynamic cycles: prologue + kernel + epilogue.
    pub cycles: u64,
    /// Widened kernel iterations executed (`⌈trip / Y⌉`).
    pub blocks: u64,
    /// The paper's steady-state accounting for the same run:
    /// `II · blocks`.
    pub steady_state_cycles: u64,
    /// Operations issued (wide or scalar instruction slots consumed).
    pub issued_ops: u64,
    /// Lanes skipped because the trip count is not a multiple of `Y`
    /// (the final partial block).
    pub masked_lanes: u64,
    /// Operand lanes that needed an instance one block older than the
    /// widened dependence edge records (wide-to-wide edges whose
    /// original distance is not a multiple of `Y`); served by the
    /// forwarding network, not the register file.
    pub cross_block_reads: u64,
    /// Wide values written to / read from spill slots.
    pub spill_slot_accesses: u64,
}

impl SimStats {
    /// Dynamic minus steady-state cycles: the fill/drain transient the
    /// analytic model omits (negative when the pipeline drains inside
    /// the last initiation interval).
    #[must_use]
    pub fn transient_cycles(&self) -> i64 {
        self.cycles as i64 - self.steady_state_cycles as i64
    }
}

/// The result of one wide execution, from either backend.
#[derive(Debug, Clone, PartialEq)]
pub struct WideRun {
    /// Final memory state (same layout as the reference's).
    pub memory: Memory,
    /// Per **original** node checksums, comparable to the scalar
    /// reference interpreter's.
    pub checksums: Vec<u64>,
    /// Dynamic counters.
    pub stats: SimStats,
}

impl WideRun {
    /// Whether two runs are bitwise identical: every memory cell, every
    /// checksum and every dynamic counter. (`f64` equality would accept
    /// `0.0 == -0.0`; backend equivalence must not.)
    #[must_use]
    pub fn bitwise_eq(&self, other: &WideRun) -> bool {
        self.stats == other.stats
            && self.checksums == other.checksums
            && self.memory.trip() == other.memory.trip()
            && self.memory.cells().len() == other.memory.cells().len()
            && self
                .memory
                .cells()
                .iter()
                .zip(other.memory.cells())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Order-independent accumulation of one `(iteration, value)` sample
/// into a node's checksum. XOR of mixed samples, so the wide backends
/// may compute scalar lanes in any issue order.
#[must_use]
#[inline]
pub fn checksum_step(iteration: u64, value: f64) -> u64 {
    let mut h = value.to_bits() ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 29)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_step_is_order_independent_by_xor() {
        let s1 = checksum_step(0, 1.5) ^ checksum_step(1, 2.5);
        let s2 = checksum_step(1, 2.5) ^ checksum_step(0, 1.5);
        assert_eq!(s1, s2);
        assert_ne!(checksum_step(0, 1.5), checksum_step(1, 1.5));
        assert_ne!(checksum_step(0, 1.5), checksum_step(0, 2.5));
    }

    #[test]
    fn transient_is_signed() {
        let s = SimStats {
            cycles: 10,
            steady_state_cycles: 12,
            ..SimStats::default()
        };
        assert_eq!(s.transient_cycles(), -2);
    }
}
