//! Lowering a compiled wide loop to executable bytecode, and the tight
//! exec loop that runs it.
//!
//! [`lower`] consumes exactly what the interpreting simulator consumes —
//! the original graph, the widening outcome and the scheduled+allocated
//! [`PressureResult`] — and emits a [`WideProgram`]: one instruction
//! stream per kernel row, each instruction carrying pre-resolved operand
//! descriptors instead of graph edges. [`WideProgram::exec`] then runs
//! the schedule with no decoding, no mapping lookups and no
//! per-operation allocation — in the interpreter's exact cycle order
//! when forwarded-read counting observes timing, and block-major
//! (whole blocks back to back) when nothing observable depends on the
//! wall-clock interleaving.
//!
//! # Bitwise equivalence
//!
//! The program reproduces the interpreter's [`WideRun`] bit for bit:
//!
//! * **Values.** Operand reads are resolved at lowering time to a
//!   `(producer, lane, block-delta)` ring access. The interpreter's
//!   register file, forwarding buffer and spill slots all hold copies of
//!   the producing instance's committed vector, so every read mode
//!   returns the same bits the interpreter returns.
//! * **`cross_block_reads`.** Whether a non-binding lane read is served
//!   by the register file or the forwarding network depends on machine
//!   *timing* (has a later instance overwritten the register yet?). The
//!   lowered program replays that decision exactly: every register write
//!   updates a register-owner table, owner updates are deferred to the
//!   end of the cycle like the interpreter's commit phase, and each
//!   compiled forward probes the owner entry its pre-resolved location
//!   table names.
//! * **Spill traffic.** A spill slot provably mirrors its victim's value
//!   ring (the store copies the victim's register; the reload returns
//!   that copy), so slots are compiled to counters: stores and in-range
//!   reloads bump `spill_slot_accesses`, reloads update register owners,
//!   and consumers read the victim ring directly.
//!
//! Hard state violations ([`SimError`-class errors] in the interpreter)
//! are *not* re-checked here: the lowered backend executes what a
//! verified schedule promised, and the interpreter remains the
//! differential oracle that catches promise violations.
//!
//! [`SimError`-class errors]: crate::WideProgram#what-the-backend-does-not-check

use widening_ir::{semantics, Ddg, NodeId, OpKind};
use widening_regalloc::PressureResult;
use widening_transform::{NodeMapping, WideningOutcome};

use crate::memory::Memory;
use crate::stats::{checksum_step, SimStats, WideRun};

/// How a pre-resolved operand is served, decided at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadMode {
    /// A binding read: the register file is guaranteed to hold the
    /// instance, so the value comes straight off the producer ring.
    Strict,
    /// A non-binding lane read (wide→wide, original distance not a
    /// multiple of `Y`): probe the register-owner table to decide
    /// whether the interpreter would have counted a forwarded read.
    ForwardCheck,
    /// A spilled producer whose reload covers this block delta: the
    /// reload's register carries the victim's value, uncounted.
    SpillServed,
    /// A spilled producer with no reload at this delta: always a
    /// forwarded (counted) read in the interpreter.
    SpillForward,
}

/// One pre-resolved operand of one consumer lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OperandDesc {
    /// Original producer node id, for pre-loop live-in values.
    pub(crate) src: u32,
    /// Original dependence distance, for `past = i − d`.
    pub(crate) distance: u32,
    /// Blocks `< neg_until` read the live-in stream instead of state.
    pub(crate) neg_until: u32,
    /// Final-graph node whose value ring holds the operand.
    pub(crate) producer: u32,
    /// Lane within the producer's ring entry.
    pub(crate) lane: u32,
    /// Block delta: the operand instance is `block − delta`.
    pub(crate) delta: u32,
    /// Producer lifetime index (owner probes only; `u32::MAX` else).
    pub(crate) lt: u32,
    /// How the read is served and counted.
    pub(crate) mode: ReadMode,
}

/// The operation a lowered instruction performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InstOp {
    /// A (possibly wide) instance of an original operation.
    Compute {
        /// Original node id (semantics, memory region, checksum slot).
        original: u32,
        /// Operation kind.
        op: OpKind,
        /// Whether a register write (and owner update) happens.
        produces: bool,
        /// First original lane this instance covers.
        first_lane: u32,
        /// Lane count: `Y` for a packed node, 1 for a scalar instance.
        lanes: u32,
        /// Operand descriptors: `lanes × ops_per_lane` entries starting
        /// here, lane-major, in original in-edge order within a lane.
        ops_start: u32,
        /// Flow in-edges per lane.
        ops_per_lane: u32,
        /// Lifetime index for the register write (`u32::MAX` if none).
        lt: u32,
    },
    /// A spill store: one slot write, counted.
    SpillStore,
    /// A spill reload: an owner update plus a counted slot read once
    /// `block ≥ distance` (earlier blocks reload the live-in stream,
    /// which touches no slot).
    SpillReload {
        /// Victim-relative block distance of the reloaded value.
        distance: u32,
        /// The reload's own lifetime index.
        lt: u32,
    },
}

/// One lowered instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Inst {
    /// Final-graph node id (ring index and owner identity).
    pub(crate) node: u32,
    /// What the instruction does.
    pub(crate) op: InstOp,
}

/// A compiled wide loop as a flat, cache-friendly, trip-independent
/// program: per-row instruction streams plus the tables `exec` indexes.
///
/// # What the backend does not check
///
/// The interpreter validates machine state on every read (register
/// clobbers, premature reads, empty spill slots). The lowered backend
/// assumes the schedule and allocation it was built from are correct —
/// they were verified structurally at compile time — and the
/// differential mode keeps the interpreter around as the oracle that
/// would catch any violated promise.
#[derive(Debug, Clone, PartialEq)]
pub struct WideProgram {
    pub(crate) y: u32,
    pub(crate) ii: u32,
    pub(crate) k: u32,
    pub(crate) max_t: u32,
    pub(crate) num_original: u32,
    pub(crate) num_final: u32,
    /// Value-ring depth in blocks; a power of two.
    pub(crate) ring_depth: u32,
    pub(crate) registers: u32,
    pub(crate) spill_ops: u32,
    /// Whether any owner probes exist (skip owner upkeep otherwise).
    pub(crate) track_owners: bool,
    /// Prefix offsets into `insts`: row `r` spans
    /// `insts[rows[r]..rows[r+1]]`; length `max_t + 2`.
    pub(crate) rows: Vec<u32>,
    pub(crate) insts: Vec<Inst>,
    pub(crate) operands: Vec<OperandDesc>,
    /// Flattened location table: `lifetime·K + phase → register`.
    pub(crate) reg_table: Vec<u32>,
    /// Memory layout of the original loop: `(node, is_load)` in
    /// ascending node-id order.
    pub(crate) mem_nodes: Vec<(u32, bool)>,
}

/// Lowers one compiled loop into an executable [`WideProgram`].
///
/// `outcome` must be the widening of `original` that `result` was
/// scheduled from — the same contract as the interpreter's machine.
/// The program is trip-independent: build once, [`WideProgram::exec`]
/// at any trip count.
///
/// # Panics
///
/// Panics if the inputs are structurally inconsistent (mismatched
/// graphs, a node without a role or a producer without a lifetime).
#[must_use]
pub fn lower(original: &Ddg, outcome: &WideningOutcome, result: &PressureResult) -> WideProgram {
    let y = outcome.width();
    let sched = &result.schedule;
    let alloc = &result.allocation;
    let k = alloc.kernel_unroll();
    let final_ddg = &result.ddg;
    let n = final_ddg.num_nodes();
    assert!(
        n >= outcome.ddg().num_nodes(),
        "result graph must extend the widened graph"
    );

    // Node roles, exactly as the interpreter derives them: widened part
    // from the origin table, spill part from the spill records.
    #[derive(Clone)]
    enum Role {
        Compute { original: NodeId, lane: Option<u32> },
        SpillStore,
        SpillReload { distance: u32 },
    }
    let mut roles: Vec<Option<Role>> = outcome
        .origin_table()
        .into_iter()
        .map(|o| {
            Some(Role::Compute {
                original: o.original,
                lane: o.lane,
            })
        })
        .collect();
    roles.resize(n, None);
    for rec in &result.spills {
        roles[rec.store.index()] = Some(Role::SpillStore);
        for &(distance, reload) in &rec.reloads {
            roles[reload.index()] = Some(Role::SpillReload { distance });
        }
    }

    // Final node -> lifetime index (value producers only).
    let mut lifetime_of: Vec<Option<u32>> = vec![None; n];
    for (i, lt) in result.lifetimes.iter().enumerate() {
        lifetime_of[lt.def.index()] = Some(i as u32);
    }

    // Spilled victim -> spill record index.
    let mut spilled_rec: Vec<Option<u32>> = vec![None; n];
    for (i, rec) in result.spills.iter().enumerate() {
        spilled_rec[rec.victim.index()] = Some(i as u32);
    }

    // Flattened location table.
    let mut reg_table = Vec::with_capacity(result.lifetimes.len() * k as usize);
    for lt in 0..result.lifetimes.len() as u32 {
        for phase in 0..k {
            reg_table.push(
                alloc
                    .register_of(lt, phase)
                    .expect("location table covers every instance"),
            );
        }
    }

    // Ring depth: the interpreter's bound, rounded up to a power of two
    // so `block % depth` is a mask.
    let max_dist = final_ddg
        .edges()
        .iter()
        .map(|e| e.distance)
        .max()
        .unwrap_or(0);
    let ring_depth = (sched.stages() + max_dist + 2).next_power_of_two();

    // Issue buckets: row -> final nodes in ascending id order (the
    // interpreter's within-cycle commit order).
    let max_t = sched.max_time();
    let mut at_row: Vec<Vec<u32>> = vec![Vec::new(); max_t as usize + 1];
    for v in final_ddg.node_ids() {
        at_row[sched.time(v) as usize].push(v.0);
    }

    let mut rows = Vec::with_capacity(max_t as usize + 2);
    let mut insts = Vec::with_capacity(n);
    let mut operands = Vec::new();
    let mut track_owners = false;
    for bucket in &at_row {
        rows.push(insts.len() as u32);
        for &w in bucket {
            let role = roles[w as usize]
                .clone()
                .unwrap_or_else(|| panic!("node n{w} has no role"));
            let inst_op = match role {
                Role::SpillStore => InstOp::SpillStore,
                Role::SpillReload { distance } => InstOp::SpillReload {
                    distance,
                    lt: lifetime_of[w as usize].expect("reloads produce a value"),
                },
                Role::Compute { original: o, lane } => {
                    let op = original.op(o);
                    let produces = op.produces_value();
                    let (first_lane, lanes) = match lane {
                        Some(j) => (j, 1u32),
                        None => (0, y),
                    };
                    let ops_start = operands.len() as u32;
                    let mut ops_per_lane = 0u32;
                    for slot in 0..lanes {
                        let j = first_lane + slot;
                        ops_per_lane = 0;
                        for e in original.in_edges(o).filter(|e| e.kind.is_flow()) {
                            operands.push(lower_operand(
                                outcome,
                                result,
                                &spilled_rec,
                                &lifetime_of,
                                &mut track_owners,
                                e.src,
                                e.distance,
                                j,
                                lane.is_none(),
                            ));
                            ops_per_lane += 1;
                        }
                    }
                    InstOp::Compute {
                        original: o.0,
                        op: op.kind(),
                        produces,
                        first_lane,
                        lanes,
                        ops_start,
                        ops_per_lane,
                        lt: if produces {
                            lifetime_of[w as usize].expect("producers have a lifetime")
                        } else {
                            u32::MAX
                        },
                    }
                }
            };
            insts.push(Inst {
                node: w,
                op: inst_op,
            });
        }
    }
    rows.push(insts.len() as u32);

    let mem_nodes: Vec<(u32, bool)> = original
        .node_ids()
        .filter(|&v| original.op(v).kind().is_memory())
        .map(|v| (v.0, original.op(v).kind() == OpKind::Load))
        .collect();

    WideProgram {
        y,
        ii: sched.ii(),
        k,
        max_t,
        num_original: original.num_nodes() as u32,
        num_final: n as u32,
        ring_depth,
        registers: alloc.registers_used(),
        spill_ops: result.spill_stores + result.spill_loads,
        track_owners,
        rows,
        insts,
        operands,
        reg_table,
        mem_nodes,
    }
}

/// Resolves one `(consumer lane, original in-edge)` pair to a compiled
/// operand descriptor.
#[allow(clippy::too_many_arguments)]
fn lower_operand(
    outcome: &WideningOutcome,
    result: &PressureResult,
    spilled_rec: &[Option<u32>],
    lifetime_of: &[Option<u32>],
    track_owners: &mut bool,
    src: NodeId,
    distance: u32,
    j: u32,
    consumer_is_wide: bool,
) -> OperandDesc {
    let y = outcome.width();
    let dq = distance / y;
    let dr = distance % y;
    // Lane and block of the producing instance: iteration
    // `i − d = Y·(block − delta) + lane`.
    let lane_l = (j + y - dr) % y;
    let delta = dq + u32::from(j < dr);
    let neg_until = if distance > j {
        (distance - j).div_ceil(y)
    } else {
        0
    };
    let (producer, lane, producer_is_wide) = match &outcome.mapping()[src.index()] {
        NodeMapping::Wide(p) => (*p, lane_l, true),
        NodeMapping::Lanes(ids) => (ids[lane_l as usize], 0, false),
    };
    let (mode, lt) = if let Some(rec) = spilled_rec[producer.index()] {
        let rec = &result.spills[rec as usize];
        if rec.reloads.iter().any(|&(dist, _)| dist == delta) {
            (ReadMode::SpillServed, u32::MAX)
        } else {
            (ReadMode::SpillForward, u32::MAX)
        }
    } else if consumer_is_wide && producer_is_wide && j < dr {
        *track_owners = true;
        (
            ReadMode::ForwardCheck,
            lifetime_of[producer.index()].expect("forwarded producers have a lifetime"),
        )
    } else {
        (ReadMode::Strict, u32::MAX)
    };
    OperandDesc {
        src: src.0,
        distance,
        neg_until,
        producer: producer.0,
        lane,
        delta,
        lt,
        mode,
    }
}

impl WideProgram {
    /// Widening degree `Y`.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.y
    }

    /// Initiation interval of the lowered schedule.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Spill operations in the lowered code (stores + reloads).
    #[must_use]
    pub fn spill_ops(&self) -> u32 {
        self.spill_ops
    }

    /// Lowered instructions (all rows).
    #[must_use]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Pre-resolved operand descriptors.
    #[must_use]
    pub fn num_operands(&self) -> usize {
        self.operands.len()
    }

    /// Rough in-memory footprint, for store budgeting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.len() * 4
            + self.insts.len() * std::mem::size_of::<Inst>()
            + self.operands.len() * std::mem::size_of::<OperandDesc>()
            + self.reg_table.len() * 4
            + self.mem_nodes.len() * 8
    }

    /// Executes the program for `trip` original iterations: prologue,
    /// parameterized kernel re-entry per block, epilogue. The returned
    /// run is bitwise identical to the interpreter's on the same
    /// compiled loop.
    ///
    /// Programs without owner probes (`track_owners == false`) run
    /// **block-major**: no observable depends on wall-clock interleaving
    /// — ring writes land before every cross-block read (`delta ≥ 1`
    /// producers execute in earlier blocks, same-block reads follow row
    /// order), memory regions are private per original operation, and
    /// checksums fold by XOR — so whole blocks execute back to back
    /// without the per-cycle window bookkeeping. Programs with owner
    /// probes replay the interpreter's exact cycle order, because
    /// forwarded-read counting observes machine *timing*.
    ///
    /// # Panics
    ///
    /// Panics if `trip` is zero.
    #[must_use]
    pub fn exec(&self, trip: u64) -> WideRun {
        assert!(trip > 0, "trip count must be positive");
        let y = u64::from(self.y);
        let y_us = self.y as usize;
        let ii = u64::from(self.ii);
        let max_t = u64::from(self.max_t);
        let blocks = trip.div_ceil(y);
        let total_cycles = ii * (blocks - 1) + max_t + 1;

        // Ring stride per final node, in f64 cells.
        let stride = self.ring_depth as usize * y_us;
        let mut st = ExecState {
            trip,
            y,
            y_us,
            k: u64::from(self.k),
            k_us: self.k as usize,
            stride,
            dmask: self.ring_depth as usize - 1,
            rings: vec![0.0f64; self.num_final as usize * stride],
            owners: vec![(u32::MAX, u64::MAX); self.registers as usize],
            owner_commits: Vec::new(),
            checksums: vec![0u64; self.num_original as usize],
            memory: Memory::from_layout(self.num_original as usize, &self.mem_nodes, trip),
            wide_inputs: Vec::new(),
            stats: SimStats {
                blocks,
                steady_state_cycles: ii * blocks,
                ..SimStats::default()
            },
        };

        // Steady-state guards, one per instruction: full blocks at or
        // past the guard take the uniform fast path.
        let guards: Vec<u64> = self.insts.iter().map(|i| self.steady_guard(i)).collect();

        if self.track_owners {
            self.exec_cycle_major(&mut st, &guards, blocks, total_cycles);
        } else {
            self.exec_block_major(&mut st, &guards, blocks);
        }
        st.stats.cycles = total_cycles;

        WideRun {
            memory: st.memory,
            checksums: st.checksums,
            stats: st.stats,
        }
    }

    /// The interpreter's exact issue order: cycles outermost, the active
    /// block window within a cycle, owner updates committed at end of
    /// cycle. Required whenever forwarded-read counting is in play.
    fn exec_cycle_major(&self, st: &mut ExecState, guards: &[u64], blocks: u64, total_cycles: u64) {
        let ii = u64::from(self.ii);
        let max_t = u64::from(self.max_t);
        // Active block window, maintained incrementally: `raw_hi` is
        // `t / ii` and `b_lo` is `⌈(t − max_t) / ii⌉`, each bumped at
        // its next crossing cycle instead of divided out every cycle.
        let mut raw_hi = 0u64;
        let mut hi_next = ii;
        let mut b_lo = 0u64;
        let mut lo_next = max_t + 1;
        for t in 0..total_cycles {
            if t == hi_next {
                raw_hi += 1;
                hi_next += ii;
            }
            if t == lo_next {
                b_lo += 1;
                lo_next += ii;
            }
            let b_hi = raw_hi.min(blocks - 1);
            st.owner_commits.clear();
            for b in b_lo..=b_hi {
                let row = (t - ii * b) as usize;
                let (lo, hi) = (self.rows[row] as usize, self.rows[row + 1] as usize);
                st.stats.issued_ops += (hi - lo) as u64;
                for (inst, &guard) in self.insts[lo..hi].iter().zip(&guards[lo..hi]) {
                    run_inst(self, st, inst, guard, b);
                }
            }
            // Commit phase: register ownership changes land after every
            // read of the cycle, exactly like the interpreter.
            for i in 0..st.owner_commits.len() {
                let (reg, node, block) = st.owner_commits[i];
                st.owners[reg as usize] = (node, block);
            }
        }
    }

    /// Block-major execution for programs with no owner probes: every
    /// block runs its rows back to back, so the per-cycle window and
    /// commit bookkeeping disappear entirely.
    fn exec_block_major(&self, st: &mut ExecState, guards: &[u64], blocks: u64) {
        // Instructions are stored row-bucketed, so one pass over the
        // flat array IS a block's rows in issue order.
        st.stats.issued_ops += self.insts.len() as u64 * blocks;
        for b in 0..blocks {
            for (inst, &guard) in self.insts.iter().zip(guards) {
                run_inst(self, st, inst, guard, b);
            }
        }
    }

    /// The steady-state guard of one instruction: block `b` of the
    /// instruction may take the uniform fast path iff the block is full
    /// (no masked lanes) and `b >= guard`. `u64::MAX` marks instructions
    /// with no uniform shape at any block.
    ///
    /// An instruction is uniform when every lane reads each operand from
    /// the *same* producer ring entry at consecutive lanes (`lane ==
    /// slot`, equal `delta`) in an uncounted mode — exactly the shape a
    /// wide consumer of wide producers has when the dependence distance
    /// is a multiple of `Y`. Past the guard block no operand reads the
    /// live-in stream and no block-delta subtraction can underflow, so
    /// the per-lane `neg_until` and mode branches vanish.
    fn steady_guard(&self, inst: &Inst) -> u64 {
        let InstOp::Compute {
            first_lane,
            lanes,
            ops_start,
            ops_per_lane,
            ..
        } = inst.op
        else {
            return u64::MAX;
        };
        let npl = ops_per_lane as usize;
        if first_lane != 0
            || lanes != self.y
            || self.y as usize > MAX_UNIFORM_Y
            || npl > MAX_UNIFORM_OPS
        {
            return u64::MAX;
        }
        let start = ops_start as usize;
        let descs = &self.operands[start..start + npl * lanes as usize];
        let mut guard = 0u64;
        for p in 0..npl {
            let od0 = &descs[p];
            for slot in 0..lanes as usize {
                let od = &descs[slot * npl + p];
                if !matches!(od.mode, ReadMode::Strict | ReadMode::SpillServed)
                    || od.producer != od0.producer
                    || od.delta != od0.delta
                    || od.lane != slot as u32
                {
                    return u64::MAX;
                }
                guard = guard.max(u64::from(od.neg_until)).max(u64::from(od.delta));
            }
        }
        guard
    }
}

/// The mutable machine state of one [`WideProgram::exec`] run, shared by
/// the cycle-major and block-major drivers.
struct ExecState {
    trip: u64,
    y: u64,
    y_us: usize,
    k: u64,
    k_us: usize,
    /// Ring stride per final node, in f64 cells.
    stride: usize,
    dmask: usize,
    rings: Vec<f64>,
    owners: Vec<(u32, u64)>,
    owner_commits: Vec<(u32, u32, u64)>,
    checksums: Vec<u64>,
    memory: Memory,
    /// Cold overflow staging for unusually fat operations; small
    /// arities use a stack buffer in [`run_inst`].
    wide_inputs: Vec<f64>,
    stats: SimStats,
}

/// Executes one instruction's instance at block `b` against `st`.
#[inline(always)]
fn run_inst(p: &WideProgram, st: &mut ExecState, inst: &Inst, guard: u64, b: u64) {
    let ring_slot = (b as usize & st.dmask) * st.y_us;
    match inst.op {
        InstOp::SpillStore => {
            st.stats.spill_slot_accesses += 1;
        }
        InstOp::SpillReload { distance, lt } => {
            if b >= u64::from(distance) {
                st.stats.spill_slot_accesses += 1;
            }
            if p.track_owners {
                let reg = p.reg_table[lt as usize * st.k_us + (b % st.k) as usize];
                st.owner_commits.push((reg, inst.node, b));
            }
        }
        InstOp::Compute {
            original,
            op,
            produces,
            first_lane,
            lanes,
            ops_start,
            ops_per_lane,
            lt,
        } => {
            let base = inst.node as usize * st.stride + ring_slot;
            let npl = ops_per_lane as usize;
            let lanes_us = lanes as usize;
            // Masked lanes are a suffix of the instance (iteration
            // grows with the lane slot), so the live lanes are exactly
            // `0..live`.
            let i0 = st.y * b + u64::from(first_lane);
            let live = if i0 >= st.trip {
                0
            } else {
                (st.trip - i0).min(u64::from(lanes)) as usize
            };
            if live < lanes_us {
                st.stats.masked_lanes += (lanes_us - live) as u64;
                if produces {
                    st.rings[base + live..base + lanes_us].fill(0.0);
                }
            }
            if live == lanes_us && b >= guard {
                // Uniform steady-state instance: every lane reads the
                // same producer ring contiguously, so the lane loop
                // runs with const-known arity and semantics.
                let descs = &p.operands[ops_start as usize..ops_start as usize + npl];
                let mut cell = SteadyCell {
                    op,
                    original,
                    produces,
                    base,
                    b,
                    i0,
                    y: st.y_us,
                    stride: st.stride,
                    dmask: st.dmask,
                    rings: &mut st.rings,
                    checksums: &mut st.checksums,
                    memory: &mut st.memory,
                };
                match npl {
                    0 => cell.lanes::<0>(descs),
                    1 => cell.lanes::<1>(descs),
                    2 => cell.lanes::<2>(descs),
                    3 => cell.lanes::<3>(descs),
                    _ => cell.lanes::<MAX_UNIFORM_OPS>(descs),
                }
            } else {
                let mut buf = [0.0f64; 8];
                for slot in 0..live {
                    let i = i0 + slot as u64;
                    let ops = ops_start as usize + slot * npl;
                    let descs = &p.operands[ops..ops + npl];
                    let inputs: &[f64] = if npl <= buf.len() {
                        for (x, od) in buf[..npl].iter_mut().zip(descs) {
                            *x = read_operand(
                                od,
                                b,
                                i,
                                st.stride,
                                st.dmask,
                                st.y_us,
                                st.k,
                                &st.rings,
                                &p.reg_table,
                                &st.owners,
                                &mut st.stats,
                            );
                        }
                        &buf[..npl]
                    } else {
                        st.wide_inputs.clear();
                        for od in descs {
                            let v = read_operand(
                                od,
                                b,
                                i,
                                st.stride,
                                st.dmask,
                                st.y_us,
                                st.k,
                                &st.rings,
                                &p.reg_table,
                                &st.owners,
                                &mut st.stats,
                            );
                            st.wide_inputs.push(v);
                        }
                        &st.wide_inputs
                    };
                    let value = match op {
                        OpKind::Load => {
                            let cell = st.memory.read(NodeId(original), i);
                            semantics::squash(cell + inputs.iter().sum::<f64>())
                        }
                        OpKind::Store => {
                            let v = semantics::eval_op(OpKind::Store, inputs, original, i as i64);
                            st.memory.write(NodeId(original), i, v);
                            v
                        }
                        kind => semantics::eval_op(kind, inputs, original, i as i64),
                    };
                    st.checksums[original as usize] ^= checksum_step(i, value);
                    if produces {
                        st.rings[base + slot] = value;
                    }
                }
            }
            if produces && p.track_owners {
                let reg = p.reg_table[lt as usize * st.k_us + (b % st.k) as usize];
                st.owner_commits.push((reg, inst.node, b));
            }
        }
    }
}

/// Widest instance the uniform fast path handles; wider programs fall
/// back to the general lane loop.
const MAX_UNIFORM_Y: usize = 8;

/// Highest per-lane operand count the uniform fast path handles.
const MAX_UNIFORM_OPS: usize = 4;

/// One uniform steady-state instance, borrowed mutable state included:
/// [`SteadyCell::lanes`] executes it with const-known operand arity.
struct SteadyCell<'a> {
    op: OpKind,
    original: u32,
    produces: bool,
    /// Ring base of the produced entry (`node`, block `b`).
    base: usize,
    b: u64,
    /// Iteration of lane 0.
    i0: u64,
    y: usize,
    stride: usize,
    dmask: usize,
    rings: &'a mut Vec<f64>,
    checksums: &'a mut Vec<u64>,
    memory: &'a mut Memory,
}

impl SteadyCell<'_> {
    /// Executes all `y` lanes: resolves each operand's ring offset once
    /// (lane `j` reads `offset + j` — the uniformity guarantee), then
    /// dispatches the operation kind once so every lane loop runs with
    /// both the arity `N` and the semantics known at compile time.
    #[inline(always)]
    fn lanes<const N: usize>(&mut self, descs: &[OperandDesc]) {
        let mut offs = [0usize; N];
        for (o, od) in offs.iter_mut().zip(descs) {
            let beta = (self.b - u64::from(od.delta)) as usize;
            *o = od.producer as usize * self.stride + (beta & self.dmask) * self.y;
        }
        // Literal kinds at every call: after inlining, `eval_op`'s
        // dispatch constant-folds away inside each lane loop.
        match self.op {
            OpKind::Load => self.load_lanes::<N>(&offs),
            OpKind::Store => self.store_lanes::<N>(&offs),
            OpKind::FAdd => self.arith_lanes::<N>(OpKind::FAdd, &offs),
            OpKind::FSub => self.arith_lanes::<N>(OpKind::FSub, &offs),
            OpKind::FMul => self.arith_lanes::<N>(OpKind::FMul, &offs),
            OpKind::FDiv => self.arith_lanes::<N>(OpKind::FDiv, &offs),
            OpKind::FSqrt => self.arith_lanes::<N>(OpKind::FSqrt, &offs),
            OpKind::FCopy => self.arith_lanes::<N>(OpKind::FCopy, &offs),
        }
    }

    /// Value-producing arithmetic lanes (`kind` is a literal at every
    /// call site). Writing the produced entry lane by lane cannot alias
    /// a gather: a self-referential operand has `delta ≥ 1`, and rings
    /// are deep enough that `b − delta` masks to a different entry.
    #[inline(always)]
    fn arith_lanes<const N: usize>(&mut self, kind: OpKind, offs: &[usize; N]) {
        let mut ck = 0u64;
        for j in 0..self.y {
            let i = self.i0 + j as u64;
            let mut inputs = [0.0f64; N];
            for (x, o) in inputs.iter_mut().zip(offs) {
                *x = self.rings[o + j];
            }
            let value = semantics::eval_op(kind, &inputs, self.original, i as i64);
            ck ^= checksum_step(i, value);
            if self.produces {
                self.rings[self.base + j] = value;
            }
        }
        self.checksums[self.original as usize] ^= ck;
    }

    /// Load lanes: the `y` cells are contiguous in the region, so the
    /// region is resolved once per instance instead of once per lane.
    #[inline(always)]
    fn load_lanes<const N: usize>(&mut self, offs: &[usize; N]) {
        let i0 = self.i0 as usize;
        let region = self.memory.region(NodeId(self.original));
        let mut cells = [0.0f64; MAX_UNIFORM_Y];
        cells[..self.y].copy_from_slice(&region[i0..i0 + self.y]);
        let mut ck = 0u64;
        for (j, &cell) in cells.iter().enumerate().take(self.y) {
            let i = self.i0 + j as u64;
            // The exact fold the general path performs: cell + Σ inputs,
            // summed from 0.0 in operand order.
            let mut sum = 0.0f64;
            for o in offs {
                sum += self.rings[o + j];
            }
            let value = semantics::squash(cell + sum);
            ck ^= checksum_step(i, value);
            if self.produces {
                self.rings[self.base + j] = value;
            }
        }
        self.checksums[self.original as usize] ^= ck;
    }

    /// Store lanes: one region resolution, contiguous writes.
    #[inline(always)]
    fn store_lanes<const N: usize>(&mut self, offs: &[usize; N]) {
        let i0 = self.i0 as usize;
        let mut ck = 0u64;
        let mut values = [0.0f64; MAX_UNIFORM_Y];
        for (j, slot) in values.iter_mut().enumerate().take(self.y) {
            let i = self.i0 + j as u64;
            let mut inputs = [0.0f64; N];
            for (x, o) in inputs.iter_mut().zip(offs) {
                *x = self.rings[o + j];
            }
            let value = semantics::eval_op(OpKind::Store, &inputs, self.original, i as i64);
            *slot = value;
            ck ^= checksum_step(i, value);
            if self.produces {
                self.rings[self.base + j] = value;
            }
        }
        let region = self.memory.region_mut(NodeId(self.original));
        region[i0..i0 + self.y].copy_from_slice(&values[..self.y]);
        self.checksums[self.original as usize] ^= ck;
    }
}

/// Serves one compiled operand read for consumer iteration `i` in block
/// `b`: the live-in stream before `neg_until`, the producer's value ring
/// otherwise, with forwarding accounted per the descriptor's
/// [`ReadMode`]. Kept out of line so the three call sites in the lane
/// loop share one body, and `#[inline(always)]` so none of them pays a
/// call.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn read_operand(
    od: &OperandDesc,
    b: u64,
    i: u64,
    stride: usize,
    dmask: usize,
    y_us: usize,
    k: u64,
    rings: &[f64],
    reg_table: &[u32],
    owners: &[(u32, u64)],
    stats: &mut SimStats,
) -> f64 {
    if b < u64::from(od.neg_until) {
        return semantics::source_value(od.src, i as i64 - i64::from(od.distance));
    }
    let beta = b - u64::from(od.delta);
    let v =
        rings[od.producer as usize * stride + (beta as usize & dmask) * y_us + od.lane as usize];
    match od.mode {
        ReadMode::Strict | ReadMode::SpillServed => {}
        ReadMode::SpillForward => {
            stats.cross_block_reads += 1;
        }
        ReadMode::ForwardCheck => {
            let reg = reg_table[od.lt as usize * k as usize + (beta % k) as usize];
            if owners[reg as usize] != (od.producer, beta) {
                stats.cross_block_reads += 1;
            }
        }
    }
    v
}
