//! The concrete memory every execution backend runs against.
//!
//! Every memory operation of the **original** loop body owns a private
//! region of `trip` cells; the cell for iteration `i` is `base + i`.
//! Load regions are initialised with the deterministic
//! [`widening_ir::semantics::initial_memory_value`] stream; store
//! regions start zeroed and collect one value per iteration, which makes
//! the final store regions a complete, bitwise-comparable trace of the
//! loop's observable output.
//!
//! Regions are deliberately disjoint: the IR's memory edges are ordering
//! constraints (may-alias), not dataflow, so cross-operation aliasing
//! would make the overlapped wide execution legitimately diverge from
//! the sequential reference wherever the front end merely *failed to
//! prove* independence. Spill traffic does not live here at all — the
//! simulator gives each spill store a private slot ring indexed by
//! iteration.

use widening_ir::{semantics, Ddg, NodeId};

/// Flat memory with one region per original memory operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    data: Vec<f64>,
    /// Region base per original node; `None` for non-memory ops.
    base: Vec<Option<usize>>,
    trip: u64,
}

impl Memory {
    /// Lays out and initialises memory for `trip` iterations of the
    /// original loop `ddg`.
    #[must_use]
    pub fn for_loop(ddg: &Ddg, trip: u64) -> Self {
        let layout: Vec<(u32, bool)> = ddg
            .node_ids()
            .filter(|&v| ddg.op(v).kind().is_memory())
            .map(|v| (v.0, ddg.op(v).kind() == widening_ir::OpKind::Load))
            .collect();
        Memory::from_layout(ddg.num_nodes(), &layout, trip)
    }

    /// Lays out memory from a pre-extracted layout: the memory nodes of
    /// the original loop in ascending node-id order, each flagged
    /// load/store. This is how a self-contained [`crate::WideProgram`]
    /// rebuilds memory without the graph; [`Memory::for_loop`] delegates
    /// here so both constructions are identical by definition.
    #[must_use]
    pub fn from_layout(num_nodes: usize, mem_nodes: &[(u32, bool)], trip: u64) -> Self {
        let trip_len = usize::try_from(trip).expect("trip count fits usize");
        let mut base = vec![None; num_nodes];
        let mut data = Vec::new();
        for &(v, is_load) in mem_nodes {
            base[v as usize] = Some(data.len());
            if is_load {
                data.extend((0..trip_len).map(|i| semantics::initial_memory_value(v, i as i64)));
            } else {
                data.extend(std::iter::repeat_n(0.0, trip_len));
            }
        }
        Memory { data, base, trip }
    }

    /// Number of iterations each region covers.
    #[must_use]
    pub fn trip(&self) -> u64 {
        self.trip
    }

    /// Every cell of every region, in layout order — the raw state a
    /// bitwise backend comparison runs over.
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.data
    }

    /// Reads the cell of memory op `v` for iteration `i`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a memory operation or `i` is out of range.
    #[must_use]
    #[inline]
    pub fn read(&self, v: NodeId, i: u64) -> f64 {
        self.data[self.index(v, i)]
    }

    /// Writes the cell of memory op `v` for iteration `i`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a memory operation or `i` is out of range.
    #[inline]
    pub fn write(&mut self, v: NodeId, i: u64, value: f64) {
        let idx = self.index(v, i);
        self.data[idx] = value;
    }

    /// The region of memory op `v`, one cell per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a memory operation.
    #[must_use]
    pub fn region(&self, v: NodeId) -> &[f64] {
        let b = self.base[v.index()].expect("memory operation");
        &self.data[b..b + self.trip as usize]
    }

    #[inline]
    /// Mutable region of memory op `v`, one cell per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a memory operation.
    pub(crate) fn region_mut(&mut self, v: NodeId) -> &mut [f64] {
        let b = self.base[v.index()].expect("memory operation");
        let trip = self.trip as usize;
        &mut self.data[b..b + trip]
    }

    #[inline]
    fn index(&self, v: NodeId, i: u64) -> usize {
        assert!(
            i < self.trip,
            "iteration {i} out of range (trip {})",
            self.trip
        );
        self.base[v.index()].expect("memory operation") + i as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::{DdgBuilder, OpKind};

    fn ld_st() -> Ddg {
        let mut b = DdgBuilder::new();
        let l = b.load(1);
        let m = b.op(OpKind::FMul);
        let s = b.store(1);
        b.flow(l, m);
        b.flow(m, s);
        b.build().unwrap()
    }

    #[test]
    fn loads_initialised_stores_zeroed() {
        let g = ld_st();
        let m = Memory::for_loop(&g, 8);
        let ld = NodeId(0);
        let st = NodeId(2);
        assert_eq!(m.read(ld, 3), semantics::initial_memory_value(0, 3));
        assert!(m.region(st).iter().all(|&x| x == 0.0));
        assert_eq!(m.region(ld).len(), 8);
    }

    #[test]
    fn writes_land_in_the_right_cell() {
        let g = ld_st();
        let mut m = Memory::for_loop(&g, 4);
        let st = NodeId(2);
        m.write(st, 2, 7.5);
        assert_eq!(m.region(st), &[0.0, 0.0, 7.5, 0.0]);
        assert_eq!(m.read(st, 2), 7.5);
    }

    #[test]
    fn layout_construction_matches_for_loop() {
        let g = ld_st();
        let m = Memory::for_loop(&g, 6);
        let layout = [(0u32, true), (2u32, false)];
        assert_eq!(m, Memory::from_layout(3, &layout, 6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let g = ld_st();
        let m = Memory::for_loop(&g, 4);
        let _ = m.read(NodeId(0), 4);
    }
}
