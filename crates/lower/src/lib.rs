//! **widening-lower** — lowers a compiled+allocated wide loop to a flat,
//! executable register-machine program, for the *Widening Resources*
//! (MICRO 1998) reproduction.
//!
//! The interpreting simulator in `widening-sim` re-derives everything on
//! every issue: it walks the original graph's in-edges, maps operands
//! through the widening outcome, consults the allocator's location table
//! and allocates fresh value vectors per operation. [`lower`] does all of
//! that **once**, at compile time, producing a [`WideProgram`]: per-row
//! instruction streams whose operands are pre-resolved descriptors
//! (producer ring slot, lane index, block delta, read mode) and whose
//! register/slot indices come from a flattened location table. The
//! decode-free [`WideProgram::exec`] loop then replays the schedule's
//! exact issue order — prologue, parameterized kernel re-entry per block,
//! epilogue — and reproduces the interpreter's [`WideRun`] (final memory,
//! per-node checksums and all dynamic counters) **bitwise**.
//!
//! Three compile-time transformations make the executable fast without
//! changing observable behaviour:
//!
//! * lane-crossing forwards (wide-to-wide dependences whose original
//!   distance is not a multiple of `Y`) are compiled to explicit
//!   ring-buffer moves plus a register-owner probe that decides the
//!   `cross_block_reads` counter exactly as the interpreter's register
//!   file would;
//! * spill-slot traffic is compiled away: a slot provably mirrors its
//!   victim's value ring, so reloads become owner updates plus slot
//!   counters and consumers read the victim ring directly;
//! * trip-count and ragged-tail handling stay runtime parameters of
//!   `exec`, so one lowered program serves every trip count (the
//!   cross-trip batching the `transients` experiment relies on).
//!
//! The crate also owns the execution substrate both backends share —
//! [`Memory`], [`checksum_step`], [`SimStats`] and [`WideRun`] — so the
//! interpreter (`widening-sim`) can depend on this crate and compare
//! runs without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod memory;
pub mod program;
mod stats;

pub use memory::Memory;
pub use program::{lower, WideProgram};
pub use stats::{checksum_step, SimStats, WideRun};
