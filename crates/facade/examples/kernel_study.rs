//! Kernel study: which loops benefit from widening, and which do not.
//!
//! Runs every named kernel through the pipeline on the equal-peak ×4
//! family (4w1 / 2w2 / 1w4) and prints cycles per original iteration.
//! Vectorizable kernels (DAXPY, FIR) ride the wide units; recurrences
//! (Horner, linear recurrence) and strided accesses (column walks) are
//! the paper's "non-compactable" cases that pin pure widening down.
//!
//! ```sh
//! cargo run --release --example kernel_study
//! ```

use widening_resources::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let configs: Vec<Configuration> = ["4w1(64:1)", "2w2(64:1)", "1w4(64:1)"]
        .iter()
        .map(|s| s.parse())
        .collect::<Result<_, _>>()?;

    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>10}   notes",
        "kernel", "ops", "4w1", "2w2", "1w4"
    );
    for kernel in kernels::all() {
        let mut cells = Vec::new();
        let mut packed_at_4 = 0.0;
        for cfg in &configs {
            let wide = widen(kernel.ddg(), cfg.widening());
            if cfg.widening() == 4 {
                packed_at_4 = wide.packed_fraction();
            }
            let out = schedule_with_registers(
                wide.ddg(),
                cfg,
                CycleModel::Cycles4,
                &Default::default(),
                &SpillOptions::default(),
            )?;
            cells.push(f64::from(out.schedule.ii()) / f64::from(cfg.widening()));
        }
        let note = if kernel.ddg().recurrence_nodes().is_empty() {
            if packed_at_4 < 1.0 {
                "partly compactable"
            } else {
                "fully compactable"
            }
        } else {
            "recurrence-bound"
        };
        println!(
            "{:<18} {:>6} {:>10.2} {:>10.2} {:>10.2}   {} ({}% packed at Y=4)",
            kernel.name(),
            kernel.ddg().num_nodes(),
            cells[0],
            cells[1],
            cells[2],
            note,
            (packed_at_4 * 100.0) as u32,
        );
    }
    println!();
    println!("cycles per original iteration; lower is better.");
    Ok(())
}
