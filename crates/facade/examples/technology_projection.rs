//! Technology projection: the best buildable core, 1998 → 2010.
//!
//! For each SIA'94 generation, finds the implementable configuration
//! (FPUs + register file within 20% of the die) with the best cost-aware
//! speed-up on a reduced corpus — the analysis of the paper's Figure 9,
//! condensed to one winner per generation.
//!
//! ```sh
//! cargo run --release --example technology_projection
//! ```

use widening_resources::prelude::*;

fn main() {
    let ctx = Context::quick(150);
    let cost = CostModel::paper();
    let base = ctx.eval.baseline_32().total_cycles;

    println!(
        "{:>16} {:>12} {:>9} {:>7} {:>11} {:>14}",
        "technology", "winner", "speed-up", "die %", "cycle time", "latency model"
    );
    for tech in &Technology::ALL {
        let mut best: Option<(f64, _)> = None;
        for point in cost.implementable_configurations(tech, 16) {
            let eval =
                ctx.eval
                    .scheduled(&point.config, point.cycle_model, &EvalOptions::default());
            if !eval.is_complete() {
                continue;
            }
            let speedup = base / (eval.total_cycles * point.relative_cycle_time);
            if best.as_ref().is_none_or(|(s, _)| speedup > *s) {
                best = Some((speedup, point));
            }
        }
        let (speedup, point) = best.expect("every generation builds something");
        println!(
            "{:>16} {:>12} {:>9.2} {:>7.1} {:>11.2} {:>14}",
            tech.to_string(),
            point.config.to_string(),
            speedup,
            cost.die_fraction(&point.config, tech) * 100.0,
            point.relative_cycle_time,
            point.cycle_model.to_string(),
        );
    }
    println!();
    println!("expected shape (paper §6): winners pair a small replication degree");
    println!("with a small widening degree; neither extreme ever wins.");
}
