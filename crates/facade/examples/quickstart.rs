//! Quickstart: pipeline one loop end to end.
//!
//! Builds the DAXPY kernel, widens it, software-pipelines it on two
//! machines, and prints performance and hardware cost side by side.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use widening_resources::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y[i] = a * x[i] + y[i] — 3 memory accesses, 2 FP operations.
    let daxpy = kernels::daxpy();
    println!("loop: {daxpy}");

    let cost = CostModel::paper();
    for spec in ["1w1(64:1)", "2w1(64:1)", "1w2(64:1)", "2w2(64:1)"] {
        let cfg: Configuration = spec.parse()?;

        // 1. The widening transform packs compactable operations.
        let wide = widen(daxpy.ddg(), cfg.widening());

        // 2. Lower bounds, then the full schedule → allocate → spill
        //    pipeline.
        let bounds = MiiBounds::compute(wide.ddg(), &cfg, CycleModel::Cycles4);
        let out = schedule_with_registers(
            wide.ddg(),
            &cfg,
            CycleModel::Cycles4,
            &Default::default(),
            &SpillOptions::default(),
        )?;

        // 3. Cost model: area and cycle time.
        let point = cost.design_point(&cfg);

        // One widened iteration covers `Y` original iterations.
        let cycles_per_iter = f64::from(out.schedule.ii()) / f64::from(cfg.widening());
        println!(
            "{spec:>10}: II={} (MII {}), {:.2} cycles/iter, {} regs, \
             area {:.0}e6 l^2, cycle time {:.2}x",
            out.schedule.ii(),
            bounds.mii(),
            cycles_per_iter,
            out.allocation.registers_used(),
            point.area / 1e6,
            point.relative_cycle_time,
        );
    }
    println!();
    println!("note how 1w2 matches 2w1's throughput at a fraction of the cost:");
    println!("that asymmetry, priced over a whole corpus, is the paper's thesis.");
    Ok(())
}
