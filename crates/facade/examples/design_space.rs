//! Design-space sweep: the performance/area frontier.
//!
//! Evaluates every `XwY(Z:n)` point up to peak factor ×8 on a reduced
//! corpus, prices it with the paper's cost models, and prints the points
//! on the cost-aware Pareto frontier — a miniature of the analysis behind
//! the paper's Figures 8 and 9.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use widening_resources::prelude::*;

fn main() {
    let ctx = Context::quick(150);
    let cost = CostModel::paper();
    let base = ctx.eval.baseline_32().total_cycles;

    // Evaluate the whole ×8 design space.
    let mut points: Vec<(Configuration, f64, f64)> = Vec::new(); // (cfg, speedup, area)
    for cfg in CostModel::design_space(8) {
        let tc = cost.relative_cycle_time(&cfg);
        let model = CycleModel::for_relative_cycle_time(tc);
        let eval = ctx.eval.scheduled(&cfg, model, &EvalOptions::default());
        if !eval.is_complete() {
            continue; // register pressure unresolvable: not a buildable point
        }
        let speedup = base / (eval.total_cycles * tc);
        points.push((cfg, speedup, cost.total_area(&cfg)));
    }

    // Pareto frontier: no other point is both faster and smaller.
    let mut frontier: Vec<&(Configuration, f64, f64)> = points
        .iter()
        .filter(|(_, s, a)| !points.iter().any(|(_, s2, a2)| *s2 > *s && *a2 <= *a))
        .collect();
    frontier.sort_by(|x, y| x.2.partial_cmp(&y.2).expect("finite areas"));

    println!(
        "{:>12} {:>9} {:>16} {:>7}",
        "config", "speed-up", "area (e6 l^2)", "mix?"
    );
    for (cfg, s, a) in frontier {
        let mixed = cfg.replication() > 1 && cfg.widening() > 1;
        println!(
            "{:>12} {:>9.2} {:>16.0} {:>7}",
            cfg.to_string(),
            s,
            a / 1e6,
            if mixed { "yes" } else { "-" }
        );
    }
    println!();
    println!(
        "{} of {} evaluated points survive on the frontier; the paper's claim is",
        points
            .iter()
            .filter(|(_, s, a)| !points.iter().any(|(_, s2, a2)| s2 > s && a2 <= a))
            .count(),
        points.len()
    );
    println!("that mixed replication+widening designs dominate its upper half.");
}
