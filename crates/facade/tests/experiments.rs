//! Experiment smoke tests on a reduced corpus: every registered
//! experiment runs, produces well-formed reports, and preserves the
//! paper's qualitative conclusions.

use widening::experiments::{self, Context};

fn ctx() -> Context {
    Context::quick(40)
}

#[test]
fn every_registered_experiment_runs() {
    let ctx = ctx();
    for name in experiments::ALL {
        let reports =
            experiments::run(name, &ctx).unwrap_or_else(|| panic!("{name} not in registry"));
        for r in &reports {
            assert!(!r.title.is_empty());
            assert!(!r.rows.is_empty(), "{name} produced an empty table");
            for row in &r.rows {
                assert_eq!(row.len(), r.columns.len(), "{name}: ragged row");
            }
            // CSV and Display renderings never panic and stay consistent.
            let csv = r.to_csv();
            assert_eq!(csv.lines().count(), r.rows.len() + 1);
            assert!(r.to_string().contains(&r.title));
        }
    }
}

#[test]
fn headline_conclusion_holds_on_the_small_corpus() {
    // The paper's §6: with cost accounted, 4w2(128) beats 8w1(128).
    let ctx = ctx();
    let r = experiments::fig8d(&ctx);
    let speed = |cfg: &str| -> f64 {
        r.rows
            .iter()
            .find(|row| row[0] == cfg)
            .and_then(|row| row[1].parse().ok())
            .unwrap_or(0.0)
    };
    let best_mixed = speed("4w2(128:4)").max(speed("2w4(128:2)"));
    assert!(
        best_mixed > speed("8w1(128:8)"),
        "a mixed design must beat pure replication under the cost model"
    );
    assert!(
        best_mixed > speed("1w8(128:1)"),
        "a mixed design must beat pure widening under the cost model"
    );
}

#[test]
fn fig9_winners_mix_replication_and_widening() {
    let ctx = ctx();
    let r = experiments::fig9(&ctx);
    // In the last two technology generations, at least half the top-5
    // combine X > 1 with Y > 1.
    let late: Vec<&Vec<String>> = r
        .rows
        .iter()
        .filter(|row| row[0].contains("2007") || row[0].contains("2010"))
        .collect();
    assert_eq!(late.len(), 10);
    let mixed = late
        .iter()
        .filter(|row| {
            let cfg: widening::machine::Configuration = row[2].parse().unwrap();
            cfg.replication() > 1 && cfg.widening() > 1
        })
        .count();
    assert!(mixed >= 5, "only {mixed}/10 late winners are mixed designs");
}

#[test]
fn peak_speedups_are_monotone_in_hardware_factor() {
    let ctx = ctx();
    let r = experiments::fig2(&ctx);
    // Within the pure-replication family the speed-up never decreases.
    let mut prev = 0.0f64;
    for row in r.rows.iter().filter(|row| row[1].ends_with("w1")) {
        let s: f64 = row[2].parse().unwrap();
        assert!(s >= prev - 1e-9, "replication curve dipped at {row:?}");
        prev = s;
    }
}

#[test]
fn quick_and_paper_contexts_share_structure() {
    // The reduced corpus must preserve the class mix (same generator,
    // same seed stream) so quick runs are predictive.
    let quick = Context::quick(60);
    let loops = quick.eval.loops();
    let names: Vec<&str> = loops.iter().map(|l| l.name()).collect();
    assert!(names.iter().any(|n| n.starts_with("vec_")));
    assert!(names.iter().any(|n| n.starts_with("reduce_")));
    assert!(names.iter().any(|n| n.starts_with("divsqrt_")));
}
