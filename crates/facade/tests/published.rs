//! Golden tests against the paper's published numbers: everything the
//! text states exactly must reproduce exactly; calibrated models must
//! stay inside their documented tolerance.

use widening::cost::{CostModel, Technology, ACCESS_TIMES, IMPLEMENTABLE_BUDGET};
use widening::machine::{Configuration, CycleModel};

#[test]
fn table1_roadmap_is_exact() {
    let expected: [(u32, f64, f64, f64); 5] = [
        (1998, 0.25, 300.0, 4800.0),
        (2001, 0.18, 360.0, 11111.0),
        (2004, 0.13, 430.0, 25443.0),
        (2007, 0.10, 520.0, 52000.0),
        (2010, 0.07, 620.0, 126530.6),
    ];
    for (t, (year, lambda, size, chip)) in Technology::ALL.iter().zip(expected) {
        assert_eq!(t.year, year);
        assert_eq!(t.lambda_um, lambda);
        assert_eq!(t.chip_mm2, size);
        assert!((t.lambda2_per_chip() / 1e6 - chip).abs() < 1.0);
    }
}

#[test]
fn table2_cell_areas_are_exact() {
    let m = CostModel::paper();
    let cell = m.area_model().cell();
    let expect = [
        ((1u32, 1u32), 2050.0),
        ((2, 1), 2624.0),
        ((5, 3), 13122.0),
        ((10, 6), 45820.0),
        ((20, 12), 145976.0),
    ];
    for ((r, w), area) in expect {
        assert_eq!(
            cell.area(widening::machine::PortCounts {
                reads: r,
                writes: w
            }),
            area
        );
    }
}

#[test]
fn table3_rf_areas_are_exact() {
    let m = CostModel::paper();
    let expect = [
        ("4w1(64:1)", 598.0),
        ("2w2(64:1)", 375.0),
        ("1w4(64:1)", 215.0),
    ];
    for (s, want) in expect {
        let cfg: Configuration = s.parse().unwrap();
        let got = m.area_model().rf_area(&cfg) / 1e6;
        assert!((got - want).abs() < 1.0, "{s}: {got} vs {want}");
    }
}

#[test]
fn table4_fit_within_documented_tolerance() {
    let m = CostModel::paper();
    let (max, mean) = m.timing_model().fit_error();
    assert!(max < 0.06, "worst-case {max}");
    assert!(mean < 0.025, "mean {mean}");
    // Spot-check the §5.2 examples within fit tolerance.
    for (s, want) in [("2w4(32:1)", 1.85), ("2w4(128:1)", 2.09)] {
        let cfg: Configuration = s.parse().unwrap();
        let got = m.relative_cycle_time(&cfg);
        assert!((got - want).abs() / want < 0.06, "{s}: {got} vs {want}");
    }
    // And the full table stays ordered like the paper's columns.
    for rows in ACCESS_TIMES.chunks(4) {
        for pair in rows.windows(2) {
            let a: Configuration =
                Configuration::monolithic(pair[0].buses, pair[0].width, pair[0].registers).unwrap();
            let b: Configuration =
                Configuration::monolithic(pair[1].buses, pair[1].width, pair[1].registers).unwrap();
            assert!(m.relative_cycle_time(&a) < m.relative_cycle_time(&b));
        }
    }
}

#[test]
fn table5_anchor_configurations() {
    let m = CostModel::paper();
    // First implementable generation for the pure-replication family at
    // 32 registers, straight from the paper's symbols.
    let anchors = [
        ("2w1(32:1)", 0.25),
        ("4w1(32:1)", 0.18),
        ("8w1(32:1)", 0.13),
        ("16w1(32:1)", 0.07),
    ];
    for (s, first) in anchors {
        let cfg: Configuration = s.parse().unwrap();
        let got = Technology::ALL
            .iter()
            .find(|t| m.is_implementable(&cfg, t))
            .unwrap_or_else(|| panic!("{s} never implementable"));
        assert_eq!(got.lambda_um, first, "{s}");
    }
    // The paper's "5" symbol: 16w1 with 256 registers fits nowhere.
    let never: Configuration = "16w1(256:1)".parse().unwrap();
    assert!(Technology::ALL
        .iter()
        .all(|t| !m.is_implementable(&never, t)));
}

#[test]
fn table6_cycle_models_are_exact() {
    use widening::ir::OpKind::*;
    let rows = [
        (CycleModel::Cycles4, [1, 4, 19, 27]),
        (CycleModel::Cycles3, [1, 3, 15, 21]),
        (CycleModel::Cycles2, [1, 2, 10, 14]),
        (CycleModel::Cycles1, [1, 1, 5, 7]),
    ];
    for (m, [st, pip, div, sqrt]) in rows {
        assert_eq!(m.latency(Store), st);
        assert_eq!(m.latency(FAdd), pip);
        assert_eq!(m.latency(Load), pip);
        assert_eq!(m.latency(FDiv), div);
        assert_eq!(m.latency(FSqrt), sqrt);
    }
}

#[test]
fn section6_area_claim_direction() {
    // §6: 4w2(128) occupies ~81% of 8w1(128)'s area. Our extrapolated
    // 40R+24W cell is larger than the authors' (see EXPERIMENTS.md), so
    // we land near 71% — the direction and magnitude class must hold.
    let m = CostModel::paper();
    let a = m.total_area(&"4w2(128:1)".parse().unwrap());
    let b = m.total_area(&"8w1(128:1)".parse().unwrap());
    let ratio = a / b;
    assert!((0.6..0.9).contains(&ratio), "ratio {ratio}");
}

#[test]
fn die_budget_constant_matches_section_5_1() {
    assert_eq!(IMPLEMENTABLE_BUDGET, 0.20);
}
