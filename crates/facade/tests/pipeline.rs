//! Cross-crate integration: the staged widen → MII → schedule →
//! allocate → spill pipeline (`widening-pipeline`) on the named
//! kernels, checked against hand-derived expectations.

use widening_resources::prelude::*;

fn run(l: &widening::ir::Loop, cfg: &Configuration) -> CompiledLoop {
    compile_ddg(
        l.ddg(),
        &PointSpec::scheduled(cfg, CycleModel::Cycles4, CompileOptions::default()),
    )
    .unwrap_or_else(|e| panic!("{} on {cfg}: {e}", l.name()))
}

#[test]
fn daxpy_on_the_baseline_machine() {
    // 3 memory ops on 1 bus → II = 3; trivial register needs.
    let out = run(&kernels::daxpy(), &"1w1(32:1)".parse().unwrap());
    assert_eq!(out.ii(), 3);
    assert_eq!(out.spill_ops(), 0);
    assert!(out.registers_used() <= 8);
}

#[test]
fn daxpy_speeds_up_with_replication_and_widening() {
    let daxpy = kernels::daxpy();
    let base = run(&daxpy, &"1w1(64:1)".parse().unwrap()).ii() as f64;
    // 2w1: 3 mem / 2 buses → II 2.
    let repl = run(&daxpy, &"2w1(64:1)".parse().unwrap()).ii() as f64;
    assert_eq!(repl, 2.0);
    // 1w2: II 3 per 2 iterations → 1.5 cycles/iteration.
    let wide = run(&daxpy, &"1w2(64:1)".parse().unwrap()).ii() as f64 / 2.0;
    assert_eq!(wide, 1.5);
    assert!(repl < base && wide < base);
}

#[test]
fn dot_product_is_recurrence_bound() {
    // The sum recurrence pins II at the add latency regardless of
    // replication.
    let dot = kernels::dot_product();
    for spec in ["4w1(64:1)", "8w1(64:1)"] {
        let out = run(&dot, &spec.parse().unwrap());
        assert_eq!(out.ii(), 4, "{spec}");
        assert!(out.bounds().is_recurrence_bound(), "{spec}");
    }
}

#[test]
fn dot_product_widens_past_its_recurrence() {
    // At width 4 the distance-1 accumulator serialises inside the block
    // (4 adds × 4 cycles = 16 per 4 iterations): still 4 cycles/iter.
    let dot = kernels::dot_product();
    let out = run(&dot, &"1w4(64:1)".parse().unwrap());
    assert_eq!(out.ii(), 16);
}

#[test]
fn strided_matvec_resists_widening() {
    // The column walk cannot ride a wide bus: its widened loop keeps one
    // scalar access per lane, so cycles/iteration stay near 1w1's.
    let mv = kernels::matvec_column(64);
    let narrow = run(&mv, &"1w1(64:1)".parse().unwrap()).ii() as f64;
    let wide = run(&mv, &"1w4(64:1)".parse().unwrap()).ii() as f64 / 4.0;
    assert!(
        wide > 0.8 * narrow,
        "widening should barely help a strided walk: {narrow} vs {wide}"
    );
}

#[test]
fn division_kernel_is_bounded_by_unpipelined_units() {
    // One divide per iteration, occupancy 19, two FPUs → II = 10.
    let out = run(&kernels::vector_divide(), &"1w1(64:1)".parse().unwrap());
    assert_eq!(out.ii(), 10);
}

#[test]
fn every_kernel_schedules_on_every_small_machine() {
    for kernel in kernels::all() {
        for spec in [
            "1w1(64:1)",
            "2w1(64:1)",
            "1w2(64:1)",
            "2w2(128:1)",
            "4w2(128:1)",
        ] {
            let cfg: Configuration = spec.parse().unwrap();
            let out = run(&kernel, &cfg);
            assert!(out.registers_used() <= cfg.registers());
            // The artifact carries its own MII stage: no separate
            // widen + bound recomputation needed.
            let mii = out.bounds().mii();
            assert!(out.ii() >= mii);
            assert!(
                out.ii() <= mii.max(2) * 3,
                "{} on {spec}: II {} vs MII {mii}",
                kernel.name(),
                out.ii()
            );
        }
    }
}

#[test]
fn spill_appears_exactly_when_the_file_shrinks() {
    // FIR with 5 taps on a fast machine: generous file → no spill;
    // 4-register file → spill or failure, never silent overflow.
    let fir = kernels::fir5();
    let big = run(&fir, &"4w1(256:1)".parse().unwrap());
    assert_eq!(big.spill_ops(), 0);
    let tiny: Configuration = "4w1(32:1)".parse().unwrap();
    match compile_ddg(
        fir.ddg(),
        &PointSpec::scheduled(&tiny, CycleModel::Cycles4, CompileOptions::default()),
    ) {
        Ok(out) => assert!(out.registers_used() <= 32),
        Err(e) => panic!("fir5 must fit 32 registers with spilling: {e}"),
    }
}
