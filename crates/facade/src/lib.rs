//! **widening-resources** — the top-level facade of the *Widening
//! Resources* (MICRO 1998) reproduction.
//!
//! This crate simply re-exports [`widening`], which itself federates the
//! component crates (IR, machine model, scheduler, register allocator,
//! widening transform, the staged `widening-pipeline` compilation
//! driver, cost models, workload, simulator) and hosts the experiment
//! harness. See the repository README for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology and
//! results.
//!
//! ```
//! use widening_resources::prelude::*;
//!
//! let cfg: Configuration = "4w2(128:2)".parse()?;
//! assert_eq!(cfg.factor(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use widening::*;
