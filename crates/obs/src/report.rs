//! The **perf ledger**: a versioned, self-describing machine-readable
//! performance report (`BENCH_<stamp>.json`) plus the noise-aware
//! comparison that gates regressions in CI.
//!
//! Like the binary trace path ([`crate::trace`]), the format is
//! hand-rolled — written and parsed with the tiny [`crate::json`]
//! module, no serde. A report captures four kinds of evidence from one
//! benchmarked run:
//!
//! * **probes** — named wall-time measurements with *all* repetition
//!   samples kept (the comparison takes min-of-N, so noise from a busy
//!   machine inflates samples but rarely deflates the minimum);
//! * **stages** — per-stage latency percentiles straight from the
//!   [`crate::metrics::MetricsRegistry`] histograms;
//! * **counters** — cache/store counters and gauges from the same
//!   registry;
//! * **units** + **fleet** — per-`(loop × config)` wall times and
//!   fleet events (steals, scale-ups/downs, lease expiries) extracted
//!   from recorded span traces.
//!
//! [`compare`] diffs two reports probe-by-probe with a relative
//! threshold *and* an absolute floor, so microsecond-scale jitter on
//! fast probes never trips the gate while a genuine 2× regression on a
//! slow probe always does.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::{self, Value};
use crate::metrics::MetricValue;
use crate::span::SpanKind;
use crate::trace::ProcessTrace;

/// The format tag every report leads with — readers reject anything
/// else before looking at the version.
pub const REPORT_FORMAT: &str = "widening-perf-report";

/// Current report schema version.
pub const REPORT_VERSION: u64 = 1;

/// One named wall-time probe with every repetition's sample, in
/// nanoseconds. The comparison consumes `min(samples_ns)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Probe {
    /// Probe name, e.g. `sweep.wall_ns` or `stage.schedule.sum_ns`.
    pub name: String,
    /// One sample per repetition, nanoseconds.
    pub samples_ns: Vec<u64>,
}

impl Probe {
    /// The best (minimum) sample, `None` when the probe is empty.
    #[must_use]
    pub fn min_ns(&self) -> Option<u64> {
        self.samples_ns.iter().copied().min()
    }
}

/// Per-stage latency summary lifted from a registry histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageLatency {
    /// Metric name, e.g. `store.schedule.latency-ns`.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Median (bucket upper bound), `None` when empty.
    pub p50_ns: Option<u64>,
    /// 90th percentile.
    pub p90_ns: Option<u64>,
    /// 99th percentile.
    pub p99_ns: Option<u64>,
}

/// One `(loop × config)` sweep unit's measured wall time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitSample {
    /// Corpus loop index.
    pub loop_index: u32,
    /// Configuration replication factor `X`.
    pub replication: u32,
    /// Configuration width factor `Y`.
    pub width: u32,
    /// Register-file size `Z`; `None` for peak (unscheduled) points.
    pub registers: Option<u32>,
    /// Measured wall time, nanoseconds.
    pub wall_ns: u64,
}

/// Fleet-event totals counted from recorded span traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetEvents {
    /// Claimed steal batches (`steal-claim` instants).
    pub steals: u64,
    /// Published steal offers (`steal-offer` instants).
    pub steal_offers: u64,
    /// Autoscale spawns (`scale-up` instants).
    pub scale_ups: u64,
    /// Early retirements (`scale-down` instants).
    pub scale_downs: u64,
    /// Expired-lease requeues (`lease-expired` instants).
    pub lease_expiries: u64,
    /// Worker respawns after crashes (`respawn` instants).
    pub respawns: u64,
}

impl FleetEvents {
    /// True when no fleet event was observed (e.g. an in-process run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// A complete perf report: the unit of the repo's bench trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfReport {
    /// Free-form provenance (host, threads, quick level, stamp…).
    pub meta: BTreeMap<String, String>,
    /// Gated wall-time probes (min-of-N comparison).
    pub probes: Vec<Probe>,
    /// Informational per-stage latency percentiles.
    pub stages: Vec<StageLatency>,
    /// Informational cache/store counters and gauges.
    pub counters: BTreeMap<String, u64>,
    /// Per-unit wall times (calibration input).
    pub units: Vec<UnitSample>,
    /// Fleet-event totals.
    pub fleet: FleetEvents,
}

impl PerfReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Probe lookup by name.
    #[must_use]
    pub fn probe(&self, name: &str) -> Option<&Probe> {
        self.probes.iter().find(|p| p.name == name)
    }

    /// Appends one sample to the named probe, creating it on first use.
    pub fn push_sample(&mut self, name: &str, wall_ns: u64) {
        match self.probes.iter_mut().find(|p| p.name == name) {
            Some(p) => p.samples_ns.push(wall_ns),
            None => self.probes.push(Probe {
                name: name.to_string(),
                samples_ns: vec![wall_ns],
            }),
        }
    }

    /// Fills `stages` and `counters` from a metrics-registry snapshot:
    /// histograms become [`StageLatency`] rows, counters and gauges
    /// land in the counter map. Replaces any previous content.
    pub fn absorb_snapshot(&mut self, snapshot: &[(String, MetricValue)]) {
        self.stages.clear();
        self.counters.clear();
        for (name, value) in snapshot {
            match *value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    self.counters.insert(name.clone(), v);
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    p50,
                    p90,
                    p99,
                } => self.stages.push(StageLatency {
                    name: name.clone(),
                    count,
                    sum_ns: sum,
                    p50_ns: p50,
                    p90_ns: p90,
                    p99_ns: p99,
                }),
            }
        }
    }

    /// Extracts per-unit wall times and fleet-event totals from
    /// recorded span traces (the worker `.trace.bin` files or an
    /// in-process recorder snapshot). Appends to `units`; fleet totals
    /// are summed into `fleet`.
    pub fn absorb_traces(&mut self, traces: &[ProcessTrace]) {
        for trace in traces {
            for track in &trace.tracks {
                for event in &track.events {
                    match event.kind {
                        SpanKind::SweepUnit if !event.is_instant() => {
                            let (x, y, z) = crate::span::unpack_point(event.b);
                            self.units.push(UnitSample {
                                loop_index: u32::try_from(event.a).unwrap_or(u32::MAX),
                                replication: x,
                                width: y,
                                registers: z,
                                wall_ns: event.end_ns.saturating_sub(event.start_ns),
                            });
                        }
                        SpanKind::StealClaim => self.fleet.steals += 1,
                        SpanKind::StealOffer => self.fleet.steal_offers += 1,
                        SpanKind::ScaleUp => self.fleet.scale_ups += 1,
                        SpanKind::ScaleDown => self.fleet.scale_downs += 1,
                        SpanKind::LeaseExpire => self.fleet.lease_expiries += 1,
                        SpanKind::Respawn => self.fleet.respawns += 1,
                        _ => {}
                    }
                }
            }
        }
    }

    /// Serialises the report to its versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("format".into(), Value::String(REPORT_FORMAT.into()));
        root.insert("version".into(), num(REPORT_VERSION));
        root.insert(
            "meta".into(),
            Value::Object(
                self.meta
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                    .collect(),
            ),
        );
        root.insert(
            "probes".into(),
            Value::Array(
                self.probes
                    .iter()
                    .map(|p| {
                        let mut o = BTreeMap::new();
                        o.insert("name".into(), Value::String(p.name.clone()));
                        o.insert(
                            "samples_ns".into(),
                            Value::Array(p.samples_ns.iter().map(|&s| num(s)).collect()),
                        );
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "stages".into(),
            Value::Array(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut o = BTreeMap::new();
                        o.insert("name".into(), Value::String(s.name.clone()));
                        o.insert("count".into(), num(s.count));
                        o.insert("sum_ns".into(), num(s.sum_ns));
                        o.insert("p50_ns".into(), opt_num(s.p50_ns));
                        o.insert("p90_ns".into(), opt_num(s.p90_ns));
                        o.insert("p99_ns".into(), opt_num(s.p99_ns));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "counters".into(),
            Value::Object(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), num(v)))
                    .collect(),
            ),
        );
        root.insert(
            "units".into(),
            Value::Array(
                self.units
                    .iter()
                    .map(|u| {
                        let mut o = BTreeMap::new();
                        o.insert("loop".into(), num(u64::from(u.loop_index)));
                        o.insert("x".into(), num(u64::from(u.replication)));
                        o.insert("y".into(), num(u64::from(u.width)));
                        o.insert("z".into(), opt_num(u.registers.map(u64::from)));
                        o.insert("wall_ns".into(), num(u.wall_ns));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        let mut fleet = BTreeMap::new();
        fleet.insert("steals".into(), num(self.fleet.steals));
        fleet.insert("steal_offers".into(), num(self.fleet.steal_offers));
        fleet.insert("scale_ups".into(), num(self.fleet.scale_ups));
        fleet.insert("scale_downs".into(), num(self.fleet.scale_downs));
        fleet.insert("lease_expiries".into(), num(self.fleet.lease_expiries));
        fleet.insert("respawns".into(), num(self.fleet.respawns));
        root.insert("fleet".into(), Value::Object(fleet));
        Value::Object(root).to_json()
    }

    /// Parses a report from JSON text. Structural corruption, a
    /// foreign format tag or an unknown version are errors — never
    /// panics.
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first problem found.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        let obj = root
            .as_object()
            .ok_or("perf report: root is not an object")?;
        match obj.get("format").and_then(Value::as_str) {
            Some(REPORT_FORMAT) => {}
            Some(other) => return Err(format!("perf report: foreign format tag {other:?}")),
            None => return Err("perf report: missing format tag".into()),
        }
        match obj.get("version").and_then(|v| get_u64(Some(v))) {
            Some(REPORT_VERSION) => {}
            Some(v) => return Err(format!("perf report: unsupported version {v}")),
            None => return Err("perf report: missing version".into()),
        }

        let mut report = PerfReport::new();
        if let Some(meta) = obj.get("meta").and_then(Value::as_object) {
            for (k, v) in meta {
                let s = v
                    .as_str()
                    .ok_or_else(|| format!("meta.{k}: not a string"))?;
                report.meta.insert(k.clone(), s.to_string());
            }
        }
        for (i, p) in obj
            .get("probes")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let name = p
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("probes[{i}]: missing name"))?;
            let samples = p
                .get("samples_ns")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("probes[{i}]: missing samples_ns"))?;
            let samples_ns = samples
                .iter()
                .map(|s| get_u64(Some(s)).ok_or_else(|| format!("probes[{i}]: bad sample")))
                .collect::<Result<Vec<u64>, String>>()?;
            report.probes.push(Probe {
                name: name.to_string(),
                samples_ns,
            });
        }
        for (i, s) in obj
            .get("stages")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            report.stages.push(StageLatency {
                name: s
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("stages[{i}]: missing name"))?
                    .to_string(),
                count: get_u64(s.get("count")).ok_or_else(|| format!("stages[{i}]: bad count"))?,
                sum_ns: get_u64(s.get("sum_ns"))
                    .ok_or_else(|| format!("stages[{i}]: bad sum_ns"))?,
                p50_ns: get_opt_u64(s.get("p50_ns"))
                    .map_err(|e| format!("stages[{i}].p50_ns: {e}"))?,
                p90_ns: get_opt_u64(s.get("p90_ns"))
                    .map_err(|e| format!("stages[{i}].p90_ns: {e}"))?,
                p99_ns: get_opt_u64(s.get("p99_ns"))
                    .map_err(|e| format!("stages[{i}].p99_ns: {e}"))?,
            });
        }
        if let Some(counters) = obj.get("counters").and_then(Value::as_object) {
            for (k, v) in counters {
                let n = get_u64(Some(v)).ok_or_else(|| format!("counters.{k}: bad value"))?;
                report.counters.insert(k.clone(), n);
            }
        }
        for (i, u) in obj
            .get("units")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let field =
                |key: &str| get_u64(u.get(key)).ok_or_else(|| format!("units[{i}]: bad {key}"));
            report.units.push(UnitSample {
                loop_index: field("loop")?.try_into().map_err(|_| "loop out of range")?,
                replication: field("x")?.try_into().map_err(|_| "x out of range")?,
                width: field("y")?.try_into().map_err(|_| "y out of range")?,
                registers: get_opt_u64(u.get("z"))
                    .map_err(|e| format!("units[{i}].z: {e}"))?
                    .map(|z| u32::try_from(z).map_err(|_| "z out of range"))
                    .transpose()?,
                wall_ns: field("wall_ns")?,
            });
        }
        if let Some(fleet) = obj.get("fleet").and_then(Value::as_object) {
            let field = |key: &str| {
                fleet.get(key).map_or(Ok(0), |v| {
                    get_u64(Some(v)).ok_or(format!("fleet.{key}: bad value"))
                })
            };
            report.fleet = FleetEvents {
                steals: field("steals")?,
                steal_offers: field("steal_offers")?,
                scale_ups: field("scale_ups")?,
                scale_downs: field("scale_downs")?,
                lease_expiries: field("lease_expiries")?,
                respawns: field("respawns")?,
            };
        }
        Ok(report)
    }

    /// Writes the report to `path` as JSON.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a report file.
    ///
    /// # Errors
    ///
    /// A human-readable message on I/O failure or a malformed report.
    pub fn read_file(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn num(n: u64) -> Value {
    #[allow(clippy::cast_precision_loss)]
    Value::Number(n as f64)
}

fn opt_num(n: Option<u64>) -> Value {
    n.map_or(Value::Null, num)
}

/// An exact non-negative integer from a parsed JSON number; `None` on
/// anything else (fractions, negatives, non-numbers, > 2⁵³).
fn get_u64(v: Option<&Value>) -> Option<u64> {
    let n = v?.as_f64()?;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_sign_loss,
        clippy::cast_possible_truncation
    )]
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
        Some(n as u64)
    } else {
        None
    }
}

/// Like [`get_u64`] but `null` / absent maps to `Ok(None)`.
fn get_opt_u64(v: Option<&Value>) -> Result<Option<u64>, String> {
    match v {
        None | Some(Value::Null) => Ok(None),
        some => get_u64(some).map(Some).ok_or_else(|| "bad value".into()),
    }
}

/// Noise thresholds for [`compare`]: a candidate probe regresses only
/// when its min-of-N exceeds `base × max_ratio + abs_floor_ns`. The
/// defaults (1.6×, 20 ms) pass same-machine reruns of the quick suite
/// while still flagging any genuine 2× regression on probes slower
/// than ~35 ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Relative threshold (e.g. `1.6` = 60% slower trips the gate).
    pub max_ratio: f64,
    /// Absolute floor in nanoseconds added on top of the ratio.
    pub abs_floor_ns: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            max_ratio: 1.6,
            abs_floor_ns: 20_000_000,
        }
    }
}

/// One probe's verdict in a [`Comparison`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise envelope.
    Ok,
    /// Slower than `base × max_ratio + abs_floor` — gate fails.
    Regressed,
    /// Faster than the same envelope mirrored — informational.
    Improved,
}

/// One probe matched across baseline and candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareRow {
    /// Probe name.
    pub name: String,
    /// Baseline min-of-N, nanoseconds.
    pub base_min_ns: u64,
    /// Candidate min-of-N, nanoseconds.
    pub cand_min_ns: u64,
    /// The verdict under the configured thresholds.
    pub verdict: Verdict,
}

/// The result of diffing two reports probe-by-probe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Comparison {
    /// Probes present (non-empty) in both reports, baseline order.
    pub rows: Vec<CompareRow>,
    /// Probes in the baseline but absent/empty in the candidate.
    pub missing: Vec<String>,
    /// Probes in the candidate but absent/empty in the baseline.
    pub added: Vec<String>,
}

impl Comparison {
    /// Number of regressed probes — the CI gate fails when nonzero.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regressed)
            .count()
    }

    /// Number of improved probes.
    #[must_use]
    pub fn improvements(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Improved)
            .count()
    }
}

/// Diffs `candidate` against `baseline` with min-of-N samples per
/// probe and the noise envelope in `config`. Missing probes never
/// regress the gate (suites evolve) but are reported so a silently
/// dropped probe is visible.
#[must_use]
pub fn compare(
    baseline: &PerfReport,
    candidate: &PerfReport,
    config: &CompareConfig,
) -> Comparison {
    let mut out = Comparison::default();
    for base in &baseline.probes {
        let Some(base_min) = base.min_ns() else {
            continue;
        };
        match candidate.probe(&base.name).and_then(Probe::min_ns) {
            None => out.missing.push(base.name.clone()),
            Some(cand_min) => {
                #[allow(clippy::cast_precision_loss)]
                let envelope = |reference: u64| {
                    reference as f64 * config.max_ratio + config.abs_floor_ns as f64
                };
                #[allow(clippy::cast_precision_loss)]
                let verdict = if cand_min as f64 > envelope(base_min) {
                    Verdict::Regressed
                } else if (base_min as f64) > envelope(cand_min) {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                out.rows.push(CompareRow {
                    name: base.name.clone(),
                    base_min_ns: base_min,
                    cand_min_ns: cand_min,
                    verdict,
                });
            }
        }
    }
    for cand in &candidate.probes {
        if cand.min_ns().is_some() && baseline.probe(&cand.name).and_then(Probe::min_ns).is_none() {
            out.added.push(cand.name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        let mut r = PerfReport::new();
        r.meta.insert("host".into(), "ci".into());
        r.push_sample("sweep.wall_ns", 1_000_000);
        r.push_sample("sweep.wall_ns", 900_000);
        r.stages.push(StageLatency {
            name: "store.schedule.latency-ns".into(),
            count: 12,
            sum_ns: 48_000,
            p50_ns: Some(4_095),
            p90_ns: Some(8_191),
            p99_ns: Some(8_191),
        });
        r.counters.insert("store.widen.requests".into(), 60);
        r.units.push(UnitSample {
            loop_index: 3,
            replication: 4,
            width: 2,
            registers: Some(64),
            wall_ns: 77_000,
        });
        r.units.push(UnitSample {
            loop_index: 3,
            replication: 1,
            width: 1,
            registers: None,
            wall_ns: 11_000,
        });
        r.fleet.steals = 2;
        r.fleet.scale_ups = 1;
        r
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample_report();
        let text = r.to_json();
        assert!(text.contains(REPORT_FORMAT));
        let back = PerfReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn foreign_format_and_version_are_rejected() {
        let r = sample_report();
        let text = r.to_json();
        let foreign = text.replace(REPORT_FORMAT, "someone-elses-format");
        assert!(PerfReport::from_json(&foreign)
            .unwrap_err()
            .contains("foreign format"));
        let vnext = text.replace("\"version\":1", "\"version\":999");
        assert!(PerfReport::from_json(&vnext)
            .unwrap_err()
            .contains("unsupported version"));
        assert!(PerfReport::from_json("[]").is_err());
        assert!(PerfReport::from_json("{}").is_err());
    }

    #[test]
    fn compare_flags_regression_and_respects_noise() {
        let base = sample_report();
        // Same machine, same run: trivially within noise.
        let same = compare(&base, &base, &CompareConfig::default());
        assert_eq!(same.regressions(), 0);
        assert_eq!(same.improvements(), 0);

        // A big probe regressing 2× must trip even generous thresholds.
        let mut slow = base.clone();
        slow.probes[0].samples_ns = vec![2_000_000_000];
        let mut big_base = base.clone();
        big_base.probes[0].samples_ns = vec![1_000_000_000];
        let cmp = compare(&big_base, &slow, &CompareConfig::default());
        assert_eq!(cmp.regressions(), 1);
        assert_eq!(cmp.rows[0].verdict, Verdict::Regressed);

        // Sub-floor jitter on a fast probe stays quiet even at 10×.
        let mut fast_base = base.clone();
        fast_base.probes[0].samples_ns = vec![1_000];
        let mut fast_cand = base.clone();
        fast_cand.probes[0].samples_ns = vec![10_000];
        let cmp = compare(&fast_base, &fast_cand, &CompareConfig::default());
        assert_eq!(cmp.regressions(), 0);
    }

    #[test]
    fn compare_reports_missing_and_added_probes() {
        let base = sample_report();
        let mut cand = sample_report();
        cand.probes[0].name = "renamed".into();
        let cmp = compare(&base, &cand, &CompareConfig::default());
        assert_eq!(cmp.missing, vec!["sweep.wall_ns".to_string()]);
        assert_eq!(cmp.added, vec!["renamed".to_string()]);
        assert_eq!(cmp.regressions(), 0, "missing probes never gate");
    }

    #[test]
    fn absorb_snapshot_splits_histograms_from_counters() {
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("store.widen.requests").add(5);
        reg.gauge("store.schedule.resident-bytes").set(4096);
        reg.histogram("store.schedule.latency-ns").record(1000);
        let mut r = PerfReport::new();
        r.absorb_snapshot(&reg.snapshot());
        assert_eq!(r.counters.get("store.widen.requests"), Some(&5));
        assert_eq!(r.counters.get("store.schedule.resident-bytes"), Some(&4096));
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.stages[0].count, 1);
        assert_eq!(r.stages[0].sum_ns, 1000);
        assert_eq!(r.stages[0].p99_ns, Some(1023));
    }

    #[test]
    fn absorb_traces_extracts_units_and_fleet_events() {
        use crate::span::{pack_point, Event};
        use crate::trace::TrackTrace;
        let events = vec![
            Event {
                kind: SpanKind::SweepUnit,
                start_ns: 100,
                end_ns: 600,
                a: 7,
                b: pack_point(4, 2, Some(64)),
            },
            Event {
                kind: SpanKind::StealClaim,
                start_ns: 700,
                end_ns: 700,
                a: 1,
                b: 3,
            },
            Event {
                kind: SpanKind::LeaseExpire,
                start_ns: 800,
                end_ns: 800,
                a: 2,
                b: 0,
            },
        ];
        let trace = ProcessTrace {
            process: "worker-0".into(),
            wall_anchor_ns: 0,
            dropped: 0,
            tracks: vec![TrackTrace {
                tid: 1,
                label: "w".into(),
                events,
            }],
        };
        let mut r = PerfReport::new();
        r.absorb_traces(&[trace]);
        assert_eq!(r.units.len(), 1);
        assert_eq!(r.units[0].loop_index, 7);
        assert_eq!(r.units[0].replication, 4);
        assert_eq!(r.units[0].registers, Some(64));
        assert_eq!(r.units[0].wall_ns, 500);
        assert_eq!(r.fleet.steals, 1);
        assert_eq!(r.fleet.lease_expiries, 1);
        assert!(!r.fleet.is_empty());
    }
}
