//! `tracecheck` — CI validator for merged Chrome trace files.
//!
//! Usage: `tracecheck <trace.json>`
//!
//! Exits non-zero unless the file parses as JSON, is structurally valid
//! Chrome trace-event output (no unmatched begin/end, every `X` span
//! carries `ts`/`dur`), and covers every pipeline stage kind — each of
//! `widen`, `mii`, `base-schedule`, `schedule` must appear as at least
//! one span, either as a live run or as its `decode:` disk variant,
//! plus at least one `unit` sweep span.

use std::process::ExitCode;

use widening_obs::analyze;
use widening_obs::json;

const REQUIRED_STAGES: [&str; 4] = ["widen", "mii", "base-schedule", "schedule"];

fn run(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let doc = analyze::parse_chrome(&value).map_err(|e| format!("{path}: invalid trace: {e}"))?;
    let count_named = |name: &str| doc.spans.iter().filter(|s| s.name == name).count();
    let mut covered = Vec::new();
    for stage in REQUIRED_STAGES {
        let live = count_named(stage);
        let decoded = count_named(&format!("decode:{stage}"));
        if live + decoded == 0 {
            return Err(format!(
                "{path}: stage {stage:?} has no spans (live or decode)"
            ));
        }
        covered.push(format!("{stage}={live}+{decoded}d"));
    }
    let units = count_named("unit");
    if units == 0 {
        return Err(format!("{path}: no sweep unit spans"));
    }
    Ok(format!(
        "tracecheck: OK — {} span(s), {} instant(s), {} process track(s), units={units}, stages [{}]",
        doc.spans.len(),
        doc.instants,
        doc.processes.len(),
        covered.join(", ")
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: tracecheck <trace.json>");
        return ExitCode::from(2);
    };
    match run(path) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("tracecheck: FAIL — {message}");
            ExitCode::FAILURE
        }
    }
}
