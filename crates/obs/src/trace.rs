//! The versioned binary trace-file format (`WTRC` v1).
//!
//! Each fleet worker process serialises its [`ProcessTrace`] into one
//! file next to its published results; the coordinator reads every file
//! back and merges them onto one timeline ([`crate::chrome`]). The
//! format is hand-rolled little-endian (this crate sits below
//! `widening-pipeline`, so it cannot borrow the pipeline codec):
//!
//! ```text
//! magic    "WTRC"                     4 bytes
//! version  u32 = 1
//! anchor   u64   wall-clock ns at recorder install (UNIX epoch)
//! dropped  u64   events lost to ring overflow, totalled
//! process  str   (u32 length + UTF-8 bytes)
//! tracks   u32   count
//!   tid    u32
//!   label  str
//!   events u32   count
//!     kind u8, start_ns u64, end_ns u64, a u64, b u64   (×count)
//! ```
//!
//! Decoding is defensive: any truncation, bad magic, unknown version or
//! unknown event kind yields `None` — a corrupt trace degrades to "no
//! trace", never a panic.

use std::fs;
use std::io;
use std::path::Path;

use crate::span::{Event, SpanKind};

/// File magic.
pub const TRACE_MAGIC: [u8; 4] = *b"WTRC";
/// Current format version.
pub const TRACE_VERSION: u32 = 1;

/// One recording thread's events, in recording order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackTrace {
    /// Thread id, unique within the process (1-based registration order).
    pub tid: u32,
    /// Human-readable track label (worker tag or `thread-N`).
    pub label: String,
    /// Events, oldest surviving first.
    pub events: Vec<Event>,
}

/// Everything one process recorded: its tracks plus the time base
/// needed to merge it with traces from other processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessTrace {
    /// Process label (e.g. `repro` or `worker-3`).
    pub process: String,
    /// Wall-clock nanoseconds (UNIX epoch) at recorder construction;
    /// event timestamps are monotonic offsets from that moment.
    pub wall_anchor_ns: u64,
    /// Events lost to ring overflow across all tracks.
    pub dropped: u64,
    /// Per-thread tracks.
    pub tracks: Vec<TrackTrace>,
}

impl ProcessTrace {
    /// Total recorded events across all tracks.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Serialise to the `WTRC` v1 byte format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.event_count() * 33);
        out.extend_from_slice(&TRACE_MAGIC);
        put_u32(&mut out, TRACE_VERSION);
        put_u64(&mut out, self.wall_anchor_ns);
        put_u64(&mut out, self.dropped);
        put_str(&mut out, &self.process);
        put_u32(&mut out, self.tracks.len() as u32);
        for track in &self.tracks {
            put_u32(&mut out, track.tid);
            put_str(&mut out, &track.label);
            put_u32(&mut out, track.events.len() as u32);
            for event in &track.events {
                out.push(event.kind as u8);
                put_u64(&mut out, event.start_ns);
                put_u64(&mut out, event.end_ns);
                put_u64(&mut out, event.a);
                put_u64(&mut out, event.b);
            }
        }
        out
    }

    /// Decode a `WTRC` trace; `None` on any corruption or version skew.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(4)? != TRACE_MAGIC {
            return None;
        }
        if cur.u32()? != TRACE_VERSION {
            return None;
        }
        let wall_anchor_ns = cur.u64()?;
        let dropped = cur.u64()?;
        let process = cur.str()?;
        let track_count = cur.u32()? as usize;
        // Each track needs ≥ 12 bytes: cheap bound against hostile counts.
        if track_count > cur.remaining() / 12 + 1 {
            return None;
        }
        let mut tracks = Vec::with_capacity(track_count.min(1024));
        for _ in 0..track_count {
            let tid = cur.u32()?;
            let label = cur.str()?;
            let event_count = cur.u32()? as usize;
            if event_count > cur.remaining() / 33 + 1 {
                return None;
            }
            let mut events = Vec::with_capacity(event_count);
            for _ in 0..event_count {
                let kind = SpanKind::from_u8(cur.u8()?)?;
                let start_ns = cur.u64()?;
                let end_ns = cur.u64()?;
                let a = cur.u64()?;
                let b = cur.u64()?;
                events.push(Event {
                    kind,
                    start_ns,
                    end_ns,
                    a,
                    b,
                });
            }
            tracks.push(TrackTrace { tid, label, events });
        }
        Some(ProcessTrace {
            process,
            wall_anchor_ns,
            dropped,
            tracks,
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// Write `trace` to `path` atomically (temp file + rename), creating
/// parent directories as needed.
pub fn write_trace_file(path: &Path, trace: &ProcessTrace) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, trace.encode())?;
    fs::rename(&tmp, path)
}

/// Read one `WTRC` trace file; `None` if missing or corrupt.
#[must_use]
pub fn read_trace_file(path: &Path) -> Option<ProcessTrace> {
    ProcessTrace::decode(&fs::read(path).ok()?)
}

/// Read every decodable `*.trace.bin` in `dir`, sorted by file name for
/// a deterministic merge order. A missing directory is an empty fleet.
#[must_use]
pub fn read_trace_dir(dir: &Path) -> Vec<ProcessTrace> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".trace.bin"))
        })
        .collect();
    paths.sort();
    paths.iter().filter_map(|p| read_trace_file(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProcessTrace {
        ProcessTrace {
            process: "worker-1".into(),
            wall_anchor_ns: 1_700_000_000_000_000_000,
            dropped: 3,
            tracks: vec![
                TrackTrace {
                    tid: 1,
                    label: "shard-0".into(),
                    events: vec![
                        Event {
                            kind: SpanKind::Widen,
                            start_ns: 10,
                            end_ns: 40,
                            a: 2,
                            b: 2,
                        },
                        Event {
                            kind: SpanKind::Evict,
                            start_ns: 50,
                            end_ns: 50,
                            a: 4,
                            b: 4096,
                        },
                    ],
                },
                TrackTrace {
                    tid: 2,
                    label: "shard-1".into(),
                    events: vec![Event {
                        kind: SpanKind::SweepUnit,
                        start_ns: 5,
                        end_ns: 95,
                        a: 0,
                        b: 0x1_0202,
                    }],
                },
            ],
        }
    }

    #[test]
    fn binary_round_trip() {
        let trace = sample();
        let bytes = trace.encode();
        assert_eq!(&bytes[..4], b"WTRC");
        assert_eq!(ProcessTrace::decode(&bytes), Some(trace));
    }

    #[test]
    fn corruption_degrades_to_none() {
        let bytes = sample().encode();
        assert_eq!(ProcessTrace::decode(&bytes[..bytes.len() - 1]), None);
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(ProcessTrace::decode(&bad_magic), None);
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(ProcessTrace::decode(&bad_version), None);
        let mut bad_kind = bytes;
        // First event kind byte sits right after the track header.
        let kind_pos = 4 + 4 + 8 + 8 + (4 + 8) + 4 + 4 + (4 + 7) + 4;
        bad_kind[kind_pos] = 200;
        assert_eq!(ProcessTrace::decode(&bad_kind), None);
        assert_eq!(ProcessTrace::decode(b""), None);
    }

    #[test]
    fn trace_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("obs-trace-dir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let trace = sample();
        write_trace_file(&dir.join("worker-1.trace.bin"), &trace).unwrap();
        fs::write(dir.join("garbage.trace.bin"), b"not a trace").unwrap();
        fs::write(dir.join("ignored.txt"), b"other file").unwrap();
        let read = read_trace_dir(&dir);
        assert_eq!(read, vec![trace]);
        assert!(read_trace_dir(&dir.join("missing")).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
