//! Counters, gauges and log₂-bucketed latency histograms.
//!
//! All metric types are plain atomics: recording never locks or
//! allocates, and handles are shared as `Arc`s handed out by a
//! [`MetricsRegistry`]. The histogram trades per-sample precision for a
//! fixed 64-bucket footprint: a sample lands in the power-of-two bucket
//! covering its value, and percentile extraction reports the **upper
//! bound** of the containing bucket — an at-most-2× overestimate, which
//! is the right resolution for latency tables (p50/p90/p99 of stage
//! times spanning nanoseconds to seconds).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that moves both ways (e.g. resident cache bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`. The caller is expected to subtract only what it
    /// previously added (wrapping, like the raw atomic it replaces).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `k ≥ 1` covers `[2^(k-1), 2^k)`,
/// bucket 0 holds exact zeros, the last bucket absorbs overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram with percentile extraction.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index covering `value`.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The largest value bucket `index` covers (inclusive). The last bucket
/// absorbs everything upward, so its bound is `u64::MAX`.
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding the rank-`⌈q·n⌉` sample; `None` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for index in 0..HISTOGRAM_BUCKETS {
            seen += self.buckets[index].load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper(index));
            }
        }
        Some(u64::MAX)
    }

    /// Convenience: p50 (`None` when empty).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// Convenience: p90 (`None` when empty).
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.90)
    }

    /// Convenience: p99 (`None` when empty).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }
}

/// One metric's current value in a [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary: `(count, sum, p50, p90, p99)`.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of all samples (wrapping on overflow).
        sum: u64,
        /// Median (bucket upper bound), `None` when empty.
        p50: Option<u64>,
        /// 90th percentile.
        p90: Option<u64>,
        /// 99th percentile.
        p99: Option<u64>,
    },
}

#[derive(Debug, Default)]
struct Registered {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics. `counter`/`gauge`/`histogram` are
/// get-or-create: callers grab an `Arc` handle once and record through
/// it lock-free; the registry lock is touched only at handle creation
/// and snapshot time.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registered>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics lock");
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics lock");
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics lock");
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Every metric's current value, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = Vec::new();
        for (name, c) in &inner.counters {
            out.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in &inner.gauges {
            out.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in &inner.histograms {
            out.push((
                name.clone(),
                MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                },
            ));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        // Every k: 2^(k-1) and 2^k - 1 share bucket k.
        for k in 1..63 {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_of(lo), k, "low edge of bucket {k}");
            assert_eq!(bucket_of(hi), k, "high edge of bucket {k}");
            assert!(lo <= bucket_upper(k) && hi <= bucket_upper(k));
        }
    }

    #[test]
    fn overflow_values_land_in_last_bucket() {
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50(), Some(u64::MAX));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn one_sample_sets_every_percentile() {
        let h = Histogram::new();
        h.record(100);
        // 100 ∈ [64, 128) → bucket 7, upper bound 127.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(127), "q={q}");
        }
        assert_eq!(h.mean(), 100);
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let h = Histogram::new();
        // 90 samples in bucket 4 ([8, 16)), 10 in bucket 11 ([1024, 2048)).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        assert_eq!(h.p50(), Some(15));
        assert_eq!(h.p90(), Some(15));
        assert_eq!(h.p99(), Some(2047));
        assert_eq!(h.percentile(1.0), Some(2047));
        assert_eq!(h.percentile(0.0), Some(15), "q=0 clamps to rank 1");
    }

    /// Audit for the "p99 of a single-sample histogram reports 0"
    /// report: it does not reproduce. `percentile` clamps the rank to
    /// `[1, count]`, so every quantile of a one-sample histogram lands
    /// in the sample's bucket and reports that bucket's **upper
    /// bound** — never 0 unless the sample itself was 0. These
    /// regression tests pin the boundary behaviour.
    #[test]
    fn single_sample_percentiles_at_bucket_boundaries() {
        // Exact powers of two sit at the *low* edge of their bucket;
        // 2^k - 1 at the high edge. Both must report the same upper
        // bound for every quantile.
        for value in [1u64, 2, 3, 4, 7, 8, 1023, 1024, (1 << 52) - 1, 1 << 52] {
            let h = Histogram::new();
            h.record(value);
            let upper = bucket_upper(bucket_of(value));
            assert!(upper >= value, "upper bound covers the sample");
            for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.percentile(q), Some(upper), "value={value} q={q}");
            }
        }
        // The two extremes: 0 has its own bucket; u64::MAX saturates.
        let zero = Histogram::new();
        zero.record(0);
        assert_eq!(zero.p99(), Some(0));
        let max = Histogram::new();
        max.record(u64::MAX);
        assert_eq!(max.p99(), Some(u64::MAX));
    }

    #[test]
    fn zero_samples_have_their_own_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.p50(), Some(0));
        assert_eq!(h.percentile(1.0), Some(1));
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("x").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));

        let g = reg.gauge("resident");
        g.add(100);
        g.sub(40);
        assert_eq!(g.get(), 60);
        g.set(7);
        assert_eq!(g.get(), 7);

        reg.histogram("lat").record(5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["lat", "resident", "x"]);
        assert_eq!(snap[2].1, MetricValue::Counter(3));
    }
}
