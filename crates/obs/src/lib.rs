//! **widening-obs** — the observability substrate of the *Widening
//! Resources* reproduction: structured tracing spans, latency
//! histograms, and a merged Perfetto-loadable fleet timeline.
//!
//! The crate is deliberately **zero-dependency** (std only) and sits at
//! the bottom of the workspace graph, below `widening-pipeline`, so any
//! crate can record into it. It has four layers:
//!
//! * [`span`](mod@span) — a process-global **span recorder**. Each
//!   recording thread owns a bounded, preallocated ring of fixed-size
//!   [`span::Event`]s; the hot path is allocation-free and, when no
//!   recorder is installed, costs one relaxed atomic load. Under
//!   pressure the ring drops its **oldest** events and counts the
//!   drops, so truncation is never silent.
//! * [`metrics`] — counters, gauges and log₂-bucketed latency
//!   [`metrics::Histogram`]s with p50/p90/p99 extraction, grouped in a
//!   [`metrics::MetricsRegistry`]. These back the pipeline's stage
//!   counters.
//! * [`trace`] — a hand-rolled **versioned binary trace file** format
//!   (`WTRC` v1). Every fleet worker process writes one file next to
//!   its results; the coordinator reads them all back.
//! * [`chrome`] + [`analyze`] + [`json`] — the merged timeline:
//!   [`chrome::chrome_trace_json`] turns any number of per-process
//!   traces into one Chrome trace-event JSON document (one `pid` track
//!   per worker process, one `tid` track per recording thread —
//!   open it at <https://ui.perfetto.dev>), and [`analyze`] parses that
//!   JSON back (via the tiny [`json`] parser) into per-stage and
//!   per-track latency tables.
//! * [`report`] — the **perf ledger**: a versioned machine-readable
//!   perf report (`BENCH_<stamp>.json`) with per-stage percentiles,
//!   store counters, per-unit wall times and fleet events, plus the
//!   min-of-N noise-gated [`report::compare`] that backs
//!   `repro perf compare` in CI.
//!
//! # Recording
//!
//! ```
//! use widening_obs as obs;
//!
//! let recorder = obs::Recorder::new("example");
//! obs::install(&recorder);
//! obs::set_thread_label("main");
//! {
//!     let _span = obs::span(obs::SpanKind::Widen, 0, 2);
//!     // ... stage work ...
//! } // recorded on drop
//! obs::instant(obs::SpanKind::Evict, 3, 4096);
//! obs::uninstall();
//! let trace = recorder.snapshot();
//! assert_eq!(trace.event_count(), 2);
//! let json = obs::chrome_trace_json(&[trace]);
//! assert!(json.contains("\"widen\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod chrome;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use chrome::{chrome_trace_json, write_chrome_trace_file};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use report::{compare, CompareConfig, Comparison, PerfReport};
pub use span::{
    format_point, install, instant, is_enabled, now_ns, pack_point, record_span, set_thread_label,
    span, uninstall, unpack_point, Recorder, SpanGuard, SpanKind,
};
pub use trace::{read_trace_dir, read_trace_file, write_trace_file, ProcessTrace, TrackTrace};
