//! The process-global span recorder.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** Every instrumentation point in the
//!    pipeline hot path starts with one `Relaxed` atomic load; when no
//!    recorder is installed nothing else happens.
//! 2. **Recording must not allocate.** Each thread lazily registers a
//!    `ThreadRing` — a preallocated circular buffer of fixed-size
//!    [`Event`]s. Pushing an event is a push into that buffer under an
//!    uncontended per-thread mutex (only a snapshot ever takes it from
//!    another thread).
//! 3. **Truncation must be loud.** A full ring overwrites its oldest
//!    event and increments a drop counter that is carried into the
//!    exported trace.
//!
//! Timestamps are nanoseconds from a per-recorder monotonic epoch
//! ([`std::time::Instant`]); the recorder also stamps a wall-clock
//! anchor at construction so traces from different *processes* can be
//! aligned onto one timeline (see [`crate::chrome`]).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Instant, SystemTime};

use crate::trace::{ProcessTrace, TrackTrace};

/// Default per-thread ring capacity (events). At 40 bytes per event a
/// thread costs ~2.5 MiB when recording, nothing when not.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// What a span or instant event describes. The discriminant is the wire
/// encoding (see [`crate::trace`]); values must stay stable across
/// versions of the binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Live widening-stage execution. `a` = loop index, `b` = width.
    Widen = 0,
    /// Live MII-bound stage execution. `a` = loop, `b` = packed point.
    Mii = 1,
    /// Live base-schedule stage execution. `a` = loop, `b` = packed point.
    BaseSchedule = 2,
    /// Live schedule/allocate/spill stage execution. `a` = loop, `b` = packed point.
    Schedule = 3,
    /// Disk decode of a widening artifact. `a` = loop, `b` = width.
    WidenDecode = 4,
    /// Disk decode of an MII-bound artifact. `a` = loop, `b` = packed point.
    MiiDecode = 5,
    /// Disk decode of a base-schedule artifact. `a` = loop, `b` = packed point.
    BaseDecode = 6,
    /// Disk decode of a schedule artifact. `a` = loop, `b` = packed point.
    SchedDecode = 7,
    /// One `(loop × design point)` sweep unit. `a` = loop, `b` = packed point.
    SweepUnit = 8,
    /// Idle gap between consecutive units on one pool thread.
    /// `a` = loop of the unit about to run, `b` = its packed point.
    QueueWait = 9,
    /// A worker running an owned shard. `a` = shard, `b` = unit count.
    WorkerShard = 10,
    /// A worker running a stolen slice. `a` = shard, `b` = unit count.
    WorkerSteal = 11,
    /// Instant: LRU eviction pass. `a` = entries evicted, `b` = resident bytes after.
    Evict = 12,
    /// Instant: surplus published for stealing. `a` = shard, `b` = units offered.
    StealOffer = 13,
    /// Instant: a thief claimed a surplus. `a` = shard, `b` = units claimed.
    StealClaim = 14,
    /// Instant: an owner folded a thief's result. `a` = shard, `b` = units folded.
    StealFold = 15,
    /// Instant: lease heartbeat renewal. `a` = shard, `b` = remaining mass.
    Heartbeat = 16,
    /// Instant: coordinator requeued expired leases. `a` = shards requeued.
    LeaseExpire = 17,
    /// Instant: coordinator autoscaled a worker up. `a` = worker index, `b` = mass estimate.
    ScaleUp = 18,
    /// Instant: coordinator respawned a worker. `a` = worker index.
    Respawn = 19,
    /// Instant: scale-down — the coordinator posted retirement tokens
    /// (`a` = token total, `b` = mass estimate) or a worker retired on
    /// one (`a` = token claimed, `b` = 0).
    ScaleDown = 20,
    /// Live lower-stage execution (schedule → wide bytecode).
    /// `a` = loop, `b` = packed point.
    Lower = 21,
    /// Disk decode of a lowered-program artifact. `a` = loop,
    /// `b` = packed point.
    LowerDecode = 22,
}

/// Every kind, in wire order. Kept in sync with the enum by the
/// round-trip test below.
pub(crate) const ALL_KINDS: [SpanKind; 23] = [
    SpanKind::Widen,
    SpanKind::Mii,
    SpanKind::BaseSchedule,
    SpanKind::Schedule,
    SpanKind::WidenDecode,
    SpanKind::MiiDecode,
    SpanKind::BaseDecode,
    SpanKind::SchedDecode,
    SpanKind::SweepUnit,
    SpanKind::QueueWait,
    SpanKind::WorkerShard,
    SpanKind::WorkerSteal,
    SpanKind::Evict,
    SpanKind::StealOffer,
    SpanKind::StealClaim,
    SpanKind::StealFold,
    SpanKind::Heartbeat,
    SpanKind::LeaseExpire,
    SpanKind::ScaleUp,
    SpanKind::Respawn,
    SpanKind::ScaleDown,
    SpanKind::Lower,
    SpanKind::LowerDecode,
];

impl SpanKind {
    /// Wire decoding; `None` for bytes written by a future version.
    #[must_use]
    pub fn from_u8(value: u8) -> Option<Self> {
        ALL_KINDS.get(value as usize).copied()
    }

    /// The event name shown on the timeline and in latency tables.
    /// Stage-run kinds use exactly the stage names of the `repro`
    /// stage-counter table (`widen`, `mii`, `base-schedule`,
    /// `schedule`) so tooling can join the two views.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Widen => "widen",
            SpanKind::Mii => "mii",
            SpanKind::BaseSchedule => "base-schedule",
            SpanKind::Schedule => "schedule",
            SpanKind::WidenDecode => "decode:widen",
            SpanKind::MiiDecode => "decode:mii",
            SpanKind::BaseDecode => "decode:base-schedule",
            SpanKind::SchedDecode => "decode:schedule",
            SpanKind::SweepUnit => "unit",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::WorkerShard => "shard",
            SpanKind::WorkerSteal => "steal",
            SpanKind::Evict => "evict",
            SpanKind::StealOffer => "steal-offer",
            SpanKind::StealClaim => "steal-claim",
            SpanKind::StealFold => "steal-fold",
            SpanKind::Heartbeat => "heartbeat",
            SpanKind::LeaseExpire => "lease-expired",
            SpanKind::ScaleUp => "scale-up",
            SpanKind::Respawn => "respawn",
            SpanKind::ScaleDown => "scale-down",
            SpanKind::Lower => "lower",
            SpanKind::LowerDecode => "decode:lower",
        }
    }

    /// Chrome trace-event category.
    #[must_use]
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Widen
            | SpanKind::Mii
            | SpanKind::BaseSchedule
            | SpanKind::Schedule
            | SpanKind::Lower => "stage",
            SpanKind::WidenDecode
            | SpanKind::MiiDecode
            | SpanKind::BaseDecode
            | SpanKind::SchedDecode
            | SpanKind::LowerDecode => "disk",
            SpanKind::SweepUnit | SpanKind::QueueWait => "sweep",
            SpanKind::WorkerShard
            | SpanKind::WorkerSteal
            | SpanKind::StealOffer
            | SpanKind::StealClaim
            | SpanKind::StealFold
            | SpanKind::Heartbeat => "worker",
            SpanKind::Evict => "store",
            SpanKind::LeaseExpire | SpanKind::ScaleUp | SpanKind::Respawn | SpanKind::ScaleDown => {
                "fleet"
            }
        }
    }

    /// Names for the `a`/`b` labels in exported trace args.
    #[must_use]
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            SpanKind::Widen | SpanKind::WidenDecode => ("loop", "width"),
            SpanKind::Mii
            | SpanKind::MiiDecode
            | SpanKind::BaseSchedule
            | SpanKind::BaseDecode
            | SpanKind::Schedule
            | SpanKind::SchedDecode
            | SpanKind::Lower
            | SpanKind::LowerDecode
            | SpanKind::SweepUnit
            | SpanKind::QueueWait => ("loop", "point"),
            SpanKind::WorkerShard | SpanKind::WorkerSteal => ("shard", "units"),
            SpanKind::Evict => ("evicted", "resident-bytes"),
            SpanKind::StealOffer => ("shard", "offered"),
            SpanKind::StealClaim | SpanKind::StealFold => ("shard", "units"),
            SpanKind::Heartbeat => ("shard", "mass"),
            SpanKind::LeaseExpire => ("requeued", "unused"),
            SpanKind::ScaleUp => ("worker", "mass"),
            SpanKind::Respawn => ("worker", "unused"),
            SpanKind::ScaleDown => ("token", "mass"),
        }
    }

    /// Whether the `b` label is a [`pack_point`]-packed design point
    /// (rendered as `XwY(Z)` in exported args).
    #[must_use]
    pub fn b_is_point(self) -> bool {
        matches!(
            self,
            SpanKind::Mii
                | SpanKind::MiiDecode
                | SpanKind::BaseSchedule
                | SpanKind::BaseDecode
                | SpanKind::Schedule
                | SpanKind::SchedDecode
                | SpanKind::Lower
                | SpanKind::LowerDecode
                | SpanKind::SweepUnit
                | SpanKind::QueueWait
        )
    }
}

/// Pack a design point into one label word: replication `X`, width `Y`
/// and an optional register-file size `Z` (`None` = the paper's *peak*
/// mode, which stops after MII).
#[must_use]
pub fn pack_point(replication: u32, width: u32, registers: Option<u32>) -> u64 {
    let z = registers.map_or(0, |r| u64::from(r) + 1);
    (u64::from(replication) & 0xff) | ((u64::from(width) & 0xff) << 8) | (z << 16)
}

/// Inverse of [`pack_point`].
#[must_use]
pub fn unpack_point(packed: u64) -> (u32, u32, Option<u32>) {
    let replication = (packed & 0xff) as u32;
    let width = ((packed >> 8) & 0xff) as u32;
    let z = packed >> 16;
    let registers = if z == 0 { None } else { Some((z - 1) as u32) };
    (replication, width, registers)
}

/// Render a packed design point as the paper's `XwY(Z)` notation.
#[must_use]
pub fn format_point(packed: u64) -> String {
    let (replication, width, registers) = unpack_point(packed);
    match registers {
        Some(z) => format!("{replication}w{width}({z})"),
        None => format!("{replication}w{width}(peak)"),
    }
}

/// One recorded event: a span (`start_ns < end_ns`) or an instant
/// (`start_ns == end_ns`), with two numeric labels whose meaning is
/// [`SpanKind`]-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: SpanKind,
    /// Nanoseconds from the recorder's monotonic epoch.
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for instants.
    pub end_ns: u64,
    /// First label (see [`SpanKind::arg_names`]).
    pub a: u64,
    /// Second label.
    pub b: u64,
}

impl Event {
    /// Whether this is an instant (zero-duration marker) event.
    #[must_use]
    pub fn is_instant(&self) -> bool {
        self.start_ns == self.end_ns
    }
}

/// A bounded circular buffer of events. Preallocated up front; a push
/// beyond capacity overwrites the oldest event and bumps `dropped`.
#[derive(Debug)]
pub(crate) struct Ring {
    cap: usize,
    buf: Vec<Event>,
    head: usize,
    dropped: u64,
}

impl Ring {
    pub(crate) fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            cap,
            buf: Vec::with_capacity(cap),
            head: 0,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events in recording order (oldest surviving first).
    pub(crate) fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// One recording thread's track: a ring plus a human-readable label.
#[derive(Debug)]
struct ThreadRing {
    tid: u32,
    label: Mutex<String>,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct RecorderInner {
    epoch: Instant,
    wall_anchor_ns: u64,
    capacity: usize,
    process: String,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl RecorderInner {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn register_thread(&self) -> Arc<ThreadRing> {
        let mut rings = self.rings.lock().expect("ring registry lock");
        let tid = u32::try_from(rings.len())
            .unwrap_or(u32::MAX)
            .saturating_add(1);
        let ring = Arc::new(ThreadRing {
            tid,
            label: Mutex::new(format!("thread-{tid}")),
            ring: Mutex::new(Ring::new(self.capacity)),
        });
        rings.push(Arc::clone(&ring));
        ring
    }
}

/// A trace recorder: owns every thread's ring and the time base.
/// Cloning is cheap (shared handle). Install one globally with
/// [`install`]; take the collected events back with
/// [`Recorder::snapshot`].
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Recorder {
    /// A recorder with the default per-thread ring capacity.
    #[must_use]
    pub fn new(process: &str) -> Self {
        Self::with_capacity(process, DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose threads each hold at most `capacity` events
    /// (older events are dropped first, and counted).
    #[must_use]
    pub fn with_capacity(process: &str, capacity: usize) -> Self {
        let wall_anchor_ns = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        Recorder {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                wall_anchor_ns,
                capacity: capacity.max(1),
                process: process.to_string(),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Total events dropped across all threads so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        let rings = self.inner.rings.lock().expect("ring registry lock");
        rings
            .iter()
            .map(|t| t.ring.lock().expect("ring lock").dropped())
            .sum()
    }

    /// Copy out everything recorded so far as one per-process trace.
    /// Threads that never recorded an event are omitted.
    #[must_use]
    pub fn snapshot(&self) -> ProcessTrace {
        let rings = self.inner.rings.lock().expect("ring registry lock");
        let mut dropped = 0;
        let mut tracks = Vec::new();
        for thread in rings.iter() {
            let label = thread.label.lock().expect("label lock").clone();
            let ring = thread.ring.lock().expect("ring lock");
            dropped += ring.dropped();
            let events = ring.events();
            if !events.is_empty() {
                tracks.push(TrackTrace {
                    tid: thread.tid,
                    label,
                    events,
                });
            }
        }
        ProcessTrace {
            process: self.inner.process.clone(),
            wall_anchor_ns: self.inner.wall_anchor_ns,
            dropped,
            tracks,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static CURRENT: RwLock<Option<Recorder>> = RwLock::new(None);

struct TlsSlot {
    generation: u64,
    ring: Option<(Arc<RecorderInner>, Arc<ThreadRing>)>,
}

thread_local! {
    static TLS: RefCell<TlsSlot> = const {
        RefCell::new(TlsSlot { generation: 0, ring: None })
    };
}

/// Install `recorder` as the process-global recorder. Subsequent
/// [`span`]/[`instant`] calls on any thread record into it. The caller
/// keeps its handle for [`Recorder::snapshot`].
pub fn install(recorder: &Recorder) {
    let mut current = CURRENT.write().expect("recorder slot lock");
    *current = Some(recorder.clone());
    GENERATION.fetch_add(1, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Disable recording and drop the global handle. Returns the recorder
/// if one was installed (snapshots stay valid — the caller's own clone
/// works equally well).
pub fn uninstall() -> Option<Recorder> {
    ENABLED.store(false, Ordering::Release);
    GENERATION.fetch_add(1, Ordering::Release);
    CURRENT.write().expect("recorder slot lock").take()
}

/// Whether a recorder is currently installed.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` with this thread's ring of the current recorder, if any.
/// Re-resolves the thread-local cache when the installed recorder
/// changed.
fn with_ring(f: impl FnOnce(&RecorderInner, &ThreadRing)) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let generation = GENERATION.load(Ordering::Acquire);
    // try_with: a drop-guard firing during thread teardown must not panic.
    let _ = TLS.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.generation != generation || slot.ring.is_none() {
            slot.generation = generation;
            slot.ring = CURRENT.read().ok().and_then(|current| {
                current.as_ref().map(|recorder| {
                    let ring = recorder.inner.register_thread();
                    (Arc::clone(&recorder.inner), ring)
                })
            });
        }
        if let Some((inner, ring)) = &slot.ring {
            f(inner, ring);
        }
    });
}

/// Nanoseconds from the installed recorder's epoch, or `None` when
/// recording is disabled. Pairs with [`record_span`] for spans whose
/// start is observed before the work (e.g. queue-wait gaps).
#[must_use]
pub fn now_ns() -> Option<u64> {
    let mut out = None;
    with_ring(|inner, _| out = Some(inner.now_ns()));
    out
}

/// Record a complete span from explicit timestamps previously obtained
/// via [`now_ns`]. No-op when recording is disabled.
pub fn record_span(kind: SpanKind, start_ns: u64, end_ns: u64, a: u64, b: u64) {
    with_ring(|_, thread| {
        thread.ring.lock().expect("ring lock").push(Event {
            kind,
            start_ns,
            end_ns: end_ns.max(start_ns),
            a,
            b,
        });
    });
}

/// Record an instant (zero-duration marker) event.
pub fn instant(kind: SpanKind, a: u64, b: u64) {
    with_ring(|inner, thread| {
        let now = inner.now_ns();
        thread.ring.lock().expect("ring lock").push(Event {
            kind,
            start_ns: now,
            end_ns: now,
            a,
            b,
        });
    });
}

/// Label this thread's track in the exported timeline (e.g. the worker
/// tag). No-op when recording is disabled.
pub fn set_thread_label(label: &str) {
    with_ring(|_, thread| {
        *thread.label.lock().expect("label lock") = label.to_string();
    });
}

/// Start a span; the returned guard records it on drop. When recording
/// is disabled this is one atomic load and the guard is inert.
#[must_use]
pub fn span(kind: SpanKind, a: u64, b: u64) -> SpanGuard {
    let mut start = None;
    with_ring(|inner, _| {
        start = Some((GENERATION.load(Ordering::Acquire), inner.now_ns()));
    });
    SpanGuard { kind, a, b, start }
}

/// RAII guard for an in-flight span (see [`span`]).
#[derive(Debug)]
pub struct SpanGuard {
    kind: SpanKind,
    a: u64,
    b: u64,
    /// `(generation at start, start_ns)`; `None` when inert.
    start: Option<(u64, u64)>,
}

impl SpanGuard {
    /// Discard the span instead of recording it (e.g. a disk-decode
    /// probe that found nothing on disk).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((generation, start_ns)) = self.start.take() else {
            return;
        };
        with_ring(|inner, thread| {
            // A recorder swapped in mid-span would give this span a
            // meaningless start offset; drop it instead.
            if GENERATION.load(Ordering::Acquire) != generation {
                return;
            }
            let end_ns = inner.now_ns().max(start_ns);
            thread.ring.lock().expect("ring lock").push(Event {
                kind: self.kind,
                start_ns,
                end_ns,
                a: self.a,
                b: self.b,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_wire_round_trip() {
        for (i, kind) in ALL_KINDS.iter().enumerate() {
            assert_eq!(*kind as u8, u8::try_from(i).unwrap());
            assert_eq!(SpanKind::from_u8(*kind as u8), Some(*kind));
        }
        assert_eq!(SpanKind::from_u8(ALL_KINDS.len() as u8), None);
    }

    #[test]
    fn point_packing_round_trips() {
        for (x, y, z) in [
            (1, 1, None),
            (4, 2, Some(0)),
            (8, 1, Some(32)),
            (2, 2, Some(255)),
            (255, 255, Some(1 << 20)),
        ] {
            assert_eq!(unpack_point(pack_point(x, y, z)), (x, y, z));
        }
        assert_eq!(format_point(pack_point(4, 2, Some(128))), "4w2(128)");
        assert_eq!(format_point(pack_point(2, 2, None)), "2w2(peak)");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = Ring::new(4);
        let ev = |n: u64| Event {
            kind: SpanKind::Widen,
            start_ns: n,
            end_ns: n,
            a: n,
            b: 0,
        };
        for n in 0..4 {
            ring.push(ev(n));
        }
        assert_eq!(ring.dropped(), 0);
        for n in 4..10 {
            ring.push(ev(n));
        }
        assert_eq!(ring.dropped(), 6);
        let kept: Vec<u64> = ring.events().iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest events dropped first");
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let mut ring = Ring::new(0);
        ring.push(Event {
            kind: SpanKind::Evict,
            start_ns: 1,
            end_ns: 1,
            a: 0,
            b: 0,
        });
        ring.push(Event {
            kind: SpanKind::Evict,
            start_ns: 2,
            end_ns: 2,
            a: 0,
            b: 0,
        });
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.events().len(), 1);
    }
}
