//! A tiny recursive-descent JSON parser.
//!
//! The workspace is intentionally dependency-free, so the trace tooling
//! (`tracecheck`, `repro trace summarize`) parses the Chrome trace
//! JSON it validates with this ~150-line reader instead of serde. It
//! accepts standard JSON (RFC 8259): objects, arrays, strings with
//! escapes, numbers, booleans, null. It is a *reader*, not a validator
//! of every corner case — good enough to round-trip what
//! [`crate::chrome`] emits and to reject structural corruption.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object map, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }

    /// Serialises the value back to compact JSON text.
    ///
    /// The inverse of [`parse`]: `parse(&v.to_json()) == Ok(v)` for any
    /// tree this module can produce (numbers are held as `f64`, so
    /// integers up to 2⁵³ round-trip exactly; non-finite numbers render
    /// as `null`, which JSON cannot express). Keys come out in
    /// `BTreeMap` order, making the output deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders a number: integers (the common case — counters and
/// nanosecond timestamps) without a fractional part, everything else
/// via `f64`'s shortest round-trip formatting.
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(b),
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if byte < 0x80 {
                        out.push(char::from(byte));
                    } else {
                        let start = self.pos - 1;
                        let width = match byte {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return Err("invalid UTF-8 in string".into()),
                        };
                        let slice = self
                            .bytes
                            .get(start..start + width)
                            .ok_or("truncated UTF-8")?;
                        let s = std::str::from_utf8(slice).map_err(|_| "invalid UTF-8")?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_corruption() {
        assert!(parse("{\"a\": 1").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] junk").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse(r#""café ✓ \"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("café ✓ \"q\""));
    }

    #[test]
    fn writer_round_trips() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": "x\n\"y\"", "c": true, "d": null}"#;
        let v = parse(text).unwrap();
        let emitted = v.to_json();
        assert_eq!(parse(&emitted).unwrap(), v);
        // Integers render without a decimal point.
        assert!(emitted.contains("[1,2.5,-300]"), "{emitted}");
        // Control characters stay escaped.
        assert!(emitted.contains("x\\n\\\"y\\\""), "{emitted}");
    }

    #[test]
    fn writer_handles_large_integers_exactly() {
        // Nanosecond wall times fit comfortably under 2^53.
        let ns = 4_503_599_627_370_495u64; // 2^52 - 1
        let v = Value::Number(ns as f64);
        assert_eq!(v.to_json(), ns.to_string());
        assert_eq!(parse(&v.to_json()).unwrap().as_f64(), Some(ns as f64));
    }
}
