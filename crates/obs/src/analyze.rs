//! Reading a merged Chrome trace back: validation and latency tables.
//!
//! Both the `tracecheck` CI checker and `repro trace summarize` consume
//! the JSON that [`crate::chrome`] emits — parsing the *exported*
//! artifact rather than in-memory events means the whole export path is
//! exercised end to end. Percentiles come from the same
//! [`crate::metrics::Histogram`] the live metrics use.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::metrics::Histogram;

/// One complete (`"ph":"X"`) span read back from a Chrome trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Event name (stage name, `unit`, `shard`, ...).
    pub name: String,
    /// Process track.
    pub pid: u64,
    /// Thread track within the process.
    pub tid: u64,
    /// Start, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Numeric args (`loop`, `shard`, `units`, ...), name → value.
    pub args_num: BTreeMap<String, f64>,
}

/// A parsed + structurally validated Chrome trace document.
#[derive(Debug, Default)]
pub struct ChromeDoc {
    /// All complete spans.
    pub spans: Vec<SpanRec>,
    /// Number of instant (`"ph":"i"`) events.
    pub instants: usize,
    /// Instant events grouped by name (`evict`, `steal-claim`,
    /// `scale-up`, ...), name → count.
    pub instants_by_name: BTreeMap<String, u64>,
    /// `pid` → process name (from `process_name` metadata).
    pub processes: BTreeMap<u64, String>,
    /// `pid` → events that process lost to ring overflow, parsed from
    /// the `(dropped_events=N)` suffix the emitter appends to every
    /// process name. Nonzero counts mean the tables below undercount.
    pub dropped_events: BTreeMap<u64, u64>,
    /// `(pid, tid)` → thread name (from `thread_name` metadata).
    pub threads: BTreeMap<(u64, u64), String>,
}

impl ChromeDoc {
    /// Total events dropped across all processes.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.dropped_events.values().sum()
    }
}

/// The `(dropped_events=N)` suffix [`crate::chrome`] folds into each
/// process label, parsed back out.
fn dropped_from_label(label: &str) -> Option<u64> {
    label
        .rsplit_once("(dropped_events=")?
        .1
        .strip_suffix(')')?
        .parse()
        .ok()
}

fn num(event: &Value, key: &str) -> Option<f64> {
    event.get(key)?.as_f64()
}

/// Parse and validate a Chrome trace-event document. Checks, per event:
/// a known `ph`; `X` events carry non-negative numeric `ts`/`dur`; and
/// any `B`/`E` pairs balance per `(pid, tid)` track (our emitter only
/// produces complete events, but the checker guards the general
/// contract "no unmatched begin/end").
pub fn parse_chrome(root: &Value) -> Result<ChromeDoc, String> {
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut doc = ChromeDoc::default();
    let mut open_begins: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (index, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("event {index} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {index} has no ph"))?;
        let pid = num(event, "pid").unwrap_or(0.0) as u64;
        let tid = num(event, "tid").unwrap_or(0.0) as u64;
        match ph {
            "X" => {
                let ts = num(event, "ts").ok_or_else(|| format!("event {index}: X without ts"))?;
                let dur =
                    num(event, "dur").ok_or_else(|| format!("event {index}: X without dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {index}: negative ts/dur"));
                }
                let name = obj
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {index}: X without name"))?;
                let mut args_num = BTreeMap::new();
                if let Some(args) = obj.get("args").and_then(Value::as_object) {
                    for (key, value) in args {
                        if let Some(n) = value.as_f64() {
                            args_num.insert(key.clone(), n);
                        }
                    }
                }
                doc.spans.push(SpanRec {
                    name: name.to_string(),
                    pid,
                    tid,
                    ts_us: ts,
                    dur_us: dur,
                    args_num,
                });
            }
            "i" | "I" | "R" => {
                doc.instants += 1;
                let name = obj.get("name").and_then(Value::as_str).unwrap_or("?");
                *doc.instants_by_name.entry(name.to_string()).or_insert(0) += 1;
            }
            "B" => *open_begins.entry((pid, tid)).or_insert(0) += 1,
            "E" => {
                let open = open_begins.entry((pid, tid)).or_insert(0);
                if *open == 0 {
                    return Err(format!("event {index}: E without matching B"));
                }
                *open -= 1;
            }
            "M" => {
                let name = obj.get("name").and_then(Value::as_str).unwrap_or("");
                let arg = obj
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                match name {
                    "process_name" => {
                        if let Some(dropped) = dropped_from_label(&arg) {
                            doc.dropped_events.insert(pid, dropped);
                        }
                        doc.processes.insert(pid, arg);
                    }
                    "thread_name" => {
                        doc.threads.insert((pid, tid), arg);
                    }
                    _ => {}
                }
            }
            other => return Err(format!("event {index}: unknown ph {other:?}")),
        }
    }
    if let Some(((pid, tid), open)) = open_begins.iter().find(|(_, open)| **open > 0) {
        return Err(format!(
            "{open} unmatched B event(s) on pid={pid} tid={tid}"
        ));
    }
    Ok(doc)
}

/// Latency summary for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Median duration, microseconds (log-bucket upper bound).
    pub p50_us: f64,
    /// 90th percentile, microseconds.
    pub p90_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Total time, microseconds.
    pub total_us: f64,
    /// Longest single span, microseconds.
    pub max_us: f64,
}

const NS_PER_US: f64 = 1_000.0;

/// Group spans by name and summarise durations through a log-bucketed
/// [`Histogram`] (nanosecond resolution). Sorted by descending total.
#[must_use]
pub fn per_stage_stats(spans: &[SpanRec]) -> Vec<StageStats> {
    let mut groups: BTreeMap<&str, (Histogram, f64, f64)> = BTreeMap::new();
    for span in spans {
        let entry = groups
            .entry(span.name.as_str())
            .or_insert_with(|| (Histogram::new(), 0.0, 0.0));
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        entry.0.record((span.dur_us * NS_PER_US).max(0.0) as u64);
        entry.1 += span.dur_us;
        entry.2 = entry.2.max(span.dur_us);
    }
    let mut out: Vec<StageStats> = groups
        .into_iter()
        .map(|(name, (hist, total_us, max_us))| {
            #[allow(clippy::cast_precision_loss)]
            let us = |ns: Option<u64>| ns.map_or(0.0, |n| n as f64 / NS_PER_US);
            StageStats {
                name: name.to_string(),
                count: hist.count(),
                p50_us: us(hist.p50()),
                p90_us: us(hist.p90()),
                p99_us: us(hist.p99()),
                total_us,
                max_us,
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    out
}

/// Busy-time summary for one `(process, thread)` track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackStats {
    /// Process track id.
    pub pid: u64,
    /// Process name.
    pub process: String,
    /// Thread track id.
    pub tid: u64,
    /// Thread label (worker tag).
    pub track: String,
    /// Number of spans on the track.
    pub spans: u64,
    /// Summed span time, microseconds. Nested spans (a stage under its
    /// unit) count each level, so this is attribution, not wall clock.
    pub busy_us: f64,
}

/// Per-track span counts and busy time, ordered by `(pid, tid)`.
#[must_use]
pub fn per_track_stats(doc: &ChromeDoc) -> Vec<TrackStats> {
    let mut groups: BTreeMap<(u64, u64), (u64, f64)> = BTreeMap::new();
    for span in &doc.spans {
        let entry = groups.entry((span.pid, span.tid)).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += span.dur_us;
    }
    groups
        .into_iter()
        .map(|((pid, tid), (spans, busy_us))| TrackStats {
            pid,
            process: doc.processes.get(&pid).cloned().unwrap_or_default(),
            tid,
            track: doc.threads.get(&(pid, tid)).cloned().unwrap_or_default(),
            spans,
            busy_us,
        })
        .collect()
}

/// Per-shard summary built from `shard`/`steal` worker spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u64,
    /// Owned-shard runs observed (requeues add runs).
    pub runs: u64,
    /// Stolen-slice runs observed.
    pub steals: u64,
    /// Units attributed across those runs.
    pub units: u64,
    /// Summed run time, microseconds.
    pub busy_us: f64,
}

/// Group `shard` and `steal` spans by their `shard` arg.
#[must_use]
pub fn per_shard_stats(spans: &[SpanRec]) -> Vec<ShardStats> {
    let mut groups: BTreeMap<u64, ShardStats> = BTreeMap::new();
    for span in spans {
        if span.name != "shard" && span.name != "steal" {
            continue;
        }
        let Some(shard) = span.args_num.get("shard") else {
            continue;
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let shard = *shard as u64;
        let entry = groups.entry(shard).or_insert(ShardStats {
            shard,
            runs: 0,
            steals: 0,
            units: 0,
            busy_us: 0.0,
        });
        if span.name == "shard" {
            entry.runs += 1;
        } else {
            entry.steals += 1;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let units = span.args_num.get("units").copied().unwrap_or(0.0) as u64;
        entry.units += units;
        entry.busy_us += span.dur_us;
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace_json;
    use crate::json;
    use crate::span::{Event, SpanKind};
    use crate::trace::{ProcessTrace, TrackTrace};

    fn doc_from(traces: &[ProcessTrace]) -> ChromeDoc {
        let text = chrome_trace_json(traces);
        let value = json::parse(&text).expect("emitted JSON parses");
        parse_chrome(&value).expect("emitted JSON validates")
    }

    #[test]
    fn emitted_json_round_trips_through_parser() {
        let trace = ProcessTrace {
            process: "repro".into(),
            wall_anchor_ns: 0,
            dropped: 0,
            tracks: vec![TrackTrace {
                tid: 1,
                label: "main".into(),
                events: vec![
                    Event {
                        kind: SpanKind::Widen,
                        start_ns: 0,
                        end_ns: 30_000,
                        a: 0,
                        b: 2,
                    },
                    Event {
                        kind: SpanKind::Schedule,
                        start_ns: 40_000,
                        end_ns: 140_000,
                        a: 0,
                        b: 0x41_0204,
                    },
                    Event {
                        kind: SpanKind::Evict,
                        start_ns: 150_000,
                        end_ns: 150_000,
                        a: 1,
                        b: 2048,
                    },
                ],
            }],
        };
        let doc = doc_from(&[trace]);
        assert_eq!(doc.spans.len(), 2);
        assert_eq!(doc.instants, 1);
        assert_eq!(doc.instants_by_name.get("evict"), Some(&1));
        assert_eq!(doc.processes[&1], "repro (dropped_events=0)");
        assert_eq!(doc.dropped_events.get(&1), Some(&0));
        assert_eq!(doc.total_dropped(), 0);
        assert_eq!(doc.threads[&(1, 1)], "main");

        let stats = per_stage_stats(&doc.spans);
        assert_eq!(stats[0].name, "schedule");
        assert_eq!(stats[0].count, 1);
        assert!((stats[0].total_us - 100.0).abs() < 1e-9);
        // 100 µs = 100_000 ns ∈ [2^16, 2^17) → upper bound 131071 ns.
        assert!((stats[0].p50_us - 131.071).abs() < 1e-9);
        let tracks = per_track_stats(&doc);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].spans, 2);
    }

    #[test]
    fn shard_spans_group_by_shard_arg() {
        let trace = ProcessTrace {
            process: "worker-0".into(),
            wall_anchor_ns: 0,
            dropped: 0,
            tracks: vec![TrackTrace {
                tid: 1,
                label: "w".into(),
                events: vec![
                    Event {
                        kind: SpanKind::WorkerShard,
                        start_ns: 0,
                        end_ns: 9_000,
                        a: 0,
                        b: 4,
                    },
                    Event {
                        kind: SpanKind::WorkerSteal,
                        start_ns: 9_000,
                        end_ns: 12_000,
                        a: 1,
                        b: 2,
                    },
                ],
            }],
        };
        let doc = doc_from(&[trace]);
        let shards = per_shard_stats(&doc.spans);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].shard, 0);
        assert_eq!(shards[0].runs, 1);
        assert_eq!(shards[0].units, 4);
        assert_eq!(shards[1].steals, 1);
        assert_eq!(shards[1].units, 2);
    }

    #[test]
    fn dropped_event_counters_survive_the_round_trip() {
        let trace = ProcessTrace {
            process: "worker-1".into(),
            wall_anchor_ns: 0,
            dropped: 42,
            tracks: vec![TrackTrace {
                tid: 1,
                label: "w".into(),
                events: vec![Event {
                    kind: SpanKind::StealClaim,
                    start_ns: 5,
                    end_ns: 5,
                    a: 1,
                    b: 3,
                }],
            }],
        };
        let doc = doc_from(&[trace]);
        assert_eq!(doc.dropped_events.get(&1), Some(&42));
        assert_eq!(doc.total_dropped(), 42);
        assert_eq!(doc.instants_by_name.get("steal-claim"), Some(&1));
        // Labels without the suffix simply have no counter.
        assert_eq!(dropped_from_label("plain label"), None);
        assert_eq!(dropped_from_label("x (dropped_events=7)"), Some(7));
    }

    #[test]
    fn unmatched_begin_end_is_rejected() {
        let text = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":0,"name":"x"},
            {"ph":"E","pid":1,"tid":1,"ts":1},
            {"ph":"B","pid":1,"tid":2,"ts":0,"name":"y"}
        ]}"#;
        let value = json::parse(text).unwrap();
        let err = parse_chrome(&value).unwrap_err();
        assert!(err.contains("unmatched B"), "{err}");

        let text = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":1,"ts":1}]}"#;
        let err = parse_chrome(&json::parse(text).unwrap()).unwrap_err();
        assert!(err.contains("E without matching B"), "{err}");
    }

    #[test]
    fn structural_corruption_is_rejected() {
        for bad in [
            r#"{"notTraceEvents":[]}"#,
            r#"{"traceEvents":{}}"#,
            r#"{"traceEvents":[{"name":"x"}]}"#,
            r#"{"traceEvents":[{"ph":"X","name":"x","pid":1,"tid":1,"ts":0}]}"#,
            r#"{"traceEvents":[{"ph":"?","pid":1,"tid":1}]}"#,
        ] {
            let value = json::parse(bad).unwrap();
            assert!(parse_chrome(&value).is_err(), "{bad}");
        }
    }
}
