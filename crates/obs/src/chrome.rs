//! The merged fleet timeline: Chrome trace-event JSON emission.
//!
//! [`chrome_trace_json`] takes any number of per-process traces (the
//! coordinator's own snapshot plus every worker's `WTRC` file) and
//! emits one `{"traceEvents": [...]}` document loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! * each **process** becomes one `pid` track, named via `process_name`
//!   metadata;
//! * each recording **thread** becomes one `tid` track under its
//!   process, named via `thread_name` metadata (workers label their
//!   thread with the worker tag);
//! * spans are complete (`"ph":"X"`) events with microsecond `ts`/`dur`
//!   (fractional, so nanosecond precision survives);
//! * instants are `"ph":"i"` thread-scoped marks;
//! * timelines from different processes are aligned by each trace's
//!   wall-clock anchor: every event is offset by its process's anchor
//!   minus the earliest anchor in the set, so fleet-wide causality
//!   (steal offer on one worker, claim on another) reads correctly.
//!
//! Ring-buffer truncation is surfaced as a `dropped_events` arg on the
//! process metadata, never hidden.

use std::fs;
use std::io;
use std::path::Path;

use crate::span::format_point;
use crate::trace::ProcessTrace;

/// Escape a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format nanoseconds as fractional microseconds (`123.456`).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

fn push_meta(out: &mut String, name: &str, pid: u32, tid: u32, arg_name: &str, arg_value: &str) {
    out.push_str("{\"ph\":\"M\",\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"args\":{\"");
    out.push_str(arg_name);
    out.push_str("\":\"");
    escape_into(out, arg_value);
    out.push_str("\"}}");
}

/// Render merged traces as a Chrome trace-event JSON document.
#[must_use]
pub fn chrome_trace_json(traces: &[ProcessTrace]) -> String {
    let base_anchor = traces
        .iter()
        .map(|t| t.wall_anchor_ns)
        .min()
        .unwrap_or_default();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for (index, trace) in traces.iter().enumerate() {
        let pid = u32::try_from(index).unwrap_or(u32::MAX).saturating_add(1);
        let offset_ns = trace.wall_anchor_ns.saturating_sub(base_anchor);
        sep(&mut out, &mut first);
        let label = format!("{} (dropped_events={})", trace.process, trace.dropped);
        push_meta(&mut out, "process_name", pid, 0, "name", &label);
        for track in &trace.tracks {
            sep(&mut out, &mut first);
            push_meta(
                &mut out,
                "thread_name",
                pid,
                track.tid,
                "name",
                &track.label,
            );
            for event in &track.events {
                sep(&mut out, &mut first);
                let ts = event.start_ns.saturating_add(offset_ns);
                let dur = event.end_ns.saturating_sub(event.start_ns);
                out.push_str("{\"name\":\"");
                out.push_str(event.kind.name());
                out.push_str("\",\"cat\":\"");
                out.push_str(event.kind.category());
                if event.is_instant() {
                    out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    push_us(&mut out, ts);
                } else {
                    out.push_str("\",\"ph\":\"X\",\"ts\":");
                    push_us(&mut out, ts);
                    out.push_str(",\"dur\":");
                    push_us(&mut out, dur);
                }
                out.push_str(",\"pid\":");
                out.push_str(&pid.to_string());
                out.push_str(",\"tid\":");
                out.push_str(&track.tid.to_string());
                let (a_name, b_name) = event.kind.arg_names();
                out.push_str(",\"args\":{\"");
                out.push_str(a_name);
                out.push_str("\":");
                out.push_str(&event.a.to_string());
                out.push_str(",\"");
                out.push_str(b_name);
                out.push_str("\":");
                if event.kind.b_is_point() {
                    out.push('"');
                    escape_into(&mut out, &format_point(event.b));
                    out.push('"');
                } else {
                    out.push_str(&event.b.to_string());
                }
                out.push_str("}}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Write the merged Chrome trace JSON for `traces` to `path`.
pub fn write_chrome_trace_file(path: &Path, traces: &[ProcessTrace]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, chrome_trace_json(traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Event, SpanKind};
    use crate::trace::TrackTrace;

    fn trace(process: &str, anchor: u64, events: Vec<Event>) -> ProcessTrace {
        ProcessTrace {
            process: process.into(),
            wall_anchor_ns: anchor,
            dropped: 0,
            tracks: vec![TrackTrace {
                tid: 1,
                label: format!("{process}-main"),
                events,
            }],
        }
    }

    #[test]
    fn spans_and_instants_render_with_alignment() {
        let a = trace(
            "repro",
            1_000_000,
            vec![Event {
                kind: SpanKind::Widen,
                start_ns: 2_500,
                end_ns: 12_500,
                a: 3,
                b: 2,
            }],
        );
        let b = trace(
            "worker-1",
            4_000_000,
            vec![Event {
                kind: SpanKind::StealClaim,
                start_ns: 0,
                end_ns: 0,
                a: 5,
                b: 9,
            }],
        );
        let json = chrome_trace_json(&[a, b]);
        // Process 1 is the base anchor: ts = 2.5 µs, dur = 10 µs.
        assert!(json.contains(
            "\"name\":\"widen\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":2.500,\"dur\":10.000"
        ));
        assert!(json.contains("\"args\":{\"loop\":3,\"width\":2}"));
        // Process 2 is 3 ms later: instant at 3000 µs.
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":3000.000"));
        assert!(json.contains("\"args\":{\"shard\":5,\"units\":9}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("worker-1-main"));
    }

    #[test]
    fn point_args_render_in_paper_notation() {
        let t = trace(
            "repro",
            0,
            vec![Event {
                kind: SpanKind::SweepUnit,
                start_ns: 0,
                end_ns: 10,
                a: 1,
                b: crate::span::pack_point(4, 2, Some(128)),
            }],
        );
        let json = chrome_trace_json(&[t]);
        assert!(json.contains("\"point\":\"4w2(128)\""));
    }
}
