//! End-to-end recorder tests: global install, multi-thread tracks,
//! drop counting, binary file round-trip, Chrome emission.
//!
//! The recorder is process-global, so every test here serialises on one
//! mutex — `cargo test` runs test fns of one binary concurrently.

use std::sync::{Mutex, MutexGuard, OnceLock};

use widening_obs as obs;

fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn disabled_recording_is_inert() {
    let _guard = global_lock();
    obs::uninstall();
    assert!(!obs::is_enabled());
    assert_eq!(obs::now_ns(), None);
    obs::instant(obs::SpanKind::Evict, 1, 2);
    let span = obs::span(obs::SpanKind::Widen, 0, 2);
    drop(span);
    // Nothing to snapshot anywhere; installing a fresh recorder now
    // must start empty.
    let recorder = obs::Recorder::new("t");
    obs::install(&recorder);
    obs::uninstall();
    assert_eq!(recorder.snapshot().event_count(), 0);
}

#[test]
fn spans_instants_and_labels_land_in_tracks() {
    let _guard = global_lock();
    let recorder = obs::Recorder::new("proc");
    obs::install(&recorder);
    obs::set_thread_label("driver");
    {
        let _span = obs::span(obs::SpanKind::Schedule, 7, obs::pack_point(4, 2, Some(128)));
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    obs::instant(obs::SpanKind::StealOffer, 3, 5);
    let cancelled = obs::span(obs::SpanKind::Widen, 0, 0);
    cancelled.cancel();
    let handle = std::thread::spawn(|| {
        obs::set_thread_label("worker-thread");
        let _span = obs::span(obs::SpanKind::SweepUnit, 1, 2);
    });
    handle.join().unwrap();
    obs::uninstall();

    let trace = recorder.snapshot();
    assert_eq!(trace.process, "proc");
    assert_eq!(trace.dropped, 0);
    assert_eq!(trace.tracks.len(), 2, "one track per recording thread");
    let main = trace
        .tracks
        .iter()
        .find(|t| t.label == "driver")
        .expect("labelled main track");
    assert_eq!(main.events.len(), 2, "cancelled span not recorded");
    assert_eq!(main.events[0].kind, obs::SpanKind::Schedule);
    assert!(main.events[0].end_ns > main.events[0].start_ns);
    assert!(main.events[1].is_instant());
    let worker = trace
        .tracks
        .iter()
        .find(|t| t.label == "worker-thread")
        .expect("labelled worker track");
    assert_eq!(worker.events.len(), 1);
    assert_eq!(worker.events[0].kind, obs::SpanKind::SweepUnit);
}

#[test]
fn ring_pressure_is_counted_not_silent() {
    let _guard = global_lock();
    let recorder = obs::Recorder::with_capacity("tiny", 8);
    obs::install(&recorder);
    for i in 0..20 {
        obs::instant(obs::SpanKind::Heartbeat, i, 0);
    }
    obs::uninstall();
    let trace = recorder.snapshot();
    assert_eq!(trace.event_count(), 8);
    assert_eq!(trace.dropped, 12);
    // The survivors are the newest events.
    let kept: Vec<u64> = trace.tracks[0].events.iter().map(|e| e.a).collect();
    assert_eq!(kept, (12..20).collect::<Vec<u64>>());
    // Truncation is visible in the exported timeline, too.
    let json = obs::chrome_trace_json(&[trace]);
    assert!(json.contains("dropped_events=12"));
}

#[test]
fn snapshot_survives_file_round_trip_and_chrome_export() {
    let _guard = global_lock();
    let recorder = obs::Recorder::new("exporter");
    obs::install(&recorder);
    {
        let _span = obs::span(obs::SpanKind::Mii, 2, obs::pack_point(1, 2, Some(64)));
    }
    obs::uninstall();
    let trace = recorder.snapshot();

    let dir = std::env::temp_dir().join(format!("obs-recorder-{}", std::process::id()));
    let path = dir.join("worker-0.trace.bin");
    obs::write_trace_file(&path, &trace).unwrap();
    let read = obs::read_trace_file(&path).expect("decodes");
    assert_eq!(read, trace);

    let text = obs::chrome_trace_json(&[read]);
    let value = obs::json::parse(&text).expect("emitted JSON parses");
    let doc = obs::analyze::parse_chrome(&value).expect("valid chrome trace");
    assert_eq!(doc.spans.len(), 1);
    assert_eq!(doc.spans[0].name, "mii");
    std::fs::remove_dir_all(&dir).unwrap();
}
