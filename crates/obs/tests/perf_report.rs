//! Property and golden tests for the perf-report codec
//! ([`widening_obs::report`]): serialisation round-trips over random
//! reports, corrupted input never panics the parser, and the compare
//! gate's verdicts are pinned against hand-written documents.

use proptest::prelude::*;
use widening_obs::report::{
    compare, CompareConfig, FleetEvents, PerfReport, Probe, StageLatency, UnitSample, Verdict,
};

/// The codec's exact-integer domain: JSON numbers round-trip exactly
/// below 2⁵³ (the parser rejects anything larger), and 2⁵³ nanoseconds
/// is already 104 days of wall time.
const MAX_EXACT: u64 = 1 << 53;

/// Strings exercising the escaper: ASCII letters, punctuation that
/// needs escaping (`"`/`\`), and raw control characters.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..128, 0..12)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_opt(max: u64) -> impl Strategy<Value = Option<u64>> {
    (0..max, any::<bool>()).prop_map(|(v, some)| some.then_some(v))
}

fn arb_probe() -> impl Strategy<Value = Probe> {
    (arb_name(), proptest::collection::vec(0..MAX_EXACT, 0..5))
        .prop_map(|(name, samples_ns)| Probe { name, samples_ns })
}

fn arb_stage() -> impl Strategy<Value = StageLatency> {
    (
        arb_name(),
        0..MAX_EXACT,
        0..MAX_EXACT,
        arb_opt(MAX_EXACT),
        arb_opt(MAX_EXACT),
        arb_opt(MAX_EXACT),
    )
        .prop_map(
            |(name, count, sum_ns, p50_ns, p90_ns, p99_ns)| StageLatency {
                name,
                count,
                sum_ns,
                p50_ns,
                p90_ns,
                p99_ns,
            },
        )
}

fn arb_unit() -> impl Strategy<Value = UnitSample> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        arb_opt(u64::from(u32::MAX)),
        0..MAX_EXACT,
    )
        .prop_map(
            |(loop_index, replication, width, registers, wall_ns)| UnitSample {
                loop_index,
                replication,
                width,
                registers: registers.map(|z| z as u32),
                wall_ns,
            },
        )
}

fn arb_fleet() -> impl Strategy<Value = FleetEvents> {
    (0..MAX_EXACT, 0..MAX_EXACT, 0..MAX_EXACT, 0..MAX_EXACT).prop_map(
        |(steals, steal_offers, scale_ups, lease_expiries)| FleetEvents {
            steals,
            steal_offers,
            scale_ups,
            scale_downs: steals % 7,
            lease_expiries,
            respawns: steal_offers % 5,
        },
    )
}

fn arb_report() -> impl Strategy<Value = PerfReport> {
    (
        proptest::collection::vec((arb_name(), arb_name()), 0..4),
        proptest::collection::vec(arb_probe(), 0..5),
        proptest::collection::vec(arb_stage(), 0..4),
        proptest::collection::vec((arb_name(), 0..MAX_EXACT), 0..5),
        proptest::collection::vec(arb_unit(), 0..6),
        arb_fleet(),
    )
        .prop_map(
            |(meta, probes, stages, counters, units, fleet)| PerfReport {
                meta: meta.into_iter().collect(),
                probes,
                stages,
                counters: counters.into_iter().collect(),
                units,
                fleet,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every report — including names full of quotes, backslashes and
    /// control characters — survives serialise → parse unchanged.
    #[test]
    fn report_round_trips(report in arb_report()) {
        let text = report.to_json();
        match PerfReport::from_json(&text) {
            Ok(back) => prop_assert_eq!(back, report),
            Err(why) => prop_assert!(false, "round-trip rejected: {}", why),
        }
    }

    /// Arbitrary bytes never panic the parser — they parse or they
    /// return `Err`, nothing else.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = PerfReport::from_json(&String::from_utf8_lossy(&bytes));
    }

    /// Truncating a valid document at any char boundary never panics.
    #[test]
    fn truncation_never_panics(report in arb_report(), cut in any::<usize>()) {
        let text = report.to_json();
        let mut at = cut % (text.len() + 1);
        while !text.is_char_boundary(at) {
            at -= 1;
        }
        let _ = PerfReport::from_json(&text[..at]);
    }

    /// Flipping one byte of a valid document never panics (it may
    /// still parse — e.g. a digit flipped to another digit).
    #[test]
    fn single_byte_corruption_never_panics(
        report in arb_report(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = report.to_json().into_bytes();
        let at = pos % bytes.len();
        bytes[at] ^= flip;
        let _ = PerfReport::from_json(&String::from_utf8_lossy(&bytes));
    }
}

/// A report with the given `(name, samples)` probes and nothing else.
fn probes(list: &[(&str, &[u64])]) -> PerfReport {
    let mut r = PerfReport::new();
    for (name, samples) in list {
        for s in *samples {
            r.push_sample(name, *s);
        }
    }
    r
}

/// Golden: a genuine 2× regression on a slow probe fails the gate,
/// and the verdict names the offending probe.
#[test]
fn golden_known_regression_fails_the_gate() {
    let base = probes(&[
        ("sweep.wall_ns", &[1_000_000_000, 1_050_000_000]),
        ("corpus.generate.wall_ns", &[40_000_000]),
    ]);
    let cand = probes(&[
        ("sweep.wall_ns", &[2_000_000_000, 2_100_000_000]),
        ("corpus.generate.wall_ns", &[41_000_000]),
    ]);
    let cmp = compare(&base, &cand, &CompareConfig::default());
    assert_eq!(cmp.regressions(), 1);
    let bad: Vec<&str> = cmp
        .rows
        .iter()
        .filter(|r| r.verdict == Verdict::Regressed)
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(bad, ["sweep.wall_ns"]);
}

/// Golden: same-machine rerun noise — 20% drift on a slow probe, 5×
/// jitter on a microsecond probe — passes the gate.
#[test]
fn golden_within_noise_passes_the_gate() {
    let base = probes(&[
        ("sweep.wall_ns", &[1_000_000_000]),
        ("store.mii.latency-ns.sum", &[200_000]),
    ]);
    let cand = probes(&[
        ("sweep.wall_ns", &[1_200_000_000]),
        ("store.mii.latency-ns.sum", &[1_000_000]),
    ]);
    let cmp = compare(&base, &cand, &CompareConfig::default());
    assert_eq!(cmp.regressions(), 0);
    assert_eq!(cmp.rows.len(), 2);
}

/// Golden wire format: a hand-written v1 document parses to exactly
/// the expected report, pinning field names and shapes against
/// accidental codec drift.
#[test]
fn golden_wire_format_parses() {
    let text = r#"{
        "format": "widening-perf-report",
        "version": 1,
        "meta": {"suite": "sweep+baseline256"},
        "probes": [{"name": "sweep.wall_ns", "samples_ns": [1500, 1400]}],
        "stages": [{"name": "store.widen.latency-ns", "count": 3, "sum_ns": 90,
                    "p50_ns": 31, "p90_ns": 63, "p99_ns": null}],
        "counters": {"store.widen.requests": 9},
        "units": [{"loop": 2, "x": 4, "y": 2, "z": 64, "wall_ns": 700},
                  {"loop": 0, "x": 2, "y": 2, "z": null, "wall_ns": 300}],
        "fleet": {"steals": 1, "steal_offers": 2, "scale_ups": 0,
                  "scale_downs": 0, "lease_expiries": 0, "respawns": 0}
    }"#;
    let report = PerfReport::from_json(text).expect("golden document parses");
    assert_eq!(report.meta["suite"], "sweep+baseline256");
    assert_eq!(
        report.probe("sweep.wall_ns").and_then(Probe::min_ns),
        Some(1400)
    );
    assert_eq!(report.stages.len(), 1);
    assert_eq!(report.stages[0].p90_ns, Some(63));
    assert_eq!(report.stages[0].p99_ns, None);
    assert_eq!(report.counters["store.widen.requests"], 9);
    assert_eq!(report.units.len(), 2);
    assert_eq!(report.units[0].registers, Some(64));
    assert_eq!(report.units[1].registers, None);
    assert_eq!(report.fleet.steal_offers, 2);
    // And the re-serialised form parses back to the same report.
    assert_eq!(
        PerfReport::from_json(&report.to_json()).expect("round-trip"),
        report
    );
}

/// Foreign format tags and future versions are rejected with the
/// documented error strings, not mis-parsed.
#[test]
fn golden_foreign_and_future_documents_are_rejected() {
    let foreign = r#"{"format": "someone-elses-report", "version": 1}"#;
    assert!(PerfReport::from_json(foreign)
        .unwrap_err()
        .contains("format"));
    let future = r#"{"format": "widening-perf-report", "version": 2}"#;
    assert!(PerfReport::from_json(future)
        .unwrap_err()
        .contains("version"));
}
