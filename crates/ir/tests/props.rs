//! Property tests for the IR: graph construction invariants hold for
//! arbitrary generated loop shapes.

use proptest::prelude::*;
use widening_ir::{Ddg, DdgBuilder, EdgeKind, NodeId, OpKind, StronglyConnectedComponents};

/// Strategy: a random but always-valid loop body. Distance-0 edges only
/// go forward (src < dst), which guarantees the distance-0 DAG
/// invariant; carried edges may go anywhere.
fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let kinds = prop_oneof![
        Just(OpKind::FAdd),
        Just(OpKind::FMul),
        Just(OpKind::FSub),
        Just(OpKind::FDiv),
    ];
    (2usize..24, proptest::collection::vec(kinds, 24))
        .prop_flat_map(|(n, kinds)| {
            let edges = proptest::collection::vec((0usize..n, 0usize..n, 0u32..4), 0..3 * n);
            (Just(n), Just(kinds), edges)
        })
        .prop_map(|(n, kinds, edges)| {
            let mut b = DdgBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        b.load(1)
                    } else {
                        b.op(kinds[i])
                    }
                })
                .collect();
            for (s, d, dist) in edges {
                let (s, d) = (s.min(n - 1), d.min(n - 1));
                if dist == 0 {
                    if s < d {
                        b.flow(ids[s], ids[d]);
                    }
                } else {
                    b.carried_flow(ids[s], ids[d], dist);
                }
            }
            b.build().expect("construction is valid by design")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sccs_partition_the_nodes(g in arb_ddg()) {
        let sccs = StronglyConnectedComponents::compute(&g);
        let mut seen: Vec<NodeId> =
            sccs.components().iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, g.node_ids().collect::<Vec<_>>());
        // component_of is consistent with the component lists.
        for (i, comp) in sccs.components().iter().enumerate() {
            for &v in comp {
                prop_assert_eq!(sccs.component_of(v), i);
            }
        }
    }

    #[test]
    fn topological_order_respects_zero_distance_edges(g in arb_ddg()) {
        let order = g.zero_distance_topological_order();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().copied().enumerate().map(|(i, v)| (v, i)).collect();
        for e in g.edges() {
            if e.distance == 0 {
                prop_assert!(pos[&e.src] < pos[&e.dst]);
            }
        }
    }

    #[test]
    fn recurrence_nodes_have_circuits(g in arb_ddg()) {
        let sccs = StronglyConnectedComponents::compute(&g);
        for v in g.recurrence_nodes() {
            prop_assert!(sccs.on_circuit(&g, v));
            prop_assert!(g.min_recurrence_distance(v).is_some());
        }
    }

    #[test]
    fn min_recurrence_distance_is_positive_and_tight(g in arb_ddg()) {
        for v in g.node_ids() {
            if let Some(d) = g.min_recurrence_distance(v) {
                prop_assert!(d >= 1);
                // There is a circuit: v must be in a non-trivial SCC or
                // have a self edge.
                let sccs = StronglyConnectedComponents::compute(&g);
                prop_assert!(sccs.on_circuit(&g, v));
            }
        }
    }

    #[test]
    fn edge_endpoints_always_valid(g in arb_ddg()) {
        for e in g.edges() {
            prop_assert!(e.src.index() < g.num_nodes());
            prop_assert!(e.dst.index() < g.num_nodes());
            if e.kind == EdgeKind::Flow {
                prop_assert!(g.op(e.src).produces_value());
            }
        }
    }
}
