//! A named, weighted inner loop: dependence graph plus execution
//! statistics.

use std::fmt;

use crate::ddg::Ddg;

/// One inner loop of the workload.
///
/// The paper's corpus is 1180 inner loops that account for 78% of the
/// Perfect Club's execution time; results aggregate *total cycles*, so a
/// loop contributes `II · iterations · weight` cycles, where `weight` is
/// the number of times the loop is entered over the whole program run and
/// `iterations` the average trip count per entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    name: String,
    ddg: Ddg,
    trip_count: u64,
    weight: f64,
}

impl Loop {
    /// Creates a loop with weight 1. See [`LoopBuilder`] for full control.
    ///
    /// # Panics
    ///
    /// Panics if `trip_count` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, ddg: Ddg, trip_count: u64) -> Self {
        LoopBuilder::new(name, ddg).trip_count(trip_count).build()
    }

    /// The loop's name (diagnostic only).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dependence graph of the loop body.
    #[must_use]
    pub fn ddg(&self) -> &Ddg {
        &self.ddg
    }

    /// Average iterations per entry to the loop.
    #[must_use]
    pub fn trip_count(&self) -> u64 {
        self.trip_count
    }

    /// Relative execution frequency (times the loop is entered).
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Total dynamic iterations contributed to aggregate metrics:
    /// `trip_count · weight`.
    #[must_use]
    pub fn dynamic_iterations(&self) -> f64 {
        self.trip_count as f64 * self.weight
    }

    /// Replaces the dependence graph, keeping name and statistics. Used
    /// by transforms (widening, spill insertion) that rewrite the body.
    #[must_use]
    pub fn with_ddg(&self, ddg: Ddg) -> Self {
        Loop {
            name: self.name.clone(),
            ddg,
            trip_count: self.trip_count,
            weight: self.weight,
        }
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} ops, {} edges, trip {}, weight {})",
            self.name,
            self.ddg.num_nodes(),
            self.ddg.num_edges(),
            self.trip_count,
            self.weight
        )
    }
}

/// Builder for [`Loop`].
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    ddg: Ddg,
    trip_count: u64,
    weight: f64,
}

impl LoopBuilder {
    /// Starts a builder with trip count 100 and weight 1.
    pub fn new(name: impl Into<String>, ddg: Ddg) -> Self {
        LoopBuilder {
            name: name.into(),
            ddg,
            trip_count: 100,
            weight: 1.0,
        }
    }

    /// Sets the average trip count per loop entry.
    #[must_use]
    pub fn trip_count(mut self, trip_count: u64) -> Self {
        self.trip_count = trip_count;
        self
    }

    /// Sets the relative execution frequency.
    #[must_use]
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Builds the loop.
    ///
    /// # Panics
    ///
    /// Panics if the trip count is zero or the weight is not a positive,
    /// finite number.
    #[must_use]
    pub fn build(self) -> Loop {
        assert!(self.trip_count > 0, "trip count must be positive");
        assert!(
            self.weight.is_finite() && self.weight > 0.0,
            "weight must be positive and finite"
        );
        Loop {
            name: self.name,
            ddg: self.ddg,
            trip_count: self.trip_count,
            weight: self.weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;
    use crate::op::OpKind;

    fn tiny() -> Ddg {
        let mut b = DdgBuilder::new();
        let ld = b.load(1);
        let add = b.op(OpKind::FAdd);
        b.flow(ld, add);
        b.build().unwrap()
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let l = LoopBuilder::new("t", tiny())
            .trip_count(50)
            .weight(3.0)
            .build();
        assert_eq!(l.trip_count(), 50);
        assert_eq!(l.weight(), 3.0);
        assert_eq!(l.dynamic_iterations(), 150.0);
    }

    #[test]
    #[should_panic(expected = "trip count must be positive")]
    fn zero_trip_count_panics() {
        let _ = LoopBuilder::new("t", tiny()).trip_count(0).build();
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn bad_weight_panics() {
        let _ = LoopBuilder::new("t", tiny()).weight(f64::NAN).build();
    }

    #[test]
    fn with_ddg_preserves_stats() {
        let l = LoopBuilder::new("t", tiny())
            .trip_count(7)
            .weight(2.0)
            .build();
        let l2 = l.with_ddg(tiny());
        assert_eq!(l2.trip_count(), 7);
        assert_eq!(l2.weight(), 2.0);
        assert_eq!(l2.name(), "t");
    }

    #[test]
    fn display_mentions_name_and_size() {
        let l = Loop::new("daxpy", tiny(), 10);
        let s = l.to_string();
        assert!(s.contains("daxpy"));
        assert!(s.contains("2 ops"));
    }
}
