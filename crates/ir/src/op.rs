//! Operation kinds, resource classes and compactability hints.

use std::fmt;

/// The kind of a loop-body operation.
///
/// The paper's machine model schedules two resource classes: memory
/// accesses on *buses* and floating-point operations on *FPUs* (§2). The
/// kinds below are the operation repertoire of the paper's latency table
/// (Table 6): stores, fully pipelined loads/adds/multiplies, and
/// unpipelined divides and square roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Memory read into a register (a bus operation).
    Load,
    /// Memory write (a bus operation). Produces no register result.
    Store,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction (same cost class as [`OpKind::FAdd`]).
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division — **not pipelined** (Table 6).
    FDiv,
    /// Floating-point square root — **not pipelined** (Table 6).
    FSqrt,
    /// Register-to-register copy; used e.g. when modeling compiler
    /// temporaries. Executes on an FPU slot with add-class latency.
    FCopy,
}

impl OpKind {
    /// All operation kinds, in a stable order.
    pub const ALL: [OpKind; 8] = [
        OpKind::Load,
        OpKind::Store,
        OpKind::FAdd,
        OpKind::FSub,
        OpKind::FMul,
        OpKind::FDiv,
        OpKind::FSqrt,
        OpKind::FCopy,
    ];

    /// The resource class this operation occupies for one cycle when it
    /// issues.
    #[must_use]
    pub fn resource_class(self) -> ResourceClass {
        match self {
            OpKind::Load | OpKind::Store => ResourceClass::Bus,
            _ => ResourceClass::Fpu,
        }
    }

    /// Whether the operation reads or writes memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Whether the operation produces a register result that downstream
    /// operations consume. Stores do not.
    #[must_use]
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Whether the functional unit pipeline accepts a new operation of
    /// this kind every cycle. Divide and square root are unpipelined
    /// (Table 6): they occupy their unit for their full latency.
    #[must_use]
    pub fn is_pipelined(self) -> bool {
        !matches!(self, OpKind::FDiv | OpKind::FSqrt)
    }

    /// Short mnemonic used in schedule dumps.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::FAdd => "fadd",
            OpKind::FSub => "fsub",
            OpKind::FMul => "fmul",
            OpKind::FDiv => "fdiv",
            OpKind::FSqrt => "fsqrt",
            OpKind::FCopy => "fmov",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The two replicated/widened resource classes of the paper's machine
/// model: buses between the register file and the first-level cache, and
/// general-purpose floating-point units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceClass {
    /// Memory port (bidirectional bus). An `XwY` machine has `X`.
    Bus,
    /// General-purpose FPU. An `XwY` machine has `2·X`.
    Fpu,
}

impl ResourceClass {
    /// Both resource classes, in a stable order.
    pub const ALL: [ResourceClass; 2] = [ResourceClass::Bus, ResourceClass::Fpu];
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceClass::Bus => f.write_str("bus"),
            ResourceClass::Fpu => f.write_str("fpu"),
        }
    }
}

/// A hint for the widening transform's compactability analysis (§2 of the
/// paper): whether `Y` consecutive-iteration instances of this operation
/// may be *compacted* into one wide operation.
///
/// `Auto` lets the analysis decide from structure (stride, recurrences);
/// `Never` marks operations that are never compactable regardless of
/// structure — the paper's examples are non-unit-stride or irregular
/// accesses, but the same flag models any operation the compiler cannot
/// prove safe to widen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Compactability {
    /// Decide from structure (default).
    #[default]
    Auto,
    /// Never compact this operation.
    Never,
}

/// Kind of dependence between two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// True data flow through a register: the destination consumes the
    /// source's result. Only these edges define register lifetimes.
    Flow,
    /// Memory-carried dependence (store→load, load→store, store→store on
    /// possibly-aliasing addresses).
    Memory,
    /// Any other ordering constraint the front end wants preserved.
    Order,
}

impl EdgeKind {
    /// Whether the edge carries a register value from source to
    /// destination.
    #[must_use]
    pub fn is_flow(self) -> bool {
        matches!(self, EdgeKind::Flow)
    }
}

/// A single operation node of a [`crate::Ddg`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Op {
    kind: OpKind,
    stride: Option<i64>,
    compactability: Compactability,
}

impl Op {
    /// Creates a non-memory operation.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a memory operation — use [`Op::memory`] so a
    /// stride is always recorded for loads and stores.
    #[must_use]
    pub fn new(kind: OpKind) -> Self {
        assert!(
            !kind.is_memory(),
            "memory operations must be built with Op::memory (kind={kind})"
        );
        Op {
            kind,
            stride: None,
            compactability: Compactability::Auto,
        }
    }

    /// Creates a memory operation with the given element stride between
    /// consecutive iterations. Stride `1` accesses consecutive words — the
    /// compactable case for wide buses (§2).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a memory operation.
    #[must_use]
    pub fn memory(kind: OpKind, stride: i64) -> Self {
        assert!(
            kind.is_memory(),
            "Op::memory requires a load or store (kind={kind})"
        );
        Op {
            kind,
            stride: Some(stride),
            compactability: Compactability::Auto,
        }
    }

    /// Marks the operation as never compactable and returns it.
    #[must_use]
    pub fn never_compactable(mut self) -> Self {
        self.compactability = Compactability::Never;
        self
    }

    /// The operation kind.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The memory stride in elements, if this is a load or store.
    #[must_use]
    pub fn stride(&self) -> Option<i64> {
        self.stride
    }

    /// The compactability hint.
    #[must_use]
    pub fn compactability(&self) -> Compactability {
        self.compactability
    }

    /// Resource class shortcut (see [`OpKind::resource_class`]).
    #[must_use]
    pub fn resource_class(&self) -> ResourceClass {
        self.kind.resource_class()
    }

    /// Whether this operation produces a register value.
    #[must_use]
    pub fn produces_value(&self) -> bool {
        self.kind.produces_value()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stride {
            Some(s) => write!(f, "{}[stride {s}]", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_classes() {
        assert_eq!(OpKind::Load.resource_class(), ResourceClass::Bus);
        assert_eq!(OpKind::Store.resource_class(), ResourceClass::Bus);
        for k in [
            OpKind::FAdd,
            OpKind::FSub,
            OpKind::FMul,
            OpKind::FDiv,
            OpKind::FSqrt,
        ] {
            assert_eq!(k.resource_class(), ResourceClass::Fpu);
        }
    }

    #[test]
    fn stores_produce_no_value() {
        assert!(!OpKind::Store.produces_value());
        assert!(OpKind::Load.produces_value());
        assert!(OpKind::FDiv.produces_value());
    }

    #[test]
    fn div_sqrt_unpipelined() {
        assert!(!OpKind::FDiv.is_pipelined());
        assert!(!OpKind::FSqrt.is_pipelined());
        assert!(OpKind::FMul.is_pipelined());
        assert!(OpKind::Load.is_pipelined());
    }

    #[test]
    fn op_constructors() {
        let ld = Op::memory(OpKind::Load, 2);
        assert_eq!(ld.stride(), Some(2));
        let add = Op::new(OpKind::FAdd);
        assert_eq!(add.stride(), None);
        assert_eq!(add.compactability(), Compactability::Auto);
        let nc = Op::new(OpKind::FMul).never_compactable();
        assert_eq!(nc.compactability(), Compactability::Never);
    }

    #[test]
    #[should_panic(expected = "memory operations must be built with Op::memory")]
    fn new_rejects_memory() {
        let _ = Op::new(OpKind::Load);
    }

    #[test]
    #[should_panic(expected = "Op::memory requires a load or store")]
    fn memory_rejects_fpu() {
        let _ = Op::memory(OpKind::FAdd, 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::memory(OpKind::Load, 1).to_string(), "ld[stride 1]");
        assert_eq!(Op::new(OpKind::FSqrt).to_string(), "fsqrt");
        assert_eq!(format!("{}", ResourceClass::Bus), "bus");
    }

    #[test]
    fn all_kinds_have_distinct_mnemonics() {
        let mut seen = std::collections::HashSet::new();
        for k in OpKind::ALL {
            assert!(
                seen.insert(k.mnemonic()),
                "duplicate mnemonic {}",
                k.mnemonic()
            );
        }
    }
}
