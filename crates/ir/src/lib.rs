//! Loop intermediate representation for the *Widening Resources* (MICRO
//! 1998) reproduction.
//!
//! The paper evaluates VLIW design points on software-pipelined inner
//! loops. A loop is represented here as a [`Ddg`] — a data-dependence
//! graph whose nodes are typed operations ([`Op`]) and whose edges carry
//! an *iteration distance* (how many iterations earlier the producer
//! executes). Distance-0 edges must form a DAG; loop-carried edges
//! (distance ≥ 1) close *recurrences*, which bound the achievable
//! initiation interval of any modulo schedule.
//!
//! The crate is deliberately machine-independent: operation latencies are
//! a property of the machine's cycle model (see `widening-machine`), not
//! of the IR. What the IR does know is each operation's *kind* (which
//! determines the resource class it executes on), memory stride
//! information, and compactability hints used by the widening transform.
//!
//! # Example
//!
//! Build the dependence graph of a DAXPY-like loop body
//! (`y[i] = a * x[i] + y[i]`):
//!
//! ```
//! use widening_ir::{DdgBuilder, OpKind, EdgeKind};
//!
//! let mut b = DdgBuilder::new();
//! let xi = b.load(1);              // load x[i], stride 1
//! let yi = b.load(1);              // load y[i]
//! let mul = b.op(OpKind::FMul);    // a * x[i]
//! let add = b.op(OpKind::FAdd);    // .. + y[i]
//! let st = b.store(1);             // store y[i]
//! b.flow(xi, mul);
//! b.flow(yi, add);
//! b.flow(mul, add);
//! b.flow(add, st);
//! let ddg = b.build().expect("acyclic at distance 0");
//! assert_eq!(ddg.num_nodes(), 5);
//! assert!(ddg.sccs().iter().all(|scc| scc.len() == 1)); // no recurrence
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddg;
mod error;
mod kernels_support;
mod loops;
mod op;
mod scc;
pub mod semantics;
mod topo;

pub use ddg::{Ddg, DdgBuilder, Edge, NodeId};
pub use error::GraphError;
pub use kernels_support::DdgStats;
pub use loops::{Loop, LoopBuilder};
pub use op::{Compactability, EdgeKind, Op, OpKind, ResourceClass};
pub use scc::StronglyConnectedComponents;
pub use topo::topological_order;
