//! The data-dependence graph (`Ddg`) and its builder.

use std::fmt;

use crate::error::GraphError;
use crate::op::{EdgeKind, Op, OpKind, ResourceClass};
use crate::scc::StronglyConnectedComponents;
use crate::topo;

/// Index of an operation node inside a [`Ddg`].
///
/// Node ids are dense (`0..num_nodes`) and stable: a `Ddg` is immutable
/// once built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing parallel arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dependence edge: `dst` of iteration `i` depends on `src` of
/// iteration `i - distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Dependence kind; only [`EdgeKind::Flow`] edges carry register
    /// values.
    pub kind: EdgeKind,
    /// Iteration distance (`0` = same iteration, `k` = `k` iterations
    /// earlier). Loop-carried edges have `distance ≥ 1` and close
    /// recurrences.
    pub distance: u32,
}

impl Edge {
    /// Whether the edge is loop-carried.
    #[must_use]
    pub fn is_loop_carried(self) -> bool {
        self.distance > 0
    }
}

/// An immutable data-dependence graph for one inner-loop body.
///
/// Invariants (checked at build time):
///
/// * the graph is non-empty;
/// * all edges reference valid nodes;
/// * flow edges leave only value-producing operations;
/// * the distance-0 subgraph is acyclic.
#[derive(Debug, Clone, PartialEq)]
pub struct Ddg {
    ops: Vec<Op>,
    edges: Vec<Edge>,
    // Adjacency (edge indices), built once.
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl Ddg {
    /// Builds and validates a graph from parts. Prefer [`DdgBuilder`] for
    /// incremental construction.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if any invariant listed on [`Ddg`] is
    /// violated.
    pub fn from_parts(ops: Vec<Op>, edges: Vec<Edge>) -> Result<Self, GraphError> {
        if ops.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = ops.len();
        for e in &edges {
            for id in [e.src, e.dst] {
                if id.index() >= n {
                    return Err(GraphError::NodeOutOfRange {
                        index: id.index(),
                        len: n,
                    });
                }
            }
            if e.kind.is_flow() && !ops[e.src.index()].produces_value() {
                return Err(GraphError::FlowFromValueless { src: e.src.index() });
            }
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succs[e.src.index()].push(i as u32);
            preds[e.dst.index()].push(i as u32);
        }
        let ddg = Ddg {
            ops,
            edges,
            succs,
            preds,
        };
        // Distance-0 subgraph must be a DAG.
        if let Some(witness) = topo::zero_distance_cycle_witness(&ddg) {
            return Err(GraphError::ZeroDistanceCycle {
                witness: witness.index(),
            });
        }
        Ok(ddg)
    }

    /// Number of operation nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Number of dependence edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The operation at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn op(&self, id: NodeId) -> &Op {
        &self.ops[id.index()]
    }

    /// All operations, indexable by [`NodeId::index`].
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all node ids, `n0..n(N-1)`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.ops.len() as u32).map(NodeId)
    }

    /// Outgoing edges of `id`.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> + Clone {
        self.succs[id.index()]
            .iter()
            .map(|&i| &self.edges[i as usize])
    }

    /// Incoming edges of `id`.
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> + Clone {
        self.preds[id.index()]
            .iter()
            .map(|&i| &self.edges[i as usize])
    }

    /// Indices (into [`Ddg::edges`]) of the outgoing edges of `id`, in
    /// the same order as [`Ddg::out_edges`]. Lets callers index
    /// per-edge side tables without hashing.
    #[must_use]
    pub fn out_edge_ids(&self, id: NodeId) -> &[u32] {
        &self.succs[id.index()]
    }

    /// Indices (into [`Ddg::edges`]) of the incoming edges of `id`, in
    /// the same order as [`Ddg::in_edges`].
    #[must_use]
    pub fn in_edge_ids(&self, id: NodeId) -> &[u32] {
        &self.preds[id.index()]
    }

    /// The edge at index `idx` (as returned by [`Ddg::out_edge_ids`] /
    /// [`Ddg::in_edge_ids`]).
    #[must_use]
    pub fn edge(&self, idx: u32) -> &Edge {
        &self.edges[idx as usize]
    }

    /// Number of operations that occupy resource class `class`.
    #[must_use]
    pub fn count_class(&self, class: ResourceClass) -> usize {
        self.ops
            .iter()
            .filter(|o| o.resource_class() == class)
            .count()
    }

    /// Number of operations of the given kind.
    #[must_use]
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind() == kind).count()
    }

    /// Strongly connected components of the full graph (all distances).
    /// Singleton components without a self-edge are not recurrences;
    /// every other component is a recurrence the scheduler must respect.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<NodeId>> {
        StronglyConnectedComponents::compute(self).into_components()
    }

    /// Nodes that belong to some recurrence (an SCC with ≥ 2 nodes, or a
    /// self-edge of any distance).
    #[must_use]
    pub fn recurrence_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for comp in self.sccs() {
            if comp.len() >= 2 {
                out.extend(comp);
            } else {
                let v = comp[0];
                if self.out_edges(v).any(|e| e.dst == v) {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// A topological order of the distance-0 subgraph. Always exists by
    /// the build-time invariant.
    #[must_use]
    pub fn zero_distance_topological_order(&self) -> Vec<NodeId> {
        topo::topological_order(self).expect("validated at construction")
    }

    /// Minimum loop-carried distance over every recurrence circuit
    /// through `id`, or `None` if `id` is on no recurrence.
    ///
    /// This is the quantity the widening transform compares against the
    /// widening degree `Y`: instances of an operation whose tightest
    /// recurrence spans fewer than `Y` iterations are serially dependent
    /// and cannot be compacted.
    #[must_use]
    pub fn min_recurrence_distance(&self, id: NodeId) -> Option<u64> {
        // Shortest cycle through `id` by total distance, via Dijkstra-like
        // BFS on distance weights (all weights ≥ 0, small integers).
        let n = self.num_nodes();
        let mut dist = vec![u64::MAX; n];
        let mut heap = std::collections::BinaryHeap::new();
        // Start from successors of id.
        for e in self.out_edges(id) {
            let d = u64::from(e.distance);
            if e.dst == id {
                // Self-loop: candidate immediately.
                if d > 0 {
                    heap.push(std::cmp::Reverse((d, e.dst)));
                }
                continue;
            }
            if d < dist[e.dst.index()] {
                dist[e.dst.index()] = d;
                heap.push(std::cmp::Reverse((d, e.dst)));
            }
        }
        let mut best: Option<u64> = self
            .out_edges(id)
            .filter(|e| e.dst == id && e.distance > 0)
            .map(|e| u64::from(e.distance))
            .min();
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if v != id && d > dist[v.index()] {
                continue;
            }
            if v == id {
                // Completed a circuit.
                if d > 0 {
                    best = Some(best.map_or(d, |b| b.min(d)));
                }
                continue;
            }
            for e in self.out_edges(v) {
                let nd = d + u64::from(e.distance);
                if e.dst == id {
                    if nd > 0 && best.is_none_or(|b| nd < b) {
                        heap.push(std::cmp::Reverse((nd, e.dst)));
                    }
                } else if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    heap.push(std::cmp::Reverse((nd, e.dst)));
                }
            }
        }
        best
    }
}

/// Incremental builder for [`Ddg`].
///
/// Convenience methods cover the common cases; [`DdgBuilder::add_op`] and
/// [`DdgBuilder::add_edge`] are fully general.
#[derive(Debug, Clone, Default)]
pub struct DdgBuilder {
    ops: Vec<Op>,
    edges: Vec<Edge>,
}

impl DdgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary operation and returns its id.
    pub fn add_op(&mut self, op: Op) -> NodeId {
        let id = NodeId(self.ops.len() as u32);
        self.ops.push(op);
        id
    }

    /// Adds a non-memory operation of the given kind.
    pub fn op(&mut self, kind: OpKind) -> NodeId {
        self.add_op(Op::new(kind))
    }

    /// Adds a load with the given element stride.
    pub fn load(&mut self, stride: i64) -> NodeId {
        self.add_op(Op::memory(OpKind::Load, stride))
    }

    /// Adds a store with the given element stride.
    pub fn store(&mut self, stride: i64) -> NodeId {
        self.add_op(Op::memory(OpKind::Store, stride))
    }

    /// Adds an arbitrary edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind, distance: u32) {
        self.edges.push(Edge {
            src,
            dst,
            kind,
            distance,
        });
    }

    /// Adds a same-iteration flow edge `src → dst`.
    pub fn flow(&mut self, src: NodeId, dst: NodeId) {
        self.add_edge(src, dst, EdgeKind::Flow, 0);
    }

    /// Adds a loop-carried flow edge `src → dst` with the given distance,
    /// closing a recurrence.
    pub fn carried_flow(&mut self, src: NodeId, dst: NodeId, distance: u32) {
        self.add_edge(src, dst, EdgeKind::Flow, distance);
    }

    /// Number of operations added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// See [`Ddg::from_parts`].
    pub fn build(self) -> Result<Ddg, GraphError> {
        Ddg::from_parts(self.ops, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> Ddg {
        // ld -> fmul -> st
        let mut b = DdgBuilder::new();
        let ld = b.load(1);
        let mul = b.op(OpKind::FMul);
        let st = b.store(1);
        b.flow(ld, mul);
        b.flow(mul, st);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let g = chain3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.count_class(ResourceClass::Bus), 2);
        assert_eq!(g.count_class(ResourceClass::Fpu), 1);
        assert_eq!(g.count_kind(OpKind::Load), 1);
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = chain3();
        let mul = NodeId(1);
        assert_eq!(g.in_edges(mul).count(), 1);
        assert_eq!(g.out_edges(mul).count(), 1);
        assert_eq!(g.in_edges(mul).next().unwrap().src, NodeId(0));
        assert_eq!(g.out_edges(mul).next().unwrap().dst, NodeId(2));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(DdgBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let ops = vec![Op::new(OpKind::FAdd)];
        let edges = vec![Edge {
            src: NodeId(0),
            dst: NodeId(5),
            kind: EdgeKind::Flow,
            distance: 0,
        }];
        assert!(matches!(
            Ddg::from_parts(ops, edges),
            Err(GraphError::NodeOutOfRange { index: 5, len: 1 })
        ));
    }

    #[test]
    fn flow_from_store_rejected() {
        let mut b = DdgBuilder::new();
        let st = b.store(1);
        let add = b.op(OpKind::FAdd);
        b.flow(st, add);
        assert!(matches!(
            b.build(),
            Err(GraphError::FlowFromValueless { src: 0 })
        ));
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        b.flow(a, m);
        b.flow(m, a);
        assert!(matches!(
            b.build(),
            Err(GraphError::ZeroDistanceCycle { .. })
        ));
    }

    #[test]
    fn loop_carried_cycle_allowed() {
        // s = s + x[i]  (first-order recurrence)
        let mut b = DdgBuilder::new();
        let ld = b.load(1);
        let add = b.op(OpKind::FAdd);
        b.flow(ld, add);
        b.carried_flow(add, add, 1);
        let g = b.build().unwrap();
        assert_eq!(g.recurrence_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn min_recurrence_distance_self_loop() {
        let mut b = DdgBuilder::new();
        let add = b.op(OpKind::FAdd);
        b.carried_flow(add, add, 3);
        let g = b.build().unwrap();
        assert_eq!(g.min_recurrence_distance(NodeId(0)), Some(3));
    }

    #[test]
    fn min_recurrence_distance_two_node_cycle() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        b.flow(a, m);
        b.carried_flow(m, a, 2);
        let g = b.build().unwrap();
        assert_eq!(g.min_recurrence_distance(NodeId(0)), Some(2));
        assert_eq!(g.min_recurrence_distance(NodeId(1)), Some(2));
    }

    #[test]
    fn min_recurrence_distance_none_for_dag() {
        let g = chain3();
        for v in g.node_ids() {
            assert_eq!(g.min_recurrence_distance(v), None);
        }
    }

    #[test]
    fn min_recurrence_distance_picks_tightest_circuit() {
        // Two circuits through node 0: distance 1 (via n1) and distance 4
        // (self-loop).
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        b.flow(a, m);
        b.carried_flow(m, a, 1);
        b.carried_flow(a, a, 4);
        let g = b.build().unwrap();
        assert_eq!(g.min_recurrence_distance(NodeId(0)), Some(1));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
    }
}
