//! Summary statistics over a dependence graph, used by the workload
//! generator for calibration and by reports.

use crate::ddg::Ddg;
use crate::op::{OpKind, ResourceClass};

/// Aggregate shape statistics of a [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdgStats {
    /// Total operations.
    pub ops: usize,
    /// Total dependence edges.
    pub edges: usize,
    /// Memory operations (loads + stores).
    pub memory_ops: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// FPU operations.
    pub fpu_ops: usize,
    /// Unpipelined operations (divide, square root).
    pub unpipelined_ops: usize,
    /// Loop-carried edges.
    pub carried_edges: usize,
    /// Nodes on some recurrence circuit.
    pub recurrence_ops: usize,
    /// Memory operations with unit stride.
    pub unit_stride_ops: usize,
}

impl DdgStats {
    /// Computes statistics for `ddg`.
    #[must_use]
    pub fn of(ddg: &Ddg) -> Self {
        let loads = ddg.count_kind(OpKind::Load);
        let stores = ddg.count_kind(OpKind::Store);
        let unit_stride_ops = ddg.ops().iter().filter(|o| o.stride() == Some(1)).count();
        DdgStats {
            ops: ddg.num_nodes(),
            edges: ddg.num_edges(),
            memory_ops: loads + stores,
            loads,
            stores,
            fpu_ops: ddg.count_class(ResourceClass::Fpu),
            unpipelined_ops: ddg.count_kind(OpKind::FDiv) + ddg.count_kind(OpKind::FSqrt),
            carried_edges: ddg.edges().iter().filter(|e| e.is_loop_carried()).count(),
            recurrence_ops: ddg.recurrence_nodes().len(),
            unit_stride_ops,
        }
    }

    /// Fraction of memory operations that are unit stride, or `None` if
    /// the loop has no memory operations.
    #[must_use]
    pub fn unit_stride_fraction(&self) -> Option<f64> {
        (self.memory_ops > 0).then(|| self.unit_stride_ops as f64 / self.memory_ops as f64)
    }

    /// Fraction of operations on a recurrence circuit.
    #[must_use]
    pub fn recurrence_fraction(&self) -> f64 {
        self.recurrence_ops as f64 / self.ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;

    #[test]
    fn stats_count_correctly() {
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let y = b.load(2);
        let m = b.op(OpKind::FMul);
        let d = b.op(OpKind::FDiv);
        let s = b.store(1);
        b.flow(x, m);
        b.flow(y, m);
        b.flow(m, d);
        b.flow(d, s);
        b.carried_flow(d, d, 1);
        let g = b.build().unwrap();
        let st = DdgStats::of(&g);
        assert_eq!(st.ops, 5);
        assert_eq!(st.memory_ops, 3);
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 1);
        assert_eq!(st.fpu_ops, 2);
        assert_eq!(st.unpipelined_ops, 1);
        assert_eq!(st.carried_edges, 1);
        assert_eq!(st.recurrence_ops, 1);
        assert_eq!(st.unit_stride_ops, 2);
        assert_eq!(st.unit_stride_fraction(), Some(2.0 / 3.0));
        assert!((st.recurrence_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_memory_ops_gives_none() {
        let mut b = DdgBuilder::new();
        b.op(OpKind::FAdd);
        let g = b.build().unwrap();
        assert_eq!(DdgStats::of(&g).unit_stride_fraction(), None);
    }
}
