//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge references a node index outside the graph.
    NodeOutOfRange {
        /// The offending node index.
        index: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// A flow (register) edge starts at an operation that produces no
    /// value (e.g. a store).
    FlowFromValueless {
        /// Index of the offending source node.
        src: usize,
    },
    /// The distance-0 subgraph contains a cycle, so no execution order
    /// exists within one iteration.
    ZeroDistanceCycle {
        /// A node on the offending cycle.
        witness: usize,
    },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { index, len } => {
                write!(f, "edge references node {index} but graph has {len} nodes")
            }
            GraphError::FlowFromValueless { src } => {
                write!(
                    f,
                    "flow edge leaves node {src} which produces no register value"
                )
            }
            GraphError::ZeroDistanceCycle { witness } => {
                write!(f, "distance-0 dependence cycle through node {witness}")
            }
            GraphError::Empty => write!(f, "dependence graph has no nodes"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            GraphError::NodeOutOfRange { index: 7, len: 3 }.to_string(),
            GraphError::FlowFromValueless { src: 2 }.to_string(),
            GraphError::ZeroDistanceCycle { witness: 0 }.to_string(),
            GraphError::Empty.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}
