//! Executable operation semantics.
//!
//! The analytic pipeline never runs a loop; the simulator crate
//! (`widening-sim`) does, and it needs a concrete meaning for every
//! [`OpKind`]. The functions here define that meaning **once** so the
//! scalar reference interpreter and the wide-datapath simulator are
//! bitwise comparable: both fold a node's register operands in original
//! in-edge order through [`eval_op`], and both draw loop live-in values
//! and operand-less sources from [`source_value`].
//!
//! Two choices keep differential comparison exact and robust:
//!
//! * every result passes through [`squash`], which bounds magnitudes so
//!   multiplicative recurrences cannot overflow to infinity over long
//!   trips (IEEE arithmetic stays fully deterministic, so equal inputs
//!   give bitwise-equal outputs on both interpreters);
//! * divides guard near-zero denominators with a fixed fallback instead
//!   of producing infinities.

use crate::op::OpKind;

/// Magnitude bound applied by [`squash`].
const SQUASH_BOUND: f64 = 1.0e6;

/// Denominator guard threshold for [`OpKind::FDiv`].
const DIV_GUARD: f64 = 1.0e-6;

/// Bounds `x` to `(-1e6, 1e6)` deterministically; non-finite inputs
/// collapse to `1.0`. Applied to every operation result.
#[must_use]
#[inline]
pub fn squash(x: f64) -> f64 {
    // In-range values (the overwhelmingly common case) are their own
    // remainder bit for bit, so the `fmod` call is skipped. `-0.0`
    // takes the fast path too, matching `fmod(-0.0, b) == -0.0`.
    if x > -SQUASH_BOUND && x < SQUASH_BOUND {
        x
    } else if x.is_finite() {
        x % SQUASH_BOUND
    } else {
        1.0
    }
}

/// A deterministic pseudo-random source value for `(node, iteration)`:
/// used for loop live-ins (`iteration < 0`) and for value-producing
/// operations with no register operands. Values are small dyadic
/// rationals, exactly representable in an `f64`.
#[must_use]
#[inline]
pub fn source_value(node: u32, iteration: i64) -> f64 {
    let mut h = (u64::from(node) << 32) ^ (iteration as u64) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h % 4096) as f64 - 2048.0) / 64.0
}

/// The initial content of the memory cell a load of `node` reads at
/// `iteration` (loads and stores use disjoint regions; see the simulator
/// crate for the layout).
#[must_use]
#[inline]
pub fn initial_memory_value(node: u32, iteration: i64) -> f64 {
    source_value(node ^ 0x4D45_4D00, iteration)
}

/// Applies the semantic function of `kind` to register operands
/// `inputs`, folded in operand order. `node` and `iteration` identify
/// the executing instance, for operand-less sources.
///
/// * `FAdd`, `FCopy` and memory kinds fold with `+` (a load's operand
///   sum is added to the loaded cell by the caller; a store's folded
///   value is what it writes);
/// * `FSub` computes `inputs[0] - inputs[1] - …`;
/// * `FMul` folds with `*`;
/// * `FDiv` computes `inputs[0] / (inputs[1] * …)`, guarding near-zero
///   denominators;
/// * `FSqrt` computes `sqrt(|inputs[0] + …|)`.
///
/// With no operands the value is [`source_value`]. Every result is
/// [`squash`]ed.
#[must_use]
#[inline]
pub fn eval_op(kind: OpKind, inputs: &[f64], node: u32, iteration: i64) -> f64 {
    if inputs.is_empty() {
        return squash(source_value(node, iteration));
    }
    let sum = || inputs.iter().copied().fold(0.0_f64, |a, b| a + b);
    let value = match kind {
        OpKind::FAdd | OpKind::FCopy | OpKind::Load | OpKind::Store => sum(),
        OpKind::FSub => inputs[1..].iter().copied().fold(inputs[0], |a, b| a - b),
        OpKind::FMul => inputs.iter().copied().fold(1.0_f64, |a, b| a * b),
        OpKind::FDiv => {
            let denom = inputs[1..].iter().copied().fold(1.0_f64, |a, b| a * b);
            let denom = if denom.abs() < DIV_GUARD { 1.0 } else { denom };
            inputs[0] / denom
        }
        OpKind::FSqrt => sum().abs().sqrt(),
    };
    squash(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squash_bounds_and_handles_non_finite() {
        assert_eq!(squash(3.5), 3.5);
        assert!(squash(1.0e9).abs() < SQUASH_BOUND);
        assert_eq!(squash(f64::INFINITY), 1.0);
        assert_eq!(squash(f64::NAN), 1.0);
    }

    #[test]
    fn source_values_are_deterministic_and_bounded() {
        for node in [0u32, 7, 1000] {
            for i in [-3i64, 0, 1, 999] {
                let a = source_value(node, i);
                assert_eq!(a.to_bits(), source_value(node, i).to_bits());
                assert!(a.abs() <= 32.0);
            }
        }
        assert_ne!(
            source_value(1, 5).to_bits(),
            source_value(2, 5).to_bits(),
            "different nodes should draw different streams"
        );
    }

    #[test]
    fn eval_follows_kind_semantics() {
        let node = 3;
        assert_eq!(eval_op(OpKind::FAdd, &[1.0, 2.0, 3.0], node, 0), 6.0);
        assert_eq!(eval_op(OpKind::FSub, &[10.0, 3.0, 2.0], node, 0), 5.0);
        assert_eq!(eval_op(OpKind::FMul, &[2.0, 3.0, 4.0], node, 0), 24.0);
        assert_eq!(eval_op(OpKind::FDiv, &[10.0, 4.0], node, 0), 2.5);
        assert_eq!(eval_op(OpKind::FSqrt, &[9.0], node, 0), 3.0);
        assert_eq!(eval_op(OpKind::FCopy, &[7.0], node, 0), 7.0);
        assert_eq!(eval_op(OpKind::Store, &[1.0, 2.0], node, 0), 3.0);
    }

    #[test]
    fn divide_guards_near_zero_denominators() {
        let v = eval_op(OpKind::FDiv, &[5.0, 0.0], 0, 0);
        assert_eq!(v, 5.0);
        assert!(eval_op(OpKind::FDiv, &[5.0, 1.0e-9], 0, 0).is_finite());
    }

    #[test]
    fn empty_inputs_use_the_source_stream() {
        let v = eval_op(OpKind::FAdd, &[], 4, 17);
        assert_eq!(v.to_bits(), squash(source_value(4, 17)).to_bits());
    }
}
