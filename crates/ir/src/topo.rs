//! Topological ordering of the distance-0 subgraph (Kahn's algorithm).

use crate::ddg::{Ddg, NodeId};

/// Returns a topological order of the distance-0 subgraph of `ddg`, or
/// `None` if that subgraph has a cycle.
///
/// Loop-carried edges (distance ≥ 1) are ignored: they order operations
/// across iterations, not within one.
#[must_use]
pub fn topological_order(ddg: &Ddg) -> Option<Vec<NodeId>> {
    let n = ddg.num_nodes();
    let mut indeg = vec![0usize; n];
    for e in ddg.edges() {
        if e.distance == 0 {
            indeg[e.dst.index()] += 1;
        }
    }
    // Deterministic: process ready nodes in ascending id order via a
    // sorted frontier (binary heap of Reverse ids).
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = indeg
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i as u32))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        let v = NodeId(v);
        order.push(v);
        for e in ddg.out_edges(v) {
            if e.distance == 0 {
                let d = &mut indeg[e.dst.index()];
                *d -= 1;
                if *d == 0 {
                    ready.push(std::cmp::Reverse(e.dst.0));
                }
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Returns a node on a distance-0 cycle, if one exists.
///
/// Used by graph validation to produce a witness for
/// [`crate::GraphError::ZeroDistanceCycle`].
#[must_use]
pub fn zero_distance_cycle_witness(ddg: &Ddg) -> Option<NodeId> {
    let n = ddg.num_nodes();
    let mut indeg = vec![0usize; n];
    for e in ddg.edges() {
        if e.distance == 0 {
            indeg[e.dst.index()] += 1;
        }
    }
    let mut ready: Vec<u32> = indeg
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i as u32)
        .collect();
    let mut removed = 0usize;
    while let Some(v) = ready.pop() {
        removed += 1;
        for e in ddg.out_edges(NodeId(v)) {
            if e.distance == 0 {
                let d = &mut indeg[e.dst.index()];
                *d -= 1;
                if *d == 0 {
                    ready.push(e.dst.0);
                }
            }
        }
    }
    if removed == n {
        None
    } else {
        indeg.iter().position(|&d| d > 0).map(|i| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn respects_zero_distance_edges() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        let s = b.op(OpKind::FSub);
        b.flow(m, s);
        b.flow(a, m);
        let g = b.build().unwrap();
        let order = topological_order(&g).unwrap();
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(a) < pos(m));
        assert!(pos(m) < pos(s));
    }

    #[test]
    fn ignores_loop_carried_edges() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        b.flow(a, m);
        b.carried_flow(m, a, 1); // would be a cycle at distance 0
        let g = b.build().unwrap();
        assert!(topological_order(&g).is_some());
    }

    #[test]
    fn deterministic_and_ascending_for_independent_nodes() {
        let mut b = DdgBuilder::new();
        for _ in 0..5 {
            b.op(OpKind::FAdd);
        }
        let g = b.build().unwrap();
        let order = topological_order(&g).unwrap();
        assert_eq!(order, (0..5).map(NodeId).collect::<Vec<_>>());
    }
}
