//! Strongly connected components (iterative Tarjan).

use crate::ddg::{Ddg, NodeId};

/// Result of an SCC computation over a [`Ddg`], considering edges of all
/// iteration distances.
///
/// Components are emitted in *reverse topological order* of the
/// condensation (Tarjan's natural output order); [`NodeId`]s inside each
/// component are sorted ascending for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StronglyConnectedComponents {
    components: Vec<Vec<NodeId>>,
    component_of: Vec<u32>,
}

impl StronglyConnectedComponents {
    /// Computes the SCCs of `ddg`.
    #[must_use]
    pub fn compute(ddg: &Ddg) -> Self {
        Tarjan::run(ddg)
    }

    /// The components, each a sorted list of node ids.
    #[must_use]
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// Consumes `self` and returns the component list.
    #[must_use]
    pub fn into_components(self) -> Vec<Vec<NodeId>> {
        self.components
    }

    /// Index (into [`Self::components`]) of the component containing `v`.
    #[must_use]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.component_of[v.index()] as usize
    }

    /// Whether `v` lies on any dependence circuit: its component has more
    /// than one node, or it has a self-edge.
    #[must_use]
    pub fn on_circuit(&self, ddg: &Ddg, v: NodeId) -> bool {
        self.components[self.component_of(v)].len() > 1 || ddg.out_edges(v).any(|e| e.dst == v)
    }
}

/// Iterative Tarjan implementation (explicit stack so deep graphs from
/// high widening degrees cannot overflow the call stack).
struct Tarjan<'g> {
    ddg: &'g Ddg,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    next_index: u32,
    components: Vec<Vec<NodeId>>,
    component_of: Vec<u32>,
}

const UNVISITED: u32 = u32::MAX;

impl<'g> Tarjan<'g> {
    fn run(ddg: &'g Ddg) -> StronglyConnectedComponents {
        let n = ddg.num_nodes();
        let mut t = Tarjan {
            ddg,
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
            component_of: vec![0; n],
        };
        for v in 0..n as u32 {
            if t.index[v as usize] == UNVISITED {
                t.visit(v);
            }
        }
        for c in &mut t.components {
            c.sort_unstable();
        }
        StronglyConnectedComponents {
            components: t.components,
            component_of: t.component_of,
        }
    }

    fn visit(&mut self, root: u32) {
        // Work-list frame: (node, iterator position over its out-edges).
        let mut frames: Vec<(u32, usize)> = vec![(root, 0)];
        self.begin(root);
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let succ = self.ddg.out_edges(NodeId(v)).nth(*ei).map(|e| e.dst.0);
            match succ {
                Some(w) => {
                    *ei += 1;
                    if self.index[w as usize] == UNVISITED {
                        self.begin(w);
                        frames.push((w, 0));
                    } else if self.on_stack[w as usize] {
                        self.lowlink[v as usize] =
                            self.lowlink[v as usize].min(self.index[w as usize]);
                    }
                }
                None => {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        self.lowlink[parent as usize] =
                            self.lowlink[parent as usize].min(self.lowlink[v as usize]);
                    }
                    if self.lowlink[v as usize] == self.index[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = self.stack.pop().expect("scc stack underflow");
                            self.on_stack[w as usize] = false;
                            self.component_of[w as usize] = self.components.len() as u32;
                            comp.push(NodeId(w));
                            if w == v {
                                break;
                            }
                        }
                        self.components.push(comp);
                    }
                }
            }
        }
    }

    fn begin(&mut self, v: u32) {
        self.index[v as usize] = self.next_index;
        self.lowlink[v as usize] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v as usize] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::DdgBuilder;
    use crate::op::OpKind;

    #[test]
    fn dag_gives_singletons() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        let s = b.op(OpKind::FSub);
        b.flow(a, m);
        b.flow(m, s);
        let g = b.build().unwrap();
        let sccs = StronglyConnectedComponents::compute(&g);
        assert_eq!(sccs.components().len(), 3);
        assert!(sccs.components().iter().all(|c| c.len() == 1));
        for v in g.node_ids() {
            assert!(!sccs.on_circuit(&g, v));
        }
    }

    #[test]
    fn two_node_recurrence_is_one_component() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        let m = b.op(OpKind::FMul);
        let ld = b.load(1);
        b.flow(a, m);
        b.carried_flow(m, a, 1);
        b.flow(ld, a);
        let g = b.build().unwrap();
        let sccs = StronglyConnectedComponents::compute(&g);
        let big: Vec<_> = sccs.components().iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].as_slice(), &[NodeId(0), NodeId(1)]);
        assert!(sccs.on_circuit(&g, NodeId(0)));
        assert!(!sccs.on_circuit(&g, NodeId(2)));
        assert_eq!(sccs.component_of(NodeId(0)), sccs.component_of(NodeId(1)));
        assert_ne!(sccs.component_of(NodeId(0)), sccs.component_of(NodeId(2)));
    }

    #[test]
    fn self_loop_is_on_circuit_but_singleton() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        b.carried_flow(a, a, 1);
        let g = b.build().unwrap();
        let sccs = StronglyConnectedComponents::compute(&g);
        assert_eq!(sccs.components().len(), 1);
        assert!(sccs.on_circuit(&g, NodeId(0)));
    }

    #[test]
    fn components_cover_all_nodes_exactly_once() {
        // Two interlocked recurrences plus a tail.
        let mut b = DdgBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.op(OpKind::FAdd)).collect();
        b.flow(n[0], n[1]);
        b.carried_flow(n[1], n[0], 1);
        b.flow(n[1], n[2]);
        b.flow(n[2], n[3]);
        b.carried_flow(n[3], n[2], 2);
        b.flow(n[3], n[4]);
        b.flow(n[4], n[5]);
        let g = b.build().unwrap();
        let sccs = StronglyConnectedComponents::compute(&g);
        let mut seen: Vec<NodeId> = sccs.components().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, g.node_ids().collect::<Vec<_>>());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 60k-node chain with a back edge — would overflow a recursive
        // Tarjan on small stacks.
        let mut b = DdgBuilder::new();
        let first = b.op(OpKind::FAdd);
        let mut prev = first;
        for _ in 0..60_000 {
            let v = b.op(OpKind::FAdd);
            b.flow(prev, v);
            prev = v;
        }
        b.carried_flow(prev, first, 1);
        let g = b.build().unwrap();
        let sccs = StronglyConnectedComponents::compute(&g);
        assert_eq!(sccs.components().len(), 1);
        assert_eq!(sccs.components()[0].len(), 60_001);
    }
}
