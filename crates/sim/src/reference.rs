//! The scalar reference interpreter: executes the **original**,
//! un-widened loop body one iteration at a time, in dependence order,
//! with no registers, schedule or spills involved. Its final memory and
//! per-node value checksums are the ground truth the wide simulator is
//! differentially checked against.

use widening_ir::{semantics, Ddg, NodeId, OpKind};
use widening_lower::Memory;

pub use widening_lower::checksum_step;

/// Ground truth for one `(loop, trip count)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceRun {
    /// Final memory (store regions hold one value per iteration).
    pub memory: Memory,
    /// Per original node: XOR-accumulated [`checksum_step`] over all
    /// executed iterations (zero for nodes producing no value).
    pub checksums: Vec<u64>,
}

/// Executes `trip` iterations of `ddg` sequentially.
///
/// Operand folding is defined once for both interpreters: a node's
/// register inputs are its flow in-edges in edge order; an input from
/// iteration `i − d < 0` is the live-in
/// [`semantics::source_value`]`(src, i − d)`.
#[must_use]
pub fn run_reference(ddg: &Ddg, trip: u64) -> ReferenceRun {
    let mut memory = Memory::for_loop(ddg, trip);
    let n = ddg.num_nodes();
    let mut checksums = vec![0u64; n];

    // Ring-buffered value history deep enough for the largest carried
    // distance.
    let depth = ddg.edges().iter().map(|e| e.distance).max().unwrap_or(0) as usize + 1;
    let mut history = vec![vec![0.0f64; depth]; n];

    let order = ddg.zero_distance_topological_order();
    let mut inputs: Vec<f64> = Vec::new();
    for i in 0..trip {
        for &v in &order {
            let op = ddg.op(v);
            inputs.clear();
            for e in ddg.in_edges(v) {
                if !e.kind.is_flow() {
                    continue;
                }
                let past = i as i64 - i64::from(e.distance);
                inputs.push(if past < 0 {
                    semantics::source_value(e.src.0, past)
                } else {
                    history[e.src.index()][(past as u64 % depth as u64) as usize]
                });
            }
            let value = match op.kind() {
                OpKind::Load => {
                    let cell = memory.read(v, i);
                    semantics::squash(cell + inputs.iter().sum::<f64>())
                }
                OpKind::Store => {
                    let value = semantics::eval_op(OpKind::Store, &inputs, v.0, i as i64);
                    memory.write(v, i, value);
                    value
                }
                kind => semantics::eval_op(kind, &inputs, v.0, i as i64),
            };
            history[v.index()][(i % depth as u64) as usize] = value;
            checksums[v.index()] ^= checksum_step(i, value);
        }
    }
    ReferenceRun { memory, checksums }
}

/// The value a producer "defined" before the loop began (iteration
/// `< 0`), shared by both interpreters for loop live-ins.
#[must_use]
pub fn live_in(src: NodeId, iteration: i64) -> f64 {
    debug_assert!(iteration < 0);
    semantics::source_value(src.0, iteration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::DdgBuilder;

    /// y[i] = x[i] * x[i] + acc, acc carried at distance 1.
    fn reduction() -> Ddg {
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let m = b.op(OpKind::FMul);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1);
        b.flow(x, m);
        b.flow(x, m);
        b.flow(m, a);
        b.carried_flow(a, a, 1);
        b.flow(a, s);
        b.build().unwrap()
    }

    #[test]
    fn reference_is_deterministic() {
        let g = reduction();
        let a = run_reference(&g, 17);
        let b = run_reference(&g, 17);
        assert_eq!(a, b);
    }

    #[test]
    fn store_region_matches_hand_execution() {
        let g = reduction();
        let r = run_reference(&g, 3);
        let x = |i: u64| semantics::initial_memory_value(0, i as i64);
        // acc(-1) is the live-in source value.
        let mut acc = semantics::source_value(2, -1);
        for i in 0..3u64 {
            let m = semantics::squash(x(i) * x(i));
            acc = semantics::squash(m + acc);
            assert_eq!(
                r.memory.read(NodeId(3), i).to_bits(),
                acc.to_bits(),
                "iteration {i}"
            );
        }
    }

    #[test]
    fn checksums_flag_any_perturbation() {
        let g = reduction();
        let a = run_reference(&g, 9);
        let b = run_reference(&g, 10);
        // One extra iteration must change every live checksum.
        assert_ne!(a.checksums[2], b.checksums[2]);
    }
}
