//! Simulation outcomes: dynamic statistics, hard execution errors and
//! differential divergences.

use std::error::Error;
use std::fmt;

use widening_ir::NodeId;
use widening_pipeline::PipelineError;

pub use widening_lower::SimStats;

/// A hard error while executing the schedule: the machine state the
/// schedule + allocation promised was violated. Each variant points at
/// the first offending access.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A consumer read a register whose current content is not the
    /// instance the location table says should be live — a register
    /// allocation (lifetime overlap) bug.
    RegisterClobbered {
        /// The reading node (final-graph id).
        reader: NodeId,
        /// Kernel iteration of the read.
        block: u64,
        /// Register that was read.
        register: u32,
        /// The producing node whose instance was expected.
        expected: NodeId,
        /// The expected instance's kernel iteration.
        expected_block: u64,
    },
    /// A consumer issued before its operand's writeback completed — a
    /// dependence/latency bug in the schedule.
    ReadBeforeReady {
        /// The reading node (final-graph id).
        reader: NodeId,
        /// Kernel iteration of the read.
        block: u64,
        /// Cycle of the read.
        cycle: u64,
        /// Cycle the operand becomes available.
        ready_at: u64,
    },
    /// A spill reload found no value in its slot — a spill distance bug.
    SpillSlotEmpty {
        /// The reload node.
        reload: NodeId,
        /// Kernel iteration of the reload.
        block: u64,
    },
    /// A differential run found the lowered-bytecode backend disagreeing
    /// with the interpreter — a lowering bug, never a schedule bug (the
    /// interpreter is the oracle).
    BackendDivergence {
        /// The first difference found: stats, a checksum or a memory
        /// cell.
        detail: String,
    },
    /// The simulator's own bookkeeping failed; always a bug in the
    /// simulator, never in the schedule under test.
    Internal(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegisterClobbered {
                reader,
                block,
                register,
                expected,
                expected_block,
            } => {
                write!(
                    f,
                    "register r{register} clobbered: {reader} (iteration {block}) expected \
                     {expected} of iteration {expected_block}"
                )
            }
            SimError::ReadBeforeReady {
                reader,
                block,
                cycle,
                ready_at,
            } => write!(
                f,
                "{reader} (iteration {block}) read at cycle {cycle} before writeback at \
                 {ready_at}"
            ),
            SimError::SpillSlotEmpty { reload, block } => {
                write!(
                    f,
                    "spill reload {reload} found no value at iteration {block}"
                )
            }
            SimError::BackendDivergence { detail } => {
                write!(f, "lowered backend diverged from the interpreter: {detail}")
            }
            SimError::Internal(what) => write!(f, "simulator invariant violated: {what}"),
        }
    }
}

impl Error for SimError {}

/// A difference between the wide execution and the scalar reference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Divergence {
    /// A store wrote a different value than the reference for some
    /// iteration.
    StoreCell {
        /// The original store node.
        node: NodeId,
        /// The diverging iteration.
        iteration: u64,
        /// Reference value.
        expected: f64,
        /// Simulated value.
        got: f64,
    },
    /// A value-producing operation's whole-trip checksum differs —
    /// catches divergences that never reach memory (e.g. dead
    /// recurrences).
    Checksum {
        /// The original node whose value stream diverged.
        node: NodeId,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::StoreCell {
                node,
                iteration,
                expected,
                got,
            } => write!(
                f,
                "store {node} iteration {iteration}: reference {expected}, simulated {got}"
            ),
            Divergence::Checksum { node } => {
                write!(f, "value stream of {node} diverged from the reference")
            }
        }
    }
}

/// The full outcome of simulating and differentially validating one
/// loop on one configuration.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Dynamic execution counters.
    pub stats: SimStats,
    /// Differences against the scalar reference (empty = validated).
    pub divergences: Vec<Divergence>,
    /// Initiation interval of the simulated schedule.
    pub ii: u32,
    /// Spill operations in the simulated code.
    pub spill_ops: u32,
}

impl SimReport {
    /// Whether the wide execution matched the scalar reference exactly.
    #[must_use]
    pub fn is_validated(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Why a loop could not be simulated (scheduling failed) or failed
/// during execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimFailure {
    /// The staged compilation pipeline failed; nothing to simulate.
    Pipeline(PipelineError),
    /// The machine state diverged from what the schedule promised.
    Execution(SimError),
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFailure::Pipeline(e) => write!(f, "pipeline failed: {e}"),
            SimFailure::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl Error for SimFailure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimFailure::Pipeline(e) => Some(e),
            SimFailure::Execution(e) => Some(e),
        }
    }
}

impl From<PipelineError> for SimFailure {
    fn from(e: PipelineError) -> Self {
        SimFailure::Pipeline(e)
    }
}

impl From<SimError> for SimFailure {
    fn from(e: SimError) -> Self {
        SimFailure::Execution(e)
    }
}
