//! **widening-sim** — a cycle-accurate wide-datapath simulator with
//! differential validation, for the *Widening Resources* (MICRO 1998)
//! reproduction.
//!
//! Every number the analytic pipeline produces is of the form
//! `II · ⌈trip/Y⌉ · weight`: no schedule is ever executed, so the
//! widening transform, the HRMS schedule, the register allocation and
//! the spill code are only checked *structurally*. This crate actually
//! runs them:
//!
//! * [`reference::run_reference`] executes the original scalar loop
//!   sequentially over concrete [`Memory`] — the ground truth;
//! * [`machine::WideMachine`] executes the verified wide schedule
//!   cycle-accurately — prologue, kernel, epilogue, a real wide register
//!   file laid out by the allocator's location table, and spill slots —
//!   flagging register clobbers and premature reads as hard errors;
//! * [`widening_lower::WideProgram`] (selected via
//!   [`Backend::Lowered`]) executes the same compiled loop as flat
//!   bytecode with pre-resolved register and slot indices — no per-cycle
//!   decoding — and must match the interpreter **bitwise**;
//! * [`simulate_loop`] runs the whole widen → schedule → allocate →
//!   spill → simulate pipeline for one loop on a chosen [`Backend`] and
//!   compares final memory and per-operation value checksums bitwise
//!   ([`SimReport`]). [`Backend::Differential`] additionally runs *both*
//!   execution backends and fails with [`SimError::BackendDivergence`]
//!   on any bitwise difference between them.
//!
//! Because both interpreters share one executable semantics
//! ([`widening_ir::semantics`]) and fold operands in the same order,
//! a correct pipeline matches the reference **bitwise**; any packing,
//! lane-routing, dependence-distance, allocation or spill bug shows up
//! as a [`Divergence`] or a [`SimError`].
//!
//! The simulator also reports *dynamic* cycles, quantifying the
//! fill/drain transient that the paper's steady-state accounting
//! `II · ⌈trip/Y⌉` amortises away (see the `transients` experiment in
//! the core crate).
//!
//! # Example
//!
//! ```
//! use widening_machine::{Configuration, CycleModel};
//! use widening_sim::{simulate_loop, Backend};
//! use widening_workload::kernels;
//!
//! let cfg: Configuration = "2w2(64:1)".parse()?;
//! let report = simulate_loop(
//!     &kernels::daxpy(),
//!     &cfg,
//!     CycleModel::Cycles4,
//!     &Default::default(),
//!     Backend::Differential,
//! )?;
//! assert!(report.is_validated());
//! // Dynamic cycles = steady state + fill/drain transient.
//! assert_eq!(
//!     report.stats.cycles as i64,
//!     report.stats.steady_state_cycles as i64 + report.stats.transient_cycles()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod machine;
pub mod reference;
mod report;

pub use backend::Backend;
pub use machine::{WideMachine, WideRun};
pub use reference::{run_reference, ReferenceRun};
pub use report::{Divergence, SimError, SimFailure, SimReport, SimStats};
pub use widening_lower::{checksum_step, Memory};

use widening_ir::{Ddg, Loop, NodeId, OpKind};
use widening_lower::WideProgram;
use widening_machine::{Configuration, CycleModel};
use widening_pipeline::{compile_ddg, CompileOptions, PointSpec};
use widening_regalloc::PressureResult;
use widening_transform::WideningOutcome;

/// Cap on reported per-cell divergences (checksums still cover every
/// node).
const MAX_REPORTED_CELLS: usize = 8;

/// Runs the full staged pipeline — widen, schedule with registers
/// (via [`widening_pipeline::compile_ddg`]), simulate, differentially
/// validate — for `trip` iterations of `ddg` on `cfg`.
///
/// # Errors
///
/// * [`SimFailure::Pipeline`] if the compilation pipeline fails (e.g.
///   the paper's unresolvable-pressure cases);
/// * [`SimFailure::Execution`] if the wide machine hits a hard state
///   violation (register clobber, premature read, empty spill slot).
pub fn simulate_ddg(
    ddg: &Ddg,
    trip: u64,
    cfg: &Configuration,
    model: CycleModel,
    opts: &CompileOptions,
    backend: Backend,
) -> Result<SimReport, SimFailure> {
    let compiled = compile_ddg(ddg, &PointSpec::scheduled(cfg, model, *opts))?;
    let stage = compiled
        .scheduled()
        .expect("finite register file implies a schedule stage");
    simulate_scheduled(ddg, compiled.wide(), &stage.result, model, trip, backend)
}

/// [`simulate_ddg`] for a named [`Loop`], using its own trip count.
///
/// # Errors
///
/// See [`simulate_ddg`].
pub fn simulate_loop(
    l: &Loop,
    cfg: &Configuration,
    model: CycleModel,
    opts: &CompileOptions,
    backend: Backend,
) -> Result<SimReport, SimFailure> {
    simulate_ddg(l.ddg(), l.trip_count(), cfg, model, opts, backend)
}

/// Simulates an already-scheduled loop on `backend` and validates it
/// against the scalar reference. Use this form to simulate one schedule
/// at many trip counts without re-scheduling; backends needing lowered
/// bytecode lower it on the spot (see [`simulate_with_program`] to reuse
/// a memoized [`WideProgram`] instead).
///
/// # Errors
///
/// See [`simulate_ddg`].
pub fn simulate_scheduled(
    original: &Ddg,
    outcome: &WideningOutcome,
    result: &PressureResult,
    model: CycleModel,
    trip: u64,
    backend: Backend,
) -> Result<SimReport, SimFailure> {
    let program = backend
        .uses_lowered()
        .then(|| widening_lower::lower(original, outcome, result));
    execute(
        original,
        outcome,
        result,
        model,
        trip,
        backend,
        program.as_ref(),
    )
}

/// [`simulate_scheduled`] with the lowered bytecode supplied by the
/// caller (typically decoded from the pipeline's memoized `lower`
/// stage), so [`Backend::Lowered`] and [`Backend::Differential`] runs
/// never re-lower. `program` must be the lowering of exactly this
/// `(outcome, result)` pair; [`Backend::Interpret`] ignores it.
///
/// # Errors
///
/// See [`simulate_ddg`].
pub fn simulate_with_program(
    original: &Ddg,
    outcome: &WideningOutcome,
    result: &PressureResult,
    model: CycleModel,
    trip: u64,
    backend: Backend,
    program: &WideProgram,
) -> Result<SimReport, SimFailure> {
    execute(
        original,
        outcome,
        result,
        model,
        trip,
        backend,
        Some(program),
    )
}

/// Runs the selected backend(s) and differentially validates against
/// the scalar reference.
fn execute(
    original: &Ddg,
    outcome: &WideningOutcome,
    result: &PressureResult,
    model: CycleModel,
    trip: u64,
    backend: Backend,
    program: Option<&WideProgram>,
) -> Result<SimReport, SimFailure> {
    let program =
        |what: &str| program.unwrap_or_else(|| panic!("backend {what} requires a lowered program"));
    let wide = match backend {
        Backend::Interpret => WideMachine::new(original, outcome, result, model, trip).run()?,
        Backend::Lowered => program("lowered").exec(trip),
        Backend::Differential => {
            let interp = WideMachine::new(original, outcome, result, model, trip).run()?;
            let lowered = program("differential").exec(trip);
            if let Some(detail) = backend_divergence(&interp, &lowered) {
                return Err(SimError::BackendDivergence { detail }.into());
            }
            interp
        }
    };
    let reference = reference::run_reference(original, trip);
    let divergences = compare(original, &reference, &wide);
    Ok(SimReport {
        stats: wide.stats,
        divergences,
        ii: result.schedule.ii(),
        spill_ops: result.spill_stores + result.spill_loads,
    })
}

/// Describes the first bitwise difference between the two backends'
/// runs, or `None` when they agree everywhere.
fn backend_divergence(interp: &WideRun, lowered: &WideRun) -> Option<String> {
    if interp.stats != lowered.stats {
        return Some(format!(
            "stats differ: interpreter {:?}, lowered {:?}",
            interp.stats, lowered.stats
        ));
    }
    for (v, (a, b)) in interp.checksums.iter().zip(&lowered.checksums).enumerate() {
        if a != b {
            return Some(format!(
                "checksum of n{v} differs: interpreter {a:#018x}, lowered {b:#018x}"
            ));
        }
    }
    if interp.memory.cells().len() != lowered.memory.cells().len() {
        return Some("memory layouts differ".to_string());
    }
    for (i, (a, b)) in interp
        .memory
        .cells()
        .iter()
        .zip(lowered.memory.cells())
        .enumerate()
    {
        if a.to_bits() != b.to_bits() {
            return Some(format!(
                "memory cell {i} differs: interpreter {a}, lowered {b}"
            ));
        }
    }
    debug_assert!(interp.bitwise_eq(lowered));
    None
}

/// Bitwise comparison of the two executions: store regions cell by cell,
/// then whole-trip value checksums for every value-producing operation.
fn compare(original: &Ddg, reference: &ReferenceRun, wide: &WideRun) -> Vec<Divergence> {
    let mut out = Vec::new();
    let mut cells = 0usize;
    for v in original.node_ids() {
        if original.op(v).kind() != OpKind::Store {
            continue;
        }
        let want = reference.memory.region(v);
        let got = wide.memory.region(v);
        for (i, (w, g)) in want.iter().zip(got).enumerate() {
            if w.to_bits() != g.to_bits() && cells < MAX_REPORTED_CELLS {
                cells += 1;
                out.push(Divergence::StoreCell {
                    node: v,
                    iteration: i as u64,
                    expected: *w,
                    got: *g,
                });
            }
        }
    }
    for v in original.node_ids() {
        if reference.checksums[v.index()] != wide.checksums[v.index()] {
            out.push(Divergence::Checksum { node: v });
        }
    }
    out
}

/// Convenience for tests and experiments: the node ids of every store
/// in `ddg`, in id order.
#[must_use]
pub fn store_nodes(ddg: &Ddg) -> Vec<NodeId> {
    ddg.node_ids()
        .filter(|&v| ddg.op(v).kind() == OpKind::Store)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::DdgBuilder;
    use widening_workload::kernels;

    const M4: CycleModel = CycleModel::Cycles4;

    // Every test runs differentially: the interpreter is the oracle and
    // the lowered bytecode must match it bitwise, so the whole suite
    // doubles as lowering coverage.
    const BE: Backend = Backend::Differential;

    fn sim(l: &Loop, spec: &str) -> SimReport {
        let cfg: Configuration = spec.parse().unwrap();
        simulate_loop(l, &cfg, M4, &Default::default(), BE)
            .unwrap_or_else(|e| panic!("{} on {spec}: {e}", l.name()))
    }

    #[test]
    fn daxpy_validates_at_all_widths() {
        let daxpy = kernels::daxpy();
        for (spec, y) in [
            ("1w1(64:1)", 1),
            ("1w2(64:1)", 2),
            ("1w4(64:1)", 4),
            ("2w2(64:1)", 2),
        ] {
            let r = sim(&daxpy, spec);
            assert!(r.is_validated(), "{spec}: {:?}", r.divergences);
            assert_eq!(r.stats.blocks, daxpy.trip_count().div_ceil(y), "{spec}");
        }
    }

    #[test]
    fn every_kernel_validates_on_small_machines() {
        for kernel in kernels::all() {
            for spec in [
                "1w1(64:1)",
                "2w1(64:1)",
                "1w2(64:1)",
                "2w2(128:1)",
                "4w2(128:1)",
            ] {
                let cfg: Configuration = spec.parse().unwrap();
                let r = simulate_loop(&kernel, &cfg, M4, &Default::default(), BE)
                    .unwrap_or_else(|e| panic!("{} on {spec}: {e}", kernel.name()));
                assert!(
                    r.is_validated(),
                    "{} on {spec}: {:?}",
                    kernel.name(),
                    r.divergences
                );
            }
        }
    }

    #[test]
    fn dynamic_cycles_are_steady_state_plus_transient() {
        let fir = kernels::fir5();
        for spec in ["1w1(64:1)", "2w2(64:1)"] {
            let r = sim(&fir, spec);
            assert_eq!(
                r.stats.cycles as i64,
                r.stats.steady_state_cycles as i64 + r.stats.transient_cycles(),
                "{spec}"
            );
            // fir5 is deep enough that the transient is positive.
            assert!(r.stats.cycles >= r.stats.steady_state_cycles, "{spec}");
        }
    }

    #[test]
    fn short_trips_exercise_prologue_epilogue_only() {
        // Trip < stage count: the pipeline never reaches steady state.
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let m = b.op(OpKind::FMul);
        let s = b.store(1);
        b.flow(x, m);
        b.flow(m, s);
        let g = b.build().unwrap();
        let cfg: Configuration = "2w2(64:1)".parse().unwrap();
        for trip in 1..=9 {
            let r = simulate_ddg(&g, trip, &cfg, M4, &Default::default(), BE).unwrap();
            assert!(r.is_validated(), "trip {trip}: {:?}", r.divergences);
        }
    }

    #[test]
    fn masked_lanes_counted_for_ragged_trips() {
        let daxpy = kernels::daxpy();
        let cfg: Configuration = "1w4(64:1)".parse().unwrap();
        let r = simulate_ddg(daxpy.ddg(), 10, &cfg, M4, &Default::default(), BE).unwrap();
        assert!(r.is_validated(), "{:?}", r.divergences);
        assert_eq!(r.stats.blocks, 3);
        // 12 lanes in 3 blocks, 10 live iterations, 5 packed ops → 2·5
        // masked lanes.
        assert_eq!(r.stats.masked_lanes, 2 * 5);
    }

    #[test]
    fn spilled_loops_still_validate() {
        // A register-starved machine forces spill code; the simulation
        // must route values through the spill slots and still match.
        let fir = kernels::fir5();
        let cfg: Configuration = "4w1(32:1)".parse().unwrap();
        let r = simulate_loop(&fir, &cfg, M4, &Default::default(), BE).unwrap();
        assert!(r.is_validated(), "{:?}", r.divergences);
    }

    #[test]
    fn recurrences_validate_where_lanes_serialize() {
        let dot = kernels::dot_product();
        for spec in ["1w4(64:1)", "2w2(64:1)"] {
            let r = sim(&dot, spec);
            assert!(r.is_validated(), "{spec}: {:?}", r.divergences);
        }
    }

    #[test]
    fn lane_crossing_recurrence_uses_forwarding_and_validates() {
        // acc[i] = acc[i-5] + x[i] at width 4: distance 5 ≥ 4 packs the
        // add, but 5 mod 4 ≠ 0 means lane 0 of each block needs the
        // instance one block older than the widened edge records — the
        // one read the register file cannot serve.
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1);
        b.flow(x, a);
        b.carried_flow(a, a, 5);
        b.flow(a, s);
        let g = b.build().unwrap();
        let cfg: Configuration = "1w4(64:1)".parse().unwrap();
        let r = simulate_ddg(&g, 40, &cfg, M4, &Default::default(), BE).unwrap();
        assert!(r.is_validated(), "{:?}", r.divergences);
        assert!(
            r.stats.cross_block_reads > 0,
            "the d % Y ≠ 0 recurrence must exercise the forwarding path"
        );
    }

    #[test]
    fn store_nodes_helper_finds_stores() {
        let daxpy = kernels::daxpy();
        assert_eq!(store_nodes(daxpy.ddg()).len(), 1);
    }
}
