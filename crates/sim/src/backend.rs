//! Execution backend selection.
//!
//! The simulator has two ways to execute a compiled wide loop: the
//! cycle-accurate interpreting machine ([`crate::WideMachine`]) and the
//! lowered-bytecode backend ([`widening_lower::WideProgram`]). Both
//! produce the same [`widening_lower::WideRun`]; [`Backend::Differential`]
//! runs both and demands bitwise agreement, making the interpreter the
//! oracle for the lowering.

use std::fmt;
use std::str::FromStr;

/// Which engine executes the compiled wide loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The cycle-accurate interpreting simulator: walks the schedule,
    /// register file and spill slots structure by structure, flagging
    /// machine-state violations as hard errors.
    #[default]
    Interpret,
    /// The lowered-bytecode backend: executes a pre-resolved
    /// [`widening_lower::WideProgram`] with no per-cycle decoding.
    Lowered,
    /// Runs both backends and requires bitwise-identical results —
    /// every memory cell, checksum and dynamic counter.
    Differential,
}

impl Backend {
    /// All backends, in CLI declaration order.
    pub const ALL: [Backend; 3] = [Backend::Interpret, Backend::Lowered, Backend::Differential];

    /// Stable lowercase label, used in summary keys and `--exec`
    /// parsing.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Interpret => "interpret",
            Backend::Lowered => "lowered",
            Backend::Differential => "differential",
        }
    }

    /// Whether this backend executes the lowered bytecode (alone or as
    /// one half of a differential run).
    #[must_use]
    pub fn uses_lowered(self) -> bool {
        !matches!(self, Backend::Interpret)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backend::ALL
            .into_iter()
            .find(|b| b.label() == s)
            .ok_or_else(|| {
                format!("unknown backend {s:?} (expected interpret|lowered|differential)")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(b.label().parse::<Backend>().unwrap(), b);
        }
        assert!("native".parse::<Backend>().is_err());
    }
}
