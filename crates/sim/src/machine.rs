//! The cycle-accurate wide-datapath machine.
//!
//! [`WideMachine`] executes a verified modulo schedule of the *widened*
//! (and possibly spill-rewritten) loop over concrete state: a register
//! file of `64·Y`-bit wide registers laid out by the allocator's
//! location table, spill slots, and the shared [`Memory`]. Kernel
//! iteration `b` issues node `w` at absolute cycle `t(w) + II·b`, which
//! reproduces prologue, steady state and epilogue exactly.
//!
//! Execution is *register-accurate*: a consumer finds each operand by
//! looking up the register assigned to the producing instance
//! (`register_of(lifetime, block mod K)`) and checking that the register
//! still holds that instance and that its writeback has completed.
//! Violations surface as [`SimError::RegisterClobbered`] /
//! [`SimError::ReadBeforeReady`] — catching allocation and schedule bugs
//! directly — while wrong packing, lane routing or spill distances
//! produce wrong *values* and are caught by the differential comparison
//! against the scalar reference.
//!
//! One modelled forwarding path exists: a wide-to-wide dependence whose
//! original distance is not a multiple of `Y` needs, for its oldest
//! lanes, the producer instance one block older than the widened edge
//! records. The paper's dependence model only keeps the youngest ("binding")
//! instance's register alive, so the machine serves those lanes from a
//! bounded value-forwarding buffer and counts them
//! ([`SimStats::cross_block_reads`]) instead of failing — the register
//! file is still checked for every binding read.

use widening_ir::{semantics, Ddg, NodeId, OpKind};
use widening_lower::{checksum_step, Memory, SimStats};
use widening_machine::CycleModel;
use widening_regalloc::PressureResult;
use widening_transform::{NodeMapping, WideningOutcome};

use crate::report::SimError;

pub use widening_lower::WideRun;

/// What a final-graph node does when it issues.
#[derive(Debug, Clone)]
enum Role {
    /// An instance of original operation `original` — all `Y` lanes for
    /// a packed node (`lane: None`), one lane otherwise.
    Compute { original: NodeId, lane: Option<u32> },
    /// Writes `victim`'s register to this store's spill slot.
    SpillStore { victim: NodeId },
    /// Returns `victim`'s value from `distance` blocks ago out of
    /// `store`'s slot ring.
    SpillReload {
        victim: NodeId,
        store: NodeId,
        distance: u32,
    },
}

/// A wide register / forwarding entry: which instance it holds and when
/// the writeback lands.
#[derive(Debug, Clone)]
struct RegEntry {
    node: u32,
    block: u64,
    ready_at: u64,
    data: Vec<f64>,
}

/// Ring buffer of recent per-block values, for forwarding and spill
/// slots.
#[derive(Debug, Clone)]
struct Ring {
    entries: Vec<Option<(u64, Vec<f64>)>>,
}

impl Ring {
    fn new(depth: usize) -> Self {
        Ring {
            entries: vec![None; depth.max(1)],
        }
    }

    fn put(&mut self, block: u64, data: Vec<f64>) {
        let d = self.entries.len() as u64;
        self.entries[(block % d) as usize] = Some((block, data));
    }

    fn get(&self, block: u64) -> Option<&Vec<f64>> {
        let d = self.entries.len() as u64;
        match &self.entries[(block % d) as usize] {
            Some((b, data)) if *b == block => Some(data),
            _ => None,
        }
    }
}

/// Deferred state change: all reads of a cycle happen before any write
/// of the same cycle commits.
enum Commit {
    Reg {
        node: u32,
        block: u64,
        ready_at: u64,
        data: Vec<f64>,
    },
    Hist {
        node: u32,
        block: u64,
        data: Vec<f64>,
    },
    Mem {
        store: NodeId,
        iteration: u64,
        value: f64,
    },
    Slot {
        store: u32,
        block: u64,
        data: Vec<f64>,
    },
}

/// A configured wide-datapath simulation over one scheduled loop.
#[derive(Debug, Clone, Copy)]
pub struct WideMachine<'a> {
    original: &'a Ddg,
    outcome: &'a WideningOutcome,
    result: &'a PressureResult,
    model: CycleModel,
    trip: u64,
}

impl<'a> WideMachine<'a> {
    /// Prepares a simulation of `trip` original iterations.
    ///
    /// `outcome` must be the widening of `original` that `result` was
    /// scheduled from (`result.ddg` is `outcome.ddg()` plus any spill
    /// code).
    ///
    /// # Panics
    ///
    /// Panics if `trip` is zero or the inputs are structurally
    /// inconsistent in ways cheap to detect up front.
    #[must_use]
    pub fn new(
        original: &'a Ddg,
        outcome: &'a WideningOutcome,
        result: &'a PressureResult,
        model: CycleModel,
        trip: u64,
    ) -> Self {
        assert!(trip > 0, "trip count must be positive");
        assert!(
            result.ddg.num_nodes() >= outcome.ddg().num_nodes(),
            "result graph must extend the widened graph"
        );
        WideMachine {
            original,
            outcome,
            result,
            model,
            trip,
        }
    }

    /// Executes prologue → kernel → epilogue for the whole trip count.
    ///
    /// # Errors
    ///
    /// Returns the first machine-state violation encountered; see
    /// [`SimError`].
    pub fn run(&self) -> Result<WideRun, SimError> {
        let y = u64::from(self.outcome.width());
        let sched = &self.result.schedule;
        let alloc = &self.result.allocation;
        let ii = u64::from(sched.ii());
        let k = u64::from(alloc.kernel_unroll());
        let blocks = self.trip.div_ceil(y);
        let final_ddg = &self.result.ddg;
        let n = final_ddg.num_nodes();

        // Node roles: widened part from the origin table, spill part
        // from the spill records.
        let mut roles: Vec<Option<Role>> = self
            .outcome
            .origin_table()
            .into_iter()
            .map(|o| {
                Some(Role::Compute {
                    original: o.original,
                    lane: o.lane,
                })
            })
            .collect();
        roles.resize(n, None);
        for rec in &self.result.spills {
            roles[rec.store.index()] = Some(Role::SpillStore { victim: rec.victim });
            for &(distance, reload) in &rec.reloads {
                roles[reload.index()] = Some(Role::SpillReload {
                    victim: rec.victim,
                    store: rec.store,
                    distance,
                });
            }
        }
        let roles: Vec<Role> = roles
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.ok_or_else(|| SimError::Internal(format!("node n{i} has no role"))))
            .collect::<Result<_, _>>()?;

        // Location table: final node -> lifetime index.
        let mut lifetime_of: Vec<Option<u32>> = vec![None; n];
        for (i, lt) in self.result.lifetimes.iter().enumerate() {
            lifetime_of[lt.def.index()] = Some(i as u32);
        }

        // Spill lookup: victim -> record index; store -> slot ring.
        let mut spilled_rec: Vec<Option<u32>> = vec![None; n];
        for (i, rec) in self.result.spills.iter().enumerate() {
            spilled_rec[rec.victim.index()] = Some(i as u32);
        }

        // Issue table: local row -> nodes.
        let max_t = sched.max_time();
        let mut nodes_at_time: Vec<Vec<u32>> = vec![Vec::new(); max_t as usize + 1];
        for v in final_ddg.node_ids() {
            nodes_at_time[sched.time(v) as usize].push(v.0);
        }

        // A ring entry for block β must survive until the last consumer
        // of β issues. Consumers lag producers by at most the pipeline
        // depth (stages) in blocks, plus the largest dependence
        // distance.
        let ring_depth = sched.stages() as usize
            + final_ddg
                .edges()
                .iter()
                .map(|e| e.distance)
                .max()
                .unwrap_or(0) as usize
            + 2;

        // Only two reader classes ever hit the forwarding buffer: wide
        // producers feeding wide consumers at a distance that is not a
        // multiple of Y (older-lane reads), and spilled victims whose
        // reload set misses a lane's distance. Everything else skips the
        // Hist commit entirely — one fewer allocation per issued op.
        let mut needs_hist = vec![false; n];
        for e in self.original.edges() {
            if e.kind.is_flow()
                && u64::from(e.distance) % y != 0
                && matches!(self.outcome.mapping()[e.dst.index()], NodeMapping::Wide(_))
            {
                if let NodeMapping::Wide(p) = self.outcome.mapping()[e.src.index()] {
                    needs_hist[p.index()] = true;
                }
            }
        }
        for rec in &self.result.spills {
            needs_hist[rec.victim.index()] = true;
        }

        let mut state = MachineState {
            original: self.original,
            outcome: self.outcome,
            result: self.result,
            model: self.model,
            trip: self.trip,
            y,
            k,
            roles,
            lifetime_of,
            spilled_rec,
            needs_hist,
            regs: vec![None; alloc.registers_used() as usize],
            hist: vec![Ring::new(ring_depth); n],
            slots: vec![Ring::new(ring_depth); n],
            memory: Memory::for_loop(self.original, self.trip),
            checksums: vec![0u64; self.original.num_nodes()],
            stats: SimStats {
                blocks,
                steady_state_cycles: ii * blocks,
                ..SimStats::default()
            },
        };

        let total_cycles = sched.dynamic_cycles(blocks);
        let mut commits: Vec<Commit> = Vec::new();
        for t in 0..total_cycles {
            let b_hi = (t / ii).min(blocks - 1);
            let b_lo = t.saturating_sub(u64::from(max_t)).div_ceil(ii);
            // Phase 1: issue every (node, block) of this cycle, reading
            // registers/slots/memory and computing values.
            commits.clear();
            for b in b_lo..=b_hi {
                let row = (t - ii * b) as usize;
                for &w in &nodes_at_time[row] {
                    state.issue(NodeId(w), b, t, &mut commits)?;
                    state.stats.issued_ops += 1;
                }
            }
            // Phase 2: commit all writes of the cycle.
            for c in commits.drain(..) {
                match c {
                    Commit::Reg {
                        node,
                        block,
                        ready_at,
                        data,
                    } => {
                        let lt =
                            state.lifetime_of[node as usize].ok_or_else(|| no_lifetime(node))?;
                        let reg = state
                            .result
                            .allocation
                            .register_of(lt, (block % k) as u32)
                            .ok_or_else(|| {
                                SimError::Internal(format!("no register for n{node}"))
                            })?;
                        state.regs[reg as usize] = Some(RegEntry {
                            node,
                            block,
                            ready_at,
                            data,
                        });
                    }
                    Commit::Hist { node, block, data } => {
                        state.hist[node as usize].put(block, data);
                    }
                    Commit::Mem {
                        store,
                        iteration,
                        value,
                    } => {
                        state.memory.write(store, iteration, value);
                    }
                    Commit::Slot { store, block, data } => {
                        state.slots[store as usize].put(block, data);
                        state.stats.spill_slot_accesses += 1;
                    }
                }
            }
        }
        state.stats.cycles = total_cycles;

        Ok(WideRun {
            memory: state.memory,
            checksums: state.checksums,
            stats: state.stats,
        })
    }
}

fn no_lifetime(node: u32) -> SimError {
    SimError::Internal(format!("node n{node} produces a value but has no lifetime"))
}

/// All mutable machine state, split from [`WideMachine`] so issue logic
/// can borrow freely.
struct MachineState<'a> {
    original: &'a Ddg,
    outcome: &'a WideningOutcome,
    result: &'a PressureResult,
    model: CycleModel,
    trip: u64,
    y: u64,
    k: u64,
    roles: Vec<Role>,
    lifetime_of: Vec<Option<u32>>,
    spilled_rec: Vec<Option<u32>>,
    needs_hist: Vec<bool>,
    regs: Vec<Option<RegEntry>>,
    hist: Vec<Ring>,
    slots: Vec<Ring>,
    memory: Memory,
    checksums: Vec<u64>,
    stats: SimStats,
}

impl MachineState<'_> {
    /// Issues node `w` of kernel iteration `block` at cycle `t`.
    fn issue(
        &mut self,
        w: NodeId,
        block: u64,
        t: u64,
        commits: &mut Vec<Commit>,
    ) -> Result<(), SimError> {
        match self.roles[w.index()].clone() {
            Role::SpillStore { victim } => {
                let data = self.read_register(victim, block, w, block, t)?.to_vec();
                commits.push(Commit::Slot {
                    store: w.0,
                    block,
                    data,
                });
            }
            Role::SpillReload {
                victim,
                store,
                distance,
            } => {
                let needed = block as i64 - i64::from(distance);
                let data = if needed < 0 {
                    self.virtual_value(victim, needed)
                } else {
                    self.stats.spill_slot_accesses += 1;
                    self.slots[store.index()]
                        .get(needed as u64)
                        .ok_or(SimError::SpillSlotEmpty { reload: w, block })?
                        .clone()
                };
                // Reloads are only ever read through their register
                // (distance-0 edges), never through the forwarding
                // buffer, so no Hist commit is needed.
                let ready_at = t + u64::from(self.model.latency(OpKind::Load));
                commits.push(Commit::Reg {
                    node: w.0,
                    block,
                    ready_at,
                    data,
                });
            }
            Role::Compute { original, lane } => {
                self.issue_compute(w, original, lane, block, t, commits)?;
            }
        }
        Ok(())
    }

    /// Issues a (possibly wide) instance of `original`.
    fn issue_compute(
        &mut self,
        w: NodeId,
        original: NodeId,
        lane: Option<u32>,
        block: u64,
        t: u64,
        commits: &mut Vec<Commit>,
    ) -> Result<(), SimError> {
        // Detach the graph reference so the in-edge iterator below can
        // coexist with `&mut self` calls.
        let graph = self.original;
        let op = graph.op(original);
        let kind = op.kind();
        let (first_lane, lane_count) = match lane {
            Some(j) => (j, 1u32),
            None => (0, self.y as u32),
        };
        let mut data = vec![0.0f64; lane_count as usize];
        let mut inputs: Vec<f64> = Vec::new();
        for (slot, out) in data.iter_mut().enumerate() {
            let j = first_lane + slot as u32;
            let i = self.y * block + u64::from(j);
            if i >= self.trip {
                self.stats.masked_lanes += 1;
                continue;
            }
            inputs.clear();
            // Operands in original in-edge order — the fold order the
            // reference interpreter uses.
            for e in graph.in_edges(original).filter(|e| e.kind.is_flow()) {
                let past = i as i64 - i64::from(e.distance);
                inputs.push(if past < 0 {
                    semantics::source_value(e.src.0, past)
                } else {
                    self.read_operand_lane(
                        e.src,
                        past as u64,
                        e.distance,
                        lane.is_none(),
                        w,
                        block,
                        t,
                    )?
                });
            }
            let value = match kind {
                OpKind::Load => {
                    let cell = self.memory.read(original, i);
                    semantics::squash(cell + inputs.iter().sum::<f64>())
                }
                OpKind::Store => {
                    let value = semantics::eval_op(OpKind::Store, &inputs, original.0, i as i64);
                    commits.push(Commit::Mem {
                        store: original,
                        iteration: i,
                        value,
                    });
                    value
                }
                k => semantics::eval_op(k, &inputs, original.0, i as i64),
            };
            self.checksums[original.index()] ^= checksum_step(i, value);
            *out = value;
        }
        if op.produces_value() {
            let ready_at = t + u64::from(self.model.latency(kind));
            if self.needs_hist[w.index()] {
                commits.push(Commit::Hist {
                    node: w.0,
                    block,
                    data: data.clone(),
                });
            }
            commits.push(Commit::Reg {
                node: w.0,
                block,
                ready_at,
                data,
            });
        }
        Ok(())
    }

    /// Reads the lane of original producer `src` holding iteration
    /// `past`, from the widened machine's registers (spill-aware).
    #[allow(clippy::too_many_arguments)]
    fn read_operand_lane(
        &mut self,
        src: NodeId,
        past: u64,
        distance: u32,
        consumer_is_wide: bool,
        reader: NodeId,
        block: u64,
        t: u64,
    ) -> Result<f64, SimError> {
        // Locate the widened instance holding iteration `past`.
        let (producer, lane, beta, producer_is_wide) = match &self.outcome.mapping()[src.index()] {
            NodeMapping::Wide(p) => (*p, (past % self.y) as usize, past / self.y, true),
            NodeMapping::Lanes(ids) => (ids[(past % self.y) as usize], 0, past / self.y, false),
        };
        // The widened dependence edge records the youngest lane's block
        // distance ⌊d/Y⌋; older lanes of a wide→wide dependence are the
        // one case the register file does not cover.
        let binding = !(consumer_is_wide && producer_is_wide)
            || (block - beta) == u64::from(distance) / self.y;

        if let Some(rec) = self.spilled_rec[producer.index()] {
            let rec = &self.result.spills[rec as usize];
            let d = block - beta;
            if let Some(&(_, reload)) = rec.reloads.iter().find(|&&(dist, _)| u64::from(dist) == d)
            {
                // The reload of this block carries the victim's value
                // from `d` blocks ago.
                let data = self.read_register(reload, block, reader, block, t)?;
                return Ok(data[lane]);
            }
            // Older-lane read of a spilled value: no reload exists at
            // this distance; forward.
            self.stats.cross_block_reads += 1;
            return self.forwarded(producer, beta, lane);
        }

        match self.try_read_register(producer, beta, t) {
            Ok(data) => Ok(data[lane]),
            Err(ReadFailure::NotReady { ready_at }) => Err(SimError::ReadBeforeReady {
                reader,
                block,
                cycle: t,
                ready_at,
            }),
            Err(ReadFailure::WrongInstance { register: _ }) if !binding => {
                self.stats.cross_block_reads += 1;
                self.forwarded(producer, beta, lane)
            }
            Err(ReadFailure::WrongInstance { register }) => Err(SimError::RegisterClobbered {
                reader,
                block,
                register,
                expected: producer,
                expected_block: beta,
            }),
        }
    }

    /// Strict register read: the instance must be present and written
    /// back.
    fn read_register(
        &self,
        producer: NodeId,
        needed_block: u64,
        reader: NodeId,
        reader_block: u64,
        t: u64,
    ) -> Result<&[f64], SimError> {
        match self.try_read_register(producer, needed_block, t) {
            Ok(data) => Ok(data),
            Err(ReadFailure::NotReady { ready_at }) => Err(SimError::ReadBeforeReady {
                reader,
                block: reader_block,
                cycle: t,
                ready_at,
            }),
            Err(ReadFailure::WrongInstance { register }) => Err(SimError::RegisterClobbered {
                reader,
                block: reader_block,
                register,
                expected: producer,
                expected_block: needed_block,
            }),
        }
    }

    fn try_read_register(
        &self,
        producer: NodeId,
        needed_block: u64,
        t: u64,
    ) -> Result<&[f64], ReadFailure> {
        let lt = self.lifetime_of[producer.index()].expect("flow producers always have a lifetime");
        let reg = self
            .result
            .allocation
            .register_of(lt, (needed_block % self.k) as u32)
            .expect("location table covers every instance");
        match &self.regs[reg as usize] {
            Some(e) if e.node == producer.0 && e.block == needed_block => {
                if t < e.ready_at {
                    Err(ReadFailure::NotReady {
                        ready_at: e.ready_at,
                    })
                } else {
                    Ok(&e.data)
                }
            }
            _ => Err(ReadFailure::WrongInstance { register: reg }),
        }
    }

    /// Value-forwarding buffer lookup for non-binding lane reads.
    fn forwarded(&self, producer: NodeId, beta: u64, lane: usize) -> Result<f64, SimError> {
        self.hist[producer.index()]
            .get(beta)
            .map(|data| data[lane])
            .ok_or_else(|| {
                SimError::Internal(format!("forwarding buffer missed {producer} block {beta}"))
            })
    }

    /// The lanes a widened node "defined" before the loop began
    /// (negative block): the shared live-in stream.
    fn virtual_value(&self, node: NodeId, block: i64) -> Vec<f64> {
        match self.roles[node.index()] {
            Role::Compute {
                original,
                lane: None,
            } => (0..self.y as i64)
                .map(|j| semantics::source_value(original.0, self.y as i64 * block + j))
                .collect(),
            Role::Compute {
                original,
                lane: Some(j),
            } => {
                vec![semantics::source_value(
                    original.0,
                    self.y as i64 * block + i64::from(j),
                )]
            }
            _ => unreachable!("spill victims are always compute nodes"),
        }
    }
}

/// Why a register read failed (internal; mapped to [`SimError`] by
/// callers that know whether the read was binding).
enum ReadFailure {
    WrongInstance { register: u32 },
    NotReady { ready_at: u64 },
}
