//! Differential property tests: for arbitrary generated loops, widths
//! `Y ∈ {1, 2, 4}` and trip counts — including trips shorter than the
//! pipeline depth and trips not divisible by `Y` — the cycle-accurate
//! wide execution must match the scalar reference bitwise, and its
//! dynamic cycle count must equal the analytic steady-state term
//! `II · ⌈trip/Y⌉` plus the schedule's fill/drain transient.
//!
//! Every simulation here runs [`Backend::Differential`]: the
//! interpreting machine and the lowered-bytecode backend execute the
//! same compiled loop and must agree bitwise on every memory cell,
//! checksum and dynamic counter — any lowering bug fails the property
//! as a `BackendDivergence` before the reference comparison even runs.

use proptest::prelude::*;
use widening_ir::{Ddg, DdgBuilder, EdgeKind, NodeId, OpKind};
use widening_machine::{Configuration, CycleModel};
use widening_regalloc::{schedule_with_registers, RegallocError, SpillOptions};
use widening_sched::SchedulerOptions;
use widening_sim::{simulate_scheduled, Backend, SimFailure};
use widening_transform::widen;

/// A random but always-valid loop body mixing unit/strided memory ops,
/// FPU ops and loop-carried recurrences. Distance-0 edges only go
/// forward, guaranteeing the distance-0 DAG invariant.
fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let kinds = prop_oneof![
        4 => Just(OpKind::FAdd),
        3 => Just(OpKind::FMul),
        2 => Just(OpKind::FSub),
        1 => Just(OpKind::FDiv),
    ];
    (3usize..12, proptest::collection::vec(kinds, 12))
        .prop_flat_map(|(n, kinds)| {
            let edges =
                proptest::collection::vec((0usize..n, 0usize..n, 0u32..6, any::<bool>()), 1..2 * n);
            (Just(n), Just(kinds), edges, 1i64..3)
        })
        .prop_map(|(n, kinds, edges, stride)| {
            let mut b = DdgBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| match i % 4 {
                    0 => b.load(if i % 8 == 0 { 1 } else { stride }),
                    3 => b.store(1),
                    _ => b.op(kinds[i]),
                })
                .collect();
            let produces = |i: usize| i % 4 != 3;
            for (s, d, dist, carried) in edges {
                let (s, d) = (s.min(n - 1), d.min(n - 1));
                if carried && dist > 0 {
                    if produces(s) {
                        b.carried_flow(ids[s], ids[d], dist);
                    } else {
                        b.add_edge(ids[s], ids[d], EdgeKind::Memory, dist);
                    }
                } else if s < d {
                    if produces(s) {
                        b.flow(ids[s], ids[d]);
                    } else {
                        b.add_edge(ids[s], ids[d], EdgeKind::Order, 0);
                    }
                }
            }
            b.build().expect("construction is valid by design")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline differential property: simulated final state matches
    /// the scalar reference for every (loop, configuration, trip count),
    /// and simulated cycles equal `II·⌈trip/Y⌉` plus the fill/drain
    /// term.
    #[test]
    fn wide_execution_matches_scalar_reference(
        g in arb_ddg(),
        yi in 0usize..3,
        xi in 0usize..2,
        zi in 0usize..3,
        trip in 1u64..48,
    ) {
        let y = [1u32, 2, 4][yi];
        let x = [1u32, 2][xi];
        let z = [32u32, 64, 256][zi];
        let cfg = Configuration::monolithic(x, y, z).expect("powers of two");
        let model = CycleModel::Cycles4;

        let outcome = widen(&g, y);
        let result = match schedule_with_registers(
            outcome.ddg(),
            &cfg,
            model,
            &SchedulerOptions::default(),
            &SpillOptions::default(),
        ) {
            Ok(r) => r,
            // Unresolvable pressure is a legitimate analytic outcome
            // (the paper's 8w1/32-RF case); nothing to simulate.
            Err(RegallocError::Pressure { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("pipeline: {e}"))),
        };

        let report = match simulate_scheduled(&g, &outcome, &result, model, trip, Backend::Differential) {
            Ok(r) => r,
            Err(SimFailure::Execution(e)) => {
                return Err(TestCaseError::fail(format!(
                    "machine-state violation on {cfg} trip {trip}: {e}"
                )));
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };

        prop_assert!(
            report.is_validated(),
            "{cfg} trip {trip}: {:?}",
            report.divergences
        );

        // Exact dynamic cycle accounting.
        let blocks = trip.div_ceil(u64::from(y));
        prop_assert_eq!(report.stats.blocks, blocks);
        let steady = u64::from(result.schedule.ii()) * blocks;
        prop_assert_eq!(report.stats.steady_state_cycles, steady);
        prop_assert_eq!(
            report.stats.cycles as i64,
            steady as i64 + result.schedule.transient_cycles()
        );
        prop_assert_eq!(report.stats.cycles, result.schedule.dynamic_cycles(blocks));

        // Masked lanes: exactly the ragged tail, once per packed-or-lane
        // original op instance.
        let expected_masked = (blocks * u64::from(y) - trip) * g.num_nodes() as u64;
        prop_assert_eq!(report.stats.masked_lanes, expected_masked);
    }

    /// Width 1 is the identity transform: the "wide" machine is a plain
    /// scalar VLIW and must still reproduce the reference exactly, for
    /// any schedule the II search lands on.
    #[test]
    fn width_one_simulation_is_exact(g in arb_ddg(), trip in 1u64..40) {
        let cfg = Configuration::monolithic(2, 1, 256).expect("valid");
        let model = CycleModel::Cycles4;
        let outcome = widen(&g, 1);
        let result = match schedule_with_registers(
            outcome.ddg(),
            &cfg,
            model,
            &SchedulerOptions::default(),
            &SpillOptions::default(),
        ) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("pipeline: {e}"))),
        };
        let report = simulate_scheduled(&g, &outcome, &result, model, trip, Backend::Differential)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(report.is_validated(), "trip {trip}: {:?}", report.divergences);
        prop_assert_eq!(report.stats.masked_lanes, 0);
        prop_assert_eq!(report.stats.cross_block_reads, 0);
    }

    /// Spill-heavy differential: a tiny register file forces spill code
    /// on most generated loops; the lowered backend's compiled spill
    /// counters must still match the interpreter's concrete slot
    /// traffic bitwise, and both must match the scalar reference.
    #[test]
    fn spill_heavy_lowering_matches_interpreter(
        g in arb_ddg(),
        yi in 0usize..3,
        trip in 1u64..48,
    ) {
        let y = [1u32, 2, 4][yi];
        let cfg = Configuration::monolithic(4, y, 32).expect("powers of two");
        let model = CycleModel::Cycles4;
        let outcome = widen(&g, y);
        let result = match schedule_with_registers(
            outcome.ddg(),
            &cfg,
            model,
            &SchedulerOptions::default(),
            &SpillOptions::default(),
        ) {
            Ok(r) => r,
            Err(RegallocError::Pressure { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("pipeline: {e}"))),
        };
        let report = simulate_scheduled(&g, &outcome, &result, model, trip, Backend::Differential)
            .map_err(|e| TestCaseError::fail(format!("{cfg} trip {trip}: {e}")))?;
        prop_assert!(
            report.is_validated(),
            "{cfg} trip {trip}: {:?}",
            report.divergences
        );
    }
}
