//! The unroll-and-pack graph construction.

use widening_ir::{Ddg, Edge, NodeId, Op};

use crate::compact::{compactable_nodes, CompactReason};

/// How one original operation appears in the widened graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMapping {
    /// Packed into a single wide node.
    Wide(NodeId),
    /// Expanded into `Y` scalar lane instances (lane `j` at index `j`).
    Lanes(Vec<NodeId>),
}

impl NodeMapping {
    /// All widened node ids this original node became.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        match self {
            NodeMapping::Wide(id) => std::slice::from_ref(id).iter().copied(),
            NodeMapping::Lanes(ids) => ids.iter().copied(),
        }
    }

    /// Whether the original operation was packed.
    #[must_use]
    pub fn is_wide(&self) -> bool {
        matches!(self, NodeMapping::Wide(_))
    }
}

/// Result of [`widen`].
#[derive(Debug, Clone)]
pub struct WideningOutcome {
    ddg: Ddg,
    width: u32,
    mapping: Vec<NodeMapping>,
    reasons: Vec<CompactReason>,
}

impl WideningOutcome {
    /// Reassembles an outcome from its parts — the decode half of an
    /// artifact codec (the encode half reads [`Self::ddg`],
    /// [`Self::width`], [`Self::mapping`] and [`Self::reasons`]).
    ///
    /// Performs the structural checks a cache decoder cannot do itself:
    /// `mapping` and `reasons` must classify the same number of original
    /// operations, and every mapped node id must exist in `ddg`. Returns
    /// `None` when the parts are inconsistent (a corrupt or stale
    /// artifact), never panics.
    #[must_use]
    pub fn from_parts(
        ddg: Ddg,
        width: u32,
        mapping: Vec<NodeMapping>,
        reasons: Vec<CompactReason>,
    ) -> Option<Self> {
        if width == 0 || mapping.len() != reasons.len() || mapping.is_empty() {
            return None;
        }
        let n = ddg.num_nodes();
        for m in &mapping {
            let lane_count = match m {
                NodeMapping::Wide(_) => 1,
                NodeMapping::Lanes(ids) => ids.len(),
            };
            if lane_count == 0 || m.nodes().any(|id| id.index() >= n) {
                return None;
            }
        }
        Some(WideningOutcome {
            ddg,
            width,
            mapping,
            reasons,
        })
    }

    /// The widened dependence graph (one iteration = `width` original
    /// iterations).
    #[must_use]
    pub fn ddg(&self) -> &Ddg {
        &self.ddg
    }

    /// Consumes the outcome, returning the widened graph.
    #[must_use]
    pub fn into_ddg(self) -> Ddg {
        self.ddg
    }

    /// The widening degree `Y` the graph was built for.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Per-original-node placement in the widened graph.
    #[must_use]
    pub fn mapping(&self) -> &[NodeMapping] {
        &self.mapping
    }

    /// Final per-node compactability verdicts (after joint-packing
    /// repair, so a structurally compactable node may still appear as
    /// `Lanes` in [`Self::mapping`] — its reason stays `Compactable`).
    #[must_use]
    pub fn reasons(&self) -> &[CompactReason] {
        &self.reasons
    }

    /// Original operations that were packed into wide nodes.
    #[must_use]
    pub fn packed_original_ops(&self) -> usize {
        self.mapping.iter().filter(|m| m.is_wide()).count()
    }

    /// Original operations expanded into scalar lanes.
    #[must_use]
    pub fn scalar_original_ops(&self) -> usize {
        self.mapping.len() - self.packed_original_ops()
    }

    /// Fraction of original operations packed (1.0 when `Y = 1`).
    #[must_use]
    pub fn packed_fraction(&self) -> f64 {
        self.packed_original_ops() as f64 / self.mapping.len() as f64
    }

    /// The inverse of [`Self::mapping`]: for every widened node, which
    /// original node it instantiates and — for scalar lane expansions —
    /// which lane. A wide node of a block at width `Y` covers original
    /// iterations `Y·block + 0 … Y·block + Y−1`; a lane node covers only
    /// `Y·block + lane`. This is the origin table the simulator uses to
    /// give widened operations their executable semantics.
    #[must_use]
    pub fn origin_table(&self) -> Vec<WideOrigin> {
        let mut out = vec![
            WideOrigin {
                original: NodeId(0),
                lane: None
            };
            self.ddg.num_nodes()
        ];
        for (orig, m) in self.mapping.iter().enumerate() {
            match m {
                NodeMapping::Wide(id) => {
                    out[id.index()] = WideOrigin {
                        original: NodeId(orig as u32),
                        lane: None,
                    };
                }
                NodeMapping::Lanes(ids) => {
                    for (lane, id) in ids.iter().enumerate() {
                        out[id.index()] = WideOrigin {
                            original: NodeId(orig as u32),
                            lane: Some(lane as u32),
                        };
                    }
                }
            }
        }
        out
    }
}

/// One row of [`WideningOutcome::origin_table`]: where a widened node
/// came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideOrigin {
    /// The original operation this widened node instantiates.
    pub original: NodeId,
    /// `None` for a packed wide node (all `Y` lanes); `Some(j)` for the
    /// scalar expansion of lane `j`.
    pub lane: Option<u32>,
}

/// Builds the width-`Y` dependence graph of `ddg`.
///
/// Packing starts from the structural analysis of
/// [`compactable_nodes`]; if jointly packing two wide nodes would make
/// them mutually dependent inside one block (a distance-0 cycle in the
/// widened graph), nodes are un-packed one at a time until the graph is
/// valid — mirroring a compiler that falls back to scalar code for the
/// offending operations.
///
/// # Panics
///
/// Panics if `width` is zero. Graph construction itself cannot fail: the
/// repair loop removes any distance-0 cycle introduced by packing, and
/// the scalar expansion of a valid graph is valid.
#[must_use]
pub fn widen(ddg: &Ddg, width: u32) -> WideningOutcome {
    assert!(width >= 1, "width must be at least 1");
    let reasons = compactable_nodes(ddg, width);
    if width == 1 {
        return WideningOutcome {
            ddg: ddg.clone(),
            width,
            mapping: ddg.node_ids().map(NodeMapping::Wide).collect(),
            reasons,
        };
    }
    let mut packed: Vec<bool> = reasons.iter().map(|r| r.is_compactable()).collect();
    loop {
        match build(ddg, width, &packed) {
            Ok((graph, mapping)) => {
                return WideningOutcome {
                    ddg: graph,
                    width,
                    mapping,
                    reasons,
                };
            }
            Err(unpack) => {
                debug_assert!(packed[unpack.index()], "repair must unpack a packed node");
                packed[unpack.index()] = false;
            }
        }
    }
}

/// Attempts the construction with the given packing; on a distance-0
/// cycle, returns the original node to un-pack.
#[allow(clippy::type_complexity)]
fn build(ddg: &Ddg, width: u32, packed: &[bool]) -> Result<(Ddg, Vec<NodeMapping>), NodeId> {
    let y = width;
    let mut ops: Vec<Op> = Vec::new();
    let mut origin: Vec<NodeId> = Vec::new(); // widened node -> original
    let mapping: Vec<NodeMapping> = ddg
        .node_ids()
        .map(|v| {
            if packed[v.index()] {
                let id = NodeId(ops.len() as u32);
                ops.push(ddg.op(v).clone());
                origin.push(v);
                NodeMapping::Wide(id)
            } else {
                let lanes = (0..y)
                    .map(|_| {
                        let id = NodeId(ops.len() as u32);
                        ops.push(ddg.op(v).clone());
                        origin.push(v);
                        id
                    })
                    .collect();
                NodeMapping::Lanes(lanes)
            }
        })
        .collect();

    let mut edges: Vec<Edge> = Vec::new();
    // ceil((d - j) / y) for possibly-negative numerators, never below 0.
    let block_dist = |d: u32, j: u32| -> u32 {
        let num = i64::from(d) - i64::from(j);
        if num <= 0 {
            0
        } else {
            (num as u64).div_ceil(u64::from(y)) as u32
        }
    };
    for e in ddg.edges() {
        match (&mapping[e.src.index()], &mapping[e.dst.index()]) {
            (NodeMapping::Wide(u), NodeMapping::Wide(v)) => {
                // The binding lane gives the minimum block distance
                // ⌊d / y⌋ (the latest-produced input the consumer waits
                // for).
                edges.push(Edge {
                    src: *u,
                    dst: *v,
                    kind: e.kind,
                    distance: e.distance / y,
                });
            }
            (NodeMapping::Wide(u), NodeMapping::Lanes(vs)) => {
                for (j, &vj) in vs.iter().enumerate() {
                    edges.push(Edge {
                        src: *u,
                        dst: vj,
                        kind: e.kind,
                        distance: block_dist(e.distance, j as u32),
                    });
                }
            }
            (NodeMapping::Lanes(us), NodeMapping::Wide(v)) => {
                let mut seen = std::collections::HashSet::new();
                for j in 0..y {
                    let i = (j + y - e.distance % y) % y; // (j - d) mod y
                    let dist = block_dist(e.distance, j);
                    if seen.insert((i, dist)) {
                        edges.push(Edge {
                            src: us[i as usize],
                            dst: *v,
                            kind: e.kind,
                            distance: dist,
                        });
                    }
                }
            }
            (NodeMapping::Lanes(us), NodeMapping::Lanes(vs)) => {
                for (i, &ui) in us.iter().enumerate() {
                    let t = i as u32 + e.distance;
                    edges.push(Edge {
                        src: ui,
                        dst: vs[(t % y) as usize],
                        kind: e.kind,
                        distance: t / y,
                    });
                }
            }
        }
    }

    match Ddg::from_parts(ops, edges) {
        Ok(g) => Ok((g, mapping)),
        Err(widening_ir::GraphError::ZeroDistanceCycle { witness }) => {
            // Un-pack a wide node inside the offending cycle; the cycle
            // necessarily contains one (scalar lane expansion alone
            // cannot create distance-0 cycles from a valid graph).
            let bad = origin[witness];
            if packed[bad.index()] {
                return Err(bad);
            }
            // The witness is a scalar lane: walk its distance-0 SCC for a
            // packed member. Rebuild a tiny adjacency over suspicious
            // nodes: fall back to unpacking the first packed predecessor
            // in the original graph's recurrence region.
            let candidate = ddg
                .node_ids()
                .find(|v| packed[v.index()] && shares_circuit(ddg, *v, bad))
                .or_else(|| ddg.node_ids().find(|v| packed[v.index()]))
                .expect("a packed node must exist if packing caused a cycle");
            Err(candidate)
        }
        Err(other) => unreachable!("widening produced invalid graph: {other}"),
    }
}

/// Whether `a` and `b` lie on a common circuit of the original graph.
fn shares_circuit(ddg: &Ddg, a: NodeId, b: NodeId) -> bool {
    let sccs = widening_ir::StronglyConnectedComponents::compute(ddg);
    sccs.component_of(a) == sccs.component_of(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::{DdgBuilder, OpKind, ResourceClass};

    fn daxpy() -> Ddg {
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let y = b.load(1);
        let m = b.op(OpKind::FMul);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1);
        b.flow(x, m);
        b.flow(m, a);
        b.flow(y, a);
        b.flow(a, s);
        b.build().unwrap()
    }

    #[test]
    fn width_one_is_identity() {
        let g = daxpy();
        let w = widen(&g, 1);
        assert_eq!(w.ddg(), &g);
        assert_eq!(w.packed_original_ops(), 5);
        assert!((w.packed_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_compactable_loop_keeps_node_count() {
        let g = daxpy();
        for y in [2, 4, 8, 16] {
            let w = widen(&g, y);
            assert_eq!(w.ddg().num_nodes(), g.num_nodes(), "y={y}");
            assert_eq!(w.packed_original_ops(), 5);
            // Same resource profile per block → ResMII per original
            // iteration drops by y.
            assert_eq!(w.ddg().count_class(ResourceClass::Bus), 3);
        }
    }

    #[test]
    fn non_compactable_ops_expand_by_width() {
        // Strided load (never packs) feeding a compactable multiply.
        let mut b = DdgBuilder::new();
        let l = b.load(2);
        let m = b.op(OpKind::FMul);
        let s = b.store(1);
        b.flow(l, m);
        b.flow(m, s);
        let g = b.build().unwrap();
        let w = widen(&g, 4);
        // 4 scalar loads + wide mul + wide store.
        assert_eq!(w.ddg().num_nodes(), 4 + 1 + 1);
        assert_eq!(w.scalar_original_ops(), 1);
        assert_eq!(w.packed_original_ops(), 2);
        // All four lanes feed the wide multiply at distance 0.
        let NodeMapping::Wide(mul) = &w.mapping()[m.index()] else {
            panic!("mul should be wide")
        };
        let feeders = w.ddg().in_edges(*mul).count();
        assert_eq!(feeders, 4);
        assert!(w.ddg().in_edges(*mul).all(|e| e.distance == 0));
    }

    #[test]
    fn tight_recurrence_serializes_lanes() {
        // acc = acc + x[i] (distance 1): the add cannot pack; its lanes
        // chain serially inside the block and carry across blocks.
        let mut b = DdgBuilder::new();
        let x = b.load(1);
        let a = b.op(OpKind::FAdd);
        b.flow(x, a);
        b.carried_flow(a, a, 1);
        let g = b.build().unwrap();
        let w = widen(&g, 4);
        let NodeMapping::Lanes(lanes) = &w.mapping()[a.index()] else {
            panic!("add should be scalar")
        };
        assert_eq!(lanes.len(), 4);
        // Lane j feeds lane j+1 at distance 0; lane 3 feeds lane 0 at
        // distance 1 (next block).
        for j in 0..3usize {
            assert!(w
                .ddg()
                .out_edges(lanes[j])
                .any(|e| e.dst == lanes[j + 1] && e.distance == 0));
        }
        assert!(w
            .ddg()
            .out_edges(lanes[3])
            .any(|e| e.dst == lanes[0] && e.distance == 1));
    }

    #[test]
    fn wide_to_wide_carried_distance_scales() {
        // v feeds itself at distance 8; at width 4 the block distance is
        // 2 — still a recurrence, but a looser one.
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        b.carried_flow(a, a, 8);
        let g = b.build().unwrap();
        let w = widen(&g, 4);
        assert!(w.mapping()[0].is_wide());
        let e: Vec<_> = w.ddg().edges().to_vec();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].distance, 2);
    }

    #[test]
    fn joint_packing_cycle_gets_repaired() {
        // u -> v (distance 1), v -> u (distance Y-1): every circuit has
        // total distance Y, so both look packable per-node, but packing
        // both makes the wide ops mutually dependent at distance 0. The
        // repair must un-pack at least one.
        let y = 4;
        let mut b = DdgBuilder::new();
        let u = b.op(OpKind::FAdd);
        let v = b.op(OpKind::FMul);
        b.carried_flow(u, v, 1);
        b.carried_flow(v, u, y - 1);
        let g = b.build().unwrap();
        let w = widen(&g, y);
        // Graph is valid by construction (would have panicked otherwise)
        // and at least one op fell back to scalar lanes.
        assert!(w.scalar_original_ops() >= 1, "repair should unpack a node");
        // Per-node analysis still says both were structurally fine.
        assert!(w.reasons().iter().all(|r| r.is_compactable()));
    }

    #[test]
    fn lanes_to_wide_dedup_keeps_all_distances() {
        // Non-compactable producer at carried distance 2 into a
        // compactable consumer, width 4: lanes 2,3 feed in-block (dist
        // 0), lanes 0,1 from previous block (dist 1).
        let mut b = DdgBuilder::new();
        let p = b.op(OpKind::FDiv); // div: packable? yes structurally...
        let c = b.op(OpKind::FMul);
        b.carried_flow(p, c, 2);
        // Make p non-compactable via hint by rebuilding:
        let g = {
            let mut b2 = DdgBuilder::new();
            let p2 = b2.add_op(Op::new(OpKind::FDiv).never_compactable());
            let c2 = b2.op(OpKind::FMul);
            b2.carried_flow(p2, c2, 2);
            assert_eq!((p2, c2), (p, c));
            b2.build().unwrap()
        };
        let w = widen(&g, 4);
        let NodeMapping::Wide(cw) = &w.mapping()[c.index()] else {
            panic!()
        };
        let mut dists: Vec<u32> = w.ddg().in_edges(*cw).map(|e| e.distance).collect();
        dists.sort_unstable();
        assert_eq!(dists, vec![0, 0, 1, 1]);
    }

    #[test]
    fn widened_graph_is_always_valid() {
        // The constructor revalidates; reaching here means distances and
        // node references were consistent for a mixed case.
        let mut b = DdgBuilder::new();
        let l1 = b.load(1);
        let l2 = b.load(5); // strided: scalar
        let m = b.op(OpKind::FMul);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1);
        b.flow(l1, m);
        b.flow(l2, m);
        b.flow(m, a);
        b.carried_flow(a, a, 1); // tight recurrence: scalar
        b.flow(a, s);
        let g = b.build().unwrap();
        for y in [2, 4, 8] {
            let w = widen(&g, y);
            // 2 wide (l1, m? m feeds a...) — just sanity-check counts.
            assert_eq!(
                w.ddg().num_nodes(),
                w.packed_original_ops() + w.scalar_original_ops() * y as usize
            );
        }
    }
}
