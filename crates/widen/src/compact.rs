//! Compactability analysis (§2 of the paper).

use widening_ir::{Compactability, Ddg, NodeId};

/// Why an operation was judged compactable or not at a given width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactReason {
    /// Compactable: `Y` consecutive instances are independent and
    /// mergeable into one wide operation.
    Compactable,
    /// The front end marked the operation never-compactable (irregular
    /// access, unanalysable dependence, …).
    HintedNever,
    /// Memory operation with non-unit stride: a wide bus transfers
    /// consecutive words, so stride ≠ 1 cannot be packed (§2: two
    /// accesses with a stride different than one must be scheduled in
    /// two different cycles on a wide bus).
    NonUnitStride,
    /// The operation sits on a recurrence circuit spanning fewer than
    /// `Y` iterations: its instances inside one block are serially
    /// dependent.
    TightRecurrence,
}

impl CompactReason {
    /// Whether the verdict is "compactable".
    #[must_use]
    pub fn is_compactable(self) -> bool {
        self == CompactReason::Compactable
    }
}

/// Classifies every node of `ddg` for widening degree `width`.
///
/// This is the *per-node* structural test; the transform additionally
/// un-packs nodes whose joint packing would make wide operations
/// mutually dependent within one block (see `transform`).
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn compactable_nodes(ddg: &Ddg, width: u32) -> Vec<CompactReason> {
    assert!(width >= 1, "width must be at least 1");
    let recurrence_members: Vec<NodeId> = ddg.recurrence_nodes();
    let mut on_rec = vec![false; ddg.num_nodes()];
    for v in &recurrence_members {
        on_rec[v.index()] = true;
    }
    ddg.node_ids()
        .map(|v| {
            let op = ddg.op(v);
            if op.compactability() == Compactability::Never {
                return CompactReason::HintedNever;
            }
            if op.kind().is_memory() && op.stride() != Some(1) {
                return CompactReason::NonUnitStride;
            }
            if width > 1 && on_rec[v.index()] {
                let d = ddg
                    .min_recurrence_distance(v)
                    .expect("recurrence member has a circuit");
                if d < u64::from(width) {
                    return CompactReason::TightRecurrence;
                }
            }
            CompactReason::Compactable
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use widening_ir::{DdgBuilder, Op, OpKind};

    #[test]
    fn unit_stride_and_plain_fpu_ops_compact() {
        let mut b = DdgBuilder::new();
        let l = b.load(1);
        let m = b.op(OpKind::FMul);
        let s = b.store(1);
        b.flow(l, m);
        b.flow(m, s);
        let g = b.build().unwrap();
        let r = compactable_nodes(&g, 8);
        assert!(r.iter().all(|c| c.is_compactable()));
    }

    #[test]
    fn non_unit_stride_blocks_memory_only() {
        let mut b = DdgBuilder::new();
        let l = b.load(3);
        let m = b.op(OpKind::FMul);
        b.flow(l, m);
        let g = b.build().unwrap();
        let r = compactable_nodes(&g, 4);
        assert_eq!(r[0], CompactReason::NonUnitStride);
        assert_eq!(r[1], CompactReason::Compactable);
    }

    #[test]
    fn hint_never_wins() {
        let mut b = DdgBuilder::new();
        b.add_op(Op::memory(OpKind::Load, 1).never_compactable());
        let g = b.build().unwrap();
        assert_eq!(compactable_nodes(&g, 2)[0], CompactReason::HintedNever);
    }

    #[test]
    fn tight_recurrence_blocks_until_width_exceeds_distance() {
        // acc += x, carried at distance 4.
        let mut b = DdgBuilder::new();
        let l = b.load(1);
        let a = b.op(OpKind::FAdd);
        b.flow(l, a);
        b.carried_flow(a, a, 4);
        let g = b.build().unwrap();
        // width 2 and 4: instances 4 apart are independent (d ≥ Y).
        assert!(compactable_nodes(&g, 2)[1].is_compactable());
        assert!(compactable_nodes(&g, 4)[1].is_compactable());
        // width 8: block spans 8 iterations; lanes 0 and 4 conflict.
        assert_eq!(compactable_nodes(&g, 8)[1], CompactReason::TightRecurrence);
        // The independent load is never blocked.
        assert!(compactable_nodes(&g, 8)[0].is_compactable());
    }

    #[test]
    fn width_one_is_always_compactable_shape() {
        let mut b = DdgBuilder::new();
        let a = b.op(OpKind::FAdd);
        b.carried_flow(a, a, 1);
        let g = b.build().unwrap();
        // At width 1 packing is the identity; recurrences don't matter.
        assert!(compactable_nodes(&g, 1)[0].is_compactable());
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_panics() {
        let mut b = DdgBuilder::new();
        b.op(OpKind::FAdd);
        let g = b.build().unwrap();
        let _ = compactable_nodes(&g, 0);
    }
}
