//! The **widening transform** — the core contribution of *Widening
//! Resources* (MICRO 1998).
//!
//! A machine of widening degree `Y` executes one *wide* operation over
//! `Y` consecutive data elements per functional-unit slot — but only for
//! *compactable* operations (§2). This crate turns a scalar loop body
//! into the dependence graph the compiler would produce for width `Y`:
//!
//! * notionally unroll `Y` consecutive iterations (a *block*);
//! * **pack** the `Y` instances of each compactable operation into a
//!   single wide node (loads/stores need unit stride; operations on a
//!   recurrence tighter than `Y` iterations are serially dependent and
//!   cannot be packed);
//! * **expand** every non-compactable operation into `Y` scalar nodes —
//!   each still occupies a full wide slot, which is exactly the penalty
//!   that makes pure widening saturate in the paper's Figure 2;
//! * re-derive all dependence edges with lane-accurate iteration
//!   distances.
//!
//! The result is an ordinary [`widening_ir::Ddg`]: the scheduler,
//! allocator and cost models need no special cases. One widened-block
//! iteration covers `Y` original iterations, so cycle accounting divides
//! trip counts by `Y` (handled by the evaluation pipeline).
//!
//! # Example
//!
//! ```
//! use widening_ir::{DdgBuilder, OpKind};
//! use widening_transform::widen;
//!
//! // y[i] = a * x[i]: fully compactable at any width.
//! let mut b = DdgBuilder::new();
//! let x = b.load(1);
//! let m = b.op(OpKind::FMul);
//! let s = b.store(1);
//! b.flow(x, m);
//! b.flow(m, s);
//! let ddg = b.build()?;
//!
//! let wide = widen(&ddg, 4);
//! assert_eq!(wide.ddg().num_nodes(), 3);     // every op packed
//! assert_eq!(wide.packed_original_ops(), 3);
//! assert_eq!(wide.scalar_original_ops(), 0);
//! # Ok::<(), widening_ir::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod transform;

pub use compact::{compactable_nodes, CompactReason};
pub use transform::{widen, NodeMapping, WideOrigin, WideningOutcome};
