//! Property tests for the widening transform.

use proptest::prelude::*;
use widening_ir::{Ddg, DdgBuilder, NodeId, Op, OpKind};
use widening_transform::{compactable_nodes, widen, NodeMapping};

fn arb_ddg() -> impl Strategy<Value = Ddg> {
    (2usize..14, any::<u64>()).prop_map(|(n, seed)| {
        // Small deterministic mix keyed by a seed: loads (some strided),
        // FPU ops, a store, and a few carried edges.
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut b = DdgBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| match i % 5 {
                0 => b.load(if next() % 3 == 0 { 2 } else { 1 }),
                4 => b.store(1),
                1 if next() % 7 == 0 => b.add_op(Op::new(OpKind::FMul).never_compactable()),
                _ => b.op(if next() % 2 == 0 {
                    OpKind::FAdd
                } else {
                    OpKind::FMul
                }),
            })
            .collect();
        for i in 1..n {
            let p = (next() as usize) % i;
            if ids[p].index() % 5 != 4 {
                b.flow(ids[p], ids[i]);
            }
        }
        for _ in 0..(next() % 3) {
            let v = (next() as usize) % n;
            if ids[v].index() % 5 != 4 {
                let dist = 1 + (next() % 4) as u32;
                b.carried_flow(ids[v], ids[v], dist);
            }
        }
        b.build().expect("valid by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Width 1 is the identity transform.
    #[test]
    fn width_one_identity(g in arb_ddg()) {
        let w = widen(&g, 1);
        prop_assert_eq!(w.ddg(), &g);
        prop_assert_eq!(w.packed_original_ops(), g.num_nodes());
    }

    /// Node accounting: packed nodes stay single, scalar nodes expand
    /// `Y`-fold; the result is a valid graph (construction re-validates).
    #[test]
    fn node_accounting(g in arb_ddg(), yexp in 1u32..4) {
        let y = 1 << yexp;
        let w = widen(&g, y);
        prop_assert_eq!(
            w.ddg().num_nodes(),
            w.packed_original_ops() + w.scalar_original_ops() * y as usize
        );
        prop_assert_eq!(w.mapping().len(), g.num_nodes());
        for (v, m) in g.node_ids().zip(w.mapping()) {
            match m {
                NodeMapping::Wide(id) => {
                    prop_assert_eq!(w.ddg().op(*id).kind(), g.op(v).kind());
                }
                NodeMapping::Lanes(ids) => {
                    prop_assert_eq!(ids.len(), y as usize);
                    for id in ids {
                        prop_assert_eq!(w.ddg().op(*id).kind(), g.op(v).kind());
                    }
                }
            }
        }
    }

    /// Structural verdicts are honoured: never-compactable and strided
    /// operations are always expanded; packed nodes were judged
    /// compactable.
    #[test]
    fn verdicts_respected(g in arb_ddg(), yexp in 1u32..4) {
        let y = 1 << yexp;
        let w = widen(&g, y);
        let verdicts = compactable_nodes(&g, y);
        for (i, m) in w.mapping().iter().enumerate() {
            if m.is_wide() {
                prop_assert!(verdicts[i].is_compactable(), "node {i} packed against verdict");
            }
        }
    }

    /// Widening preserves the total amount of work: summing lanes, every
    /// original operation appears exactly `Y` times per block (a wide op
    /// covers `Y` lanes; scalars appear `Y` times literally).
    #[test]
    fn work_conservation(g in arb_ddg(), yexp in 1u32..4) {
        let y = 1 << yexp;
        let w = widen(&g, y);
        let lanes_covered: usize = w
            .mapping()
            .iter()
            .map(|m| match m {
                NodeMapping::Wide(_) => y as usize,
                NodeMapping::Lanes(l) => l.len(),
            })
            .sum();
        prop_assert_eq!(lanes_covered, g.num_nodes() * y as usize);
    }
}
