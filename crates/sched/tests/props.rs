//! Property tests: every strategy produces verified schedules at or
//! above the MII bound, on arbitrary loop shapes and machines.

use proptest::prelude::*;
use widening_ir::{Ddg, DdgBuilder, NodeId, OpKind};
use widening_machine::{Configuration, CycleModel};
use widening_sched::{MiiBounds, ModuloScheduler, SchedulerOptions, Strategy as Ordering};

fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let kinds = prop_oneof![
        4 => Just(OpKind::FAdd),
        4 => Just(OpKind::FMul),
        1 => Just(OpKind::FDiv),
        1 => Just(OpKind::FSqrt),
    ];
    (2usize..16, proptest::collection::vec(kinds, 16))
        .prop_flat_map(|(n, kinds)| {
            let edges =
                proptest::collection::vec((0usize..n, 0usize..n, 0u32..3, any::<bool>()), 0..2 * n);
            (Just(n), Just(kinds), edges)
        })
        .prop_map(|(n, kinds, edges)| {
            let mut b = DdgBuilder::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| match i % 4 {
                    0 => b.load(1),
                    1 => b.store(1),
                    _ => b.op(kinds[i]),
                })
                .collect();
            for (s, d, dist, forward_only) in edges {
                let (s, d) = (s.min(n - 1), d.min(n - 1));
                // Flow edges must leave value producers.
                let src_ok = s % 4 != 1;
                if dist == 0 {
                    if s < d && src_ok {
                        b.flow(ids[s], ids[d]);
                    }
                } else if src_ok && (forward_only || s != d) {
                    b.carried_flow(ids[s], ids[d], dist);
                } else if src_ok {
                    b.carried_flow(ids[s], ids[s], dist);
                }
            }
            b.build().expect("valid by construction")
        })
}

fn arb_config() -> impl Strategy<Value = Configuration> {
    (0u32..4, 0u32..3).prop_map(|(xs, ys)| {
        Configuration::monolithic(1 << xs, 1 << ys, 256).expect("powers of two")
    })
}

fn arb_model() -> impl Strategy<Value = CycleModel> {
    prop_oneof![
        Just(CycleModel::Cycles1),
        Just(CycleModel::Cycles2),
        Just(CycleModel::Cycles3),
        Just(CycleModel::Cycles4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `Schedule::new` re-verifies every dependence and resource
    /// constraint, so a returned schedule *is* a proof. HRMS and IMS
    /// must always succeed with unconstrained registers; the naive ASAP
    /// control is allowed to starve itself (that weakness is part of
    /// what the ablation demonstrates), but whatever it returns must
    /// still verify.
    #[test]
    fn all_strategies_schedule_validly(
        g in arb_ddg(),
        cfg in arb_config(),
        model in arb_model(),
        strategy in prop_oneof![Just(Ordering::Hrms), Just(Ordering::Ims), Just(Ordering::Asap)],
    ) {
        let bounds = MiiBounds::compute(&g, &cfg, model);
        let sched = ModuloScheduler::with_options(
            cfg,
            model,
            SchedulerOptions { strategy, ..Default::default() },
        )
        .schedule_with_bounds(&g, &bounds);
        let sched = match (sched, strategy) {
            (Ok(s), _) => s,
            (Err(_), Ordering::Asap) => return Ok(()),
            (Err(e), _) => {
                return Err(TestCaseError::fail(format!(
                    "{} must schedule with unbounded registers: {e}",
                    strategy.label()
                )))
            }
        };
        prop_assert!(sched.ii() >= bounds.mii());
        prop_assert_eq!(sched.times().len(), g.num_nodes());
        // Times are normalised: minimum issue cycle is zero.
        prop_assert_eq!(sched.times().iter().min().copied(), Some(0));
    }

    /// HRMS hits the lower bound on most unconstrained loops — the
    /// "near-optimal" claim the paper relies on. Statistically, over any
    /// sample of random graphs, the hit rate must be high; per-case we
    /// only check a loose factor bound to stay deterministic.
    #[test]
    fn hrms_stays_near_the_bound(g in arb_ddg(), cfg in arb_config()) {
        let model = CycleModel::Cycles4;
        let bounds = MiiBounds::compute(&g, &cfg, model);
        let sched = ModuloScheduler::new(cfg, model)
            .schedule_with_bounds(&g, &bounds)
            .expect("must schedule");
        prop_assert!(
            sched.ii() <= bounds.mii() * 2 + 8,
            "II {} too far above MII {}",
            sched.ii(),
            bounds.mii()
        );
    }

    /// More hardware never makes the bound worse.
    #[test]
    fn mii_monotone_in_hardware(g in arb_ddg(), model in arb_model()) {
        let mut prev = u32::MAX;
        for x in [1u32, 2, 4, 8] {
            let cfg = Configuration::monolithic(x, 1, 256).expect("valid");
            let mii = MiiBounds::compute(&g, &cfg, model).mii();
            prop_assert!(mii <= prev);
            prev = mii;
        }
    }

    /// RecMII is invariant under resource scaling (it only depends on
    /// circuits), and ResMII halves (up to ceiling) when units double.
    #[test]
    fn bound_structure(g in arb_ddg()) {
        let model = CycleModel::Cycles4;
        let c1 = Configuration::monolithic(1, 1, 256).expect("valid");
        let c2 = Configuration::monolithic(2, 1, 256).expect("valid");
        let b1 = MiiBounds::compute(&g, &c1, model);
        let b2 = MiiBounds::compute(&g, &c2, model);
        prop_assert_eq!(b1.rec_mii(), b2.rec_mii());
        prop_assert!(b2.res_mii() <= b1.res_mii());
        prop_assert!(b2.res_mii() >= b1.res_mii().div_ceil(2));
    }
}
