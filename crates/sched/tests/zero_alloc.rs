//! Proves the scheduler's steady-state II attempt is heap-free.
//!
//! A sweep spends its life re-running `attempt_ii` over warmed scratch
//! arenas; any per-attempt allocation multiplies across the whole
//! corpus. This test wraps the global allocator in a counting shim,
//! warms a [`SchedScratch`] once, and asserts that subsequent attempts
//! perform **zero** heap allocations.
//!
//! The file holds exactly one `#[test]` so no sibling test thread can
//! allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use widening_ir::{DdgBuilder, OpKind};
use widening_machine::{Configuration, CycleModel};
use widening_sched::{MiiBounds, ModuloScheduler, SchedScratch, SchedulerOptions};

/// Counts every allocation and reallocation routed through the global
/// allocator (frees are not counted: the property under test is "no new
/// heap memory", and a free implies a matching earlier alloc anyway).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_attempt_allocates_nothing() {
    // DAXPY body on a 1-bus machine: ResMII = 3 (three memory ops), so
    // the attempt loop genuinely probes ii = 3 — not a degenerate ii = 1.
    let mut b = DdgBuilder::new();
    let x = b.load(1);
    let y = b.load(1);
    let m = b.op(OpKind::FMul);
    let a = b.op(OpKind::FAdd);
    let s = b.store(1);
    b.flow(x, m);
    b.flow(m, a);
    b.flow(y, a);
    b.flow(a, s);
    let ddg = b.build().expect("valid graph");

    let cfg = Configuration::monolithic(1, 1, 256).expect("valid config");
    let model = CycleModel::Cycles4;
    let scheduler = ModuloScheduler::with_options(cfg, model, SchedulerOptions::default());
    let bounds = MiiBounds::compute(&ddg, &cfg, model);
    assert!(bounds.mii() >= 2, "test graph must exercise a real II");

    let mut scratch = SchedScratch::new();
    // Warm-up: size every table and buffer for the IIs we will probe
    // (an infeasible attempt below MII plus the feasible ones above it).
    for ii in 2..=5 {
        let _ = scheduler.attempt_ii(&ddg, &bounds, ii, &mut scratch);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut feasible = 0u32;
    for _ in 0..100 {
        for ii in 2..=5 {
            if scheduler.attempt_ii(&ddg, &bounds, ii, &mut scratch) {
                feasible += 1;
            }
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(feasible, 300, "ii = 3, 4, 5 are feasible; ii = 2 is not");
    assert_eq!(
        after - before,
        0,
        "steady-state attempt_ii must not touch the heap after warm-up"
    );
}
